#!/usr/bin/env python3
"""End-to-end data-retention case study on the object-level system model.

Builds the full Fig 5 system — chip with on-die ECC, HARP active profiler,
ideal bit-repair, SEC secondary ECC — and runs it through active profiling
and normal operation at an aggressive (reduced) refresh rate, where each
word carries several retention-weak cells.  Demonstrates the paper's §7.4
claim in object form: with HARP's active phase complete, no read ever
escapes the secondary ECC.

Run:  python examples/data_retention_case_study.py
"""

import numpy as np

from repro.controller import MemorySystem, SecondaryEcc
from repro.ecc import random_sec_code
from repro.memory import OnDieEccChip, sample_word_profile
from repro.profiling import HarpUProfiler, NaiveProfiler


def build_system(profiler_cls, seed: int, num_words: int = 16):
    """A chip whose words model DRAM rows at a relaxed refresh rate."""
    rng = np.random.default_rng(seed)
    code = random_sec_code(64, rng)
    chip = OnDieEccChip(code, num_words=num_words, rng=rng)
    for word_index in range(num_words):
        # Relaxed refresh: 4 retention-weak cells per word, p = 0.5.
        chip.set_error_profile(word_index, sample_word_profile(code, 4, 0.5, rng))
    return MemorySystem(chip, profiler_cls, secondary=SecondaryEcc(1), seed=seed)


def main() -> None:
    # A short active-profiling budget separates the profilers: HARP covers
    # every direct-risk bit within it; Naive is still bootstrapping.
    for profiler_cls, active_rounds in ((HarpUProfiler, 12), (NaiveProfiler, 12)):
        system = build_system(profiler_cls, seed=11)
        report = system.run_active_profiling(num_rounds=active_rounds)
        operation = system.operate(reads_per_word=200)
        print(f"{profiler_cls.name}:")
        print(f"  active profiling: {report.bits_identified} bits identified "
              f"in {report.rounds} rounds over {report.words_profiled} words")
        print(f"  operation: {operation.reads} reads, "
              f"{operation.reactive_corrections} reactive corrections, "
              f"{operation.reactively_identified_bits} bits reactively identified")
        print(f"  escapes: {operation.escaped_reads} reads with uncorrectable errors "
              f"({operation.escaped_bit_errors} bit errors total)")
        if operation.escaped_reads == 0:
            print("  -> all retention errors mitigated")
        else:
            print("  -> residual uncorrectable errors reached the CPU")
        print()


if __name__ == "__main__":
    main()
