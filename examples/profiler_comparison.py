#!/usr/bin/env python3
"""Compare all five profilers on the paper's main sweep (reduced scale).

Reproduces the qualitative story of Figs 6-9 in one run: direct coverage,
bootstrapping, missed indirect bits, and the secondary-ECC capability each
profiler leaves behind.

The sweep engine fans cells out over worker processes (``jobs=0`` means
one per CPU); results are bit-identical to a serial run, so the exhibit
output never depends on the machine.

Run:  python examples/profiler_comparison.py
"""

from repro.experiments import fig6, fig7, fig8, fig9, headline
from repro.experiments.config import SweepConfig
from repro.experiments.reporting import timing_table
from repro.experiments.runner import run_sweep


def main() -> None:
    config = SweepConfig(
        num_codes=4,
        words_per_code=6,
        num_rounds=64,
        error_counts=(2, 4),
        probabilities=(0.5,),
    )
    print(f"sweep: {config.num_codes} codes x {config.words_per_code} words, "
          f"{config.num_rounds} rounds, profilers {config.profilers}")
    sweep = run_sweep(config, jobs=0)  # one worker per CPU

    print()
    print(fig6.render(fig6.from_sweep(sweep)))
    print()
    print(fig7.render(fig7.from_sweep(sweep)))
    print()
    print(fig8.render(fig8.from_sweep(sweep)))
    print()
    print(fig9.render(fig9.from_sweep(sweep)))
    print()
    print(headline.render(active=headline.active_speedups(sweep)))
    print()
    print(timing_table(sweep))


if __name__ == "__main__":
    main()
