#!/usr/bin/env python3
"""Reactive profiling via ECC scrubbing (paper §2.3.2 + §6.3).

Shows the division of labour HARP establishes:

1. a word's lone at-risk bits are *invisible* to scrubbing — on-die ECC
   corrects them silently;
2. with the direct-risk bits repaired (HARP's active phase), the
   remaining indirect errors surface one at a time and scrubbing
   identifies each on its first occurrence;
3. without active profiling, multi-bit words defeat the SEC secondary
   ECC and scrub reads escape uncorrected.

Run:  python examples/reactive_scrubbing.py
"""

import numpy as np

from repro.analysis import compute_ground_truth
from repro.controller import Scrubber
from repro.ecc import random_sec_code
from repro.memory import OnDieEccChip, sample_word_profile
from repro.repair import ErrorProfile


def main() -> None:
    rng = np.random.default_rng(23)
    code = random_sec_code(64, rng)
    num_words = 8

    profiles = [sample_word_profile(code, 4, 0.5, rng) for _ in range(num_words)]
    truths = [compute_ground_truth(code, p) for p in profiles]

    def build_chip(seed):
        chip = OnDieEccChip(code, num_words=num_words, rng=np.random.default_rng(seed))
        for index, profile in enumerate(profiles):
            chip.set_error_profile(index, profile)
        return chip

    # Scenario A: scrubbing alone (no active profiling).
    report_a = Scrubber(build_chip(1)).run(num_passes=50)
    print("scrubbing alone:")
    print(f"  identified {report_a.identified_bits} bits, "
          f"{report_a.escaped_reads} escaped reads (uncorrectable)")

    # Scenario B: HARP's active phase first — every direct-risk bit repaired.
    store = ErrorProfile()
    for index, truth in enumerate(truths):
        store.mark_many(index, truth.direct_at_risk)
    report_b = Scrubber(build_chip(1), profile=store).run(num_passes=50)
    indirect_total = sum(len(t.indirect_at_risk) for t in truths)
    print("scrubbing after HARP active phase:")
    print(f"  identified {report_b.identified_bits} of {indirect_total} "
          f"indirect-risk bits, {report_b.escaped_reads} escaped reads")
    if report_b.clean:
        print("  -> no read ever exceeded the secondary SEC capability")

    latencies = sorted(report_b.identification_pass.values())
    if latencies:
        print(f"  identification latency (scrub passes): "
              f"first={latencies[0]}, median={latencies[len(latencies) // 2]}, "
              f"last={latencies[-1]}")


if __name__ == "__main__":
    main()
