#!/usr/bin/env python3
"""Explore how on-die ECC design choices shape the indirect-error surface.

The paper (§2.5.2) notes that the parity-check column arrangement is a free
design parameter, and cites work on "minimal aliasing" codes that choose
arrangements to reduce miscorrections.  This example quantifies that
freedom: across random (71, 64) SEC codes it measures

* how many double-error patterns miscorrect (vs. detect), and
* how unevenly miscorrections concentrate on individual data bits,

then contrasts a (7, 4) perfect Hamming code (every double error
miscorrects) with shortened codes (some double errors are detected).

Run:  python examples/ecc_design_exploration.py
"""

import numpy as np

from repro.ecc import paper_example_code, random_sec_code
from repro.ecc.code_analysis import miscorrection_profile, syndrome_coverage
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(3)

    perfect = paper_example_code()
    profile = miscorrection_profile(perfect, 2)
    print(f"(7,4) perfect Hamming: {profile.miscorrecting_patterns}/{profile.total_patterns} "
          f"double errors miscorrect (rate {profile.miscorrection_rate:.0%})")
    print()

    rows = []
    for index in range(6):
        code = random_sec_code(64, rng)
        profile = miscorrection_profile(code, 2)
        matched, total = syndrome_coverage(code)
        counts = np.array(profile.target_counts)
        rows.append(
            [
                f"code-{index}",
                f"{matched}/{total}",
                f"{profile.miscorrection_rate:.1%}",
                int(counts.max()),
                f"{counts[: code.k].sum() / max(1, counts.sum()):.0%}",
            ]
        )
    print(
        format_table(
            [
                "random (71,64) code",
                "matched syndromes",
                "2-bit miscorrection rate",
                "worst per-bit aliasing",
                "aliasing into data bits",
            ],
            rows,
        )
    )
    print()
    print("Interpretation: every random arrangement leaves a different")
    print("miscorrection surface — exactly why a profiler without visibility")
    print("into the correction process (paper challenge 2) cannot predict")
    print("which bits are at indirect risk without knowing H (HARP-A) or")
    print("bypassing correction entirely (HARP-U).")


if __name__ == "__main__":
    main()
