#!/usr/bin/env python3
"""Quickstart: profile one ECC word with HARP and inspect the results.

Walks the library's core loop end to end:

1. build a random (71, 64) SEC Hamming code — the on-die ECC;
2. plant at-risk bits in a simulated ECC word;
3. compute the exact ground truth (direct / indirect / post-correction
   at-risk bits);
4. run HARP-U and Naive profiling for 32 rounds and compare coverage.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import compute_ground_truth
from repro.ecc import random_sec_code
from repro.memory import sample_word_profile
from repro.profiling import HarpUProfiler, NaiveProfiler, simulate_word


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. The proprietary on-die ECC: a random systematic SEC Hamming code.
    code = random_sec_code(64, rng)
    print(f"on-die ECC: {code.name} (n={code.n}, k={code.k}, t={code.t})")

    # 2. One ECC word with four at-risk cells, each failing 50% of the time
    #    while charged.
    word = sample_word_profile(code, count=4, probability=0.5, rng=rng)
    print(f"at-risk codeword positions: {word.positions}")

    # 3. Exact ground truth — what a perfect profiler would have to find.
    truth = compute_ground_truth(code, word)
    print(f"  direct-risk data bits:    {sorted(truth.direct_at_risk)}")
    print(f"  indirect-risk data bits:  {sorted(truth.indirect_at_risk)}")
    print(f"  post-correction at-risk:  {sorted(truth.post_correction_at_risk)}")

    # 4. Profile with HARP-U (bypass reads) and Naive (corrected reads).
    rounds = 32
    for profiler_cls in (HarpUProfiler, NaiveProfiler):
        profiler = profiler_cls(code, seed=1)
        result = simulate_word(profiler, word, num_rounds=rounds, word_seed=42)
        found = result.final_identified()
        direct_cov = len(found & truth.direct_at_risk) / max(1, len(truth.direct_at_risk))
        print(
            f"{profiler.name:8s} after {rounds} rounds: identified {sorted(found)} "
            f"-> direct coverage {direct_cov:.0%}"
        )


if __name__ == "__main__":
    main()
