#!/usr/bin/env python3
"""The full practical pipeline: reverse-engineer the on-die ECC, then HARP-A.

HARP-A needs the proprietary parity-check matrix.  The paper points to the
BEER methodology [145] for obtaining it without manufacturer support; this
example runs the whole chain:

1. treat the chip's ECC as a black box and recover its parity-check matrix
   from injected error patterns (BEER-lite);
2. hand the recovered code to HARP-A, which precomputes indirect-risk bits
   from the direct errors it observes;
3. verify the predictions match those made with the true (hidden) code.

Run:  python examples/reverse_engineer_then_profile.py
"""

import numpy as np

from repro.analysis import compute_ground_truth, predict_indirect_from_direct
from repro.ecc import random_sec_code, reverse_engineer, simulate_injection
from repro.memory import sample_word_profile
from repro.profiling import HarpAProfiler, simulate_word


def main() -> None:
    rng = np.random.default_rng(17)

    # The chip's proprietary on-die ECC — unknown to the controller.
    hidden_code = random_sec_code(64, rng)
    print(f"hidden on-die ECC: {hidden_code.name} (contents secret)")

    # Step 1: black-box reverse engineering via error injection.
    recovered = reverse_engineer(
        simulate_injection(hidden_code),
        hidden_code.k,
        hidden_code.p,
        np.random.default_rng(18),
    )
    assert recovered is not None, "injection budget too small"
    exact = recovered == hidden_code
    print(f"reverse engineering: recovered a (71,64) code, exact match = {exact}")

    # Step 2: HARP-A profiling using the *recovered* matrix.
    word = sample_word_profile(hidden_code, 4, 0.75, rng)
    truth = compute_ground_truth(hidden_code, word)
    profiler = HarpAProfiler(recovered, seed=1)
    result = simulate_word(profiler, word, num_rounds=24, word_seed=3)

    identified = result.final_identified()
    direct_found = identified & truth.direct_at_risk
    indirect_predicted = profiler.identified_predicted

    print(f"at-risk bits (hidden truth): direct={sorted(truth.direct_at_risk)}, "
          f"indirect={sorted(truth.indirect_at_risk)}")
    print(f"HARP-A found direct bits:    {sorted(direct_found)}")
    print(f"HARP-A predicted indirect:   {sorted(indirect_predicted)}")

    # Step 3: the recovered matrix predicts exactly what the true one would.
    reference = predict_indirect_from_direct(hidden_code, profiler.identified_observed)
    agree = indirect_predicted == reference
    print(f"predictions match the true code's: {agree}")


if __name__ == "__main__":
    main()
