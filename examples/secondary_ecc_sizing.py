#!/usr/bin/env python3
"""Size the secondary ECC for stronger on-die codes (paper §6.3.2).

The paper's rule: the reactive-profiling secondary ECC needs correction
capability at least equal to the on-die ECC's, because an N-error-
correcting on-die code can inject up to N indirect errors at once.  This
example verifies the rule empirically for both SEC Hamming (N=1) and the
double-error-correcting BCH extension (N=2): after full direct coverage,
the worst-case simultaneous post-correction error count is exactly bounded
by N — and a SEC secondary ECC is insufficient for a DEC on-die code.

Run:  python examples/secondary_ecc_sizing.py
"""

import numpy as np

from repro.analysis import compute_ground_truth, max_simultaneous_post_errors
from repro.ecc import bch_dec_code, random_sec_code
from repro.memory import sample_word_profile
from repro.utils.tables import format_table


def worst_case_after_direct_coverage(code, num_words: int, at_risk: int, seed: int) -> int:
    """Max simultaneous post-correction errors once direct bits are repaired."""
    rng = np.random.default_rng(seed)
    worst = 0
    for _ in range(num_words):
        profile = sample_word_profile(code, at_risk, probability=0.5, rng=rng)
        truth = compute_ground_truth(code, profile)
        missed = truth.post_correction_at_risk - truth.direct_at_risk
        worst = max(worst, max_simultaneous_post_errors(truth, missed))
    return worst


def main() -> None:
    sec = random_sec_code(64, np.random.default_rng(1))
    dec = bch_dec_code(16)

    rows = []
    for code, label in ((sec, "SEC Hamming (71,64), N=1"), (dec, f"DEC BCH {dec.name}, N=2")):
        worst = worst_case_after_direct_coverage(code, num_words=40, at_risk=5, seed=2)
        rows.append(
            [
                label,
                code.t,
                worst,
                "SEC" if worst <= 1 else ("DEC" if worst <= 2 else f">{worst - 1}EC"),
            ]
        )
    print(
        format_table(
            [
                "on-die ECC",
                "on-die capability N",
                "worst concurrent indirect errors",
                "required secondary ECC",
            ],
            rows,
        )
    )
    print()
    print("The indirect-error bound equals the on-die correction capability,")
    print("so the secondary ECC must match it (paper §6.3.2): SEC suffices")
    print("for today's on-die SEC codes; a DEC on-die code needs a DEC")
    print("secondary code for safe reactive profiling.")


if __name__ == "__main__":
    main()
