"""Bench: the bit-packed GF(2) kernel tier against the unpacked reference.

Times ``repro.ecc.gf2`` elimination and solving under both kernel tiers
(forced via ``REPRO_GF2_TIER``), the ChargeSystem basis representations,
and a shared-cache worker-pool sweep against the serial engine —
recorded to ``results/kernel_scaling.txt`` through the
``kernel_scaling`` fixture.

Every timed pair also asserts bit-identity between the tiers, and the
eliminate/solve pairs assert the >=2x kernel speedup the packed tier
exists for.  The ChargeSystem pair is recorded *without* a packed-wins
assertion: at on-die-ECC scale (k <= 64, one machine word per row) the
integer basis is already word-packed — which is exactly why the auto
tier keeps it and the packed basis only engages when forced.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis.atrisk import _solve_charge_ints
from repro.analysis.memo import clear_analysis_caches
from repro.ecc import gf2
from repro.ecc.hamming import random_sec_code
from repro.experiments.config import SweepConfig
from repro.experiments.runner import clear_engine_caches, run_sweep

#: Elimination shapes are tall: the unpacked reference pays a Python-level
#: row scan per column, the packed kernel a broadcast XOR — tall systems
#: are where dense GF(2) elimination actually hurts.
ELIMINATE_SHAPE = (2048, 1024)
SOLVE_SHAPE = (4096, 512)

SWEEP_GRID = SweepConfig(
    num_codes=3,
    words_per_code=6,
    num_rounds=96,
    error_counts=(2, 4),
    probabilities=(0.5, 1.0),
)


def _tier_timed(tier: str, fn, reps: int = 3):
    """Best-of-``reps`` CPU seconds of ``fn()`` under a forced tier."""
    previous = os.environ.get(gf2._TIER_ENV)
    os.environ[gf2._TIER_ENV] = tier
    try:
        best = float("inf")
        result = None
        for _ in range(reps):
            started = time.process_time()
            result = fn()
            best = min(best, time.process_time() - started)
        return best, result
    finally:
        if previous is None:
            os.environ.pop(gf2._TIER_ENV, None)
        else:
            os.environ[gf2._TIER_ENV] = previous


def test_eliminate_packed_speedup(kernel_scaling):
    rows, cols = ELIMINATE_SHAPE
    matrix = np.random.default_rng(2021).integers(0, 2, (rows, cols), dtype=np.uint8)
    unpacked_s, (ref, ref_pivots) = _tier_timed(
        "unpacked", lambda: gf2.row_reduce(matrix), reps=5
    )
    packed_s, (out, out_pivots) = _tier_timed(
        "packed", lambda: gf2.row_reduce(matrix), reps=5
    )
    assert np.array_equal(ref, out) and ref_pivots == out_pivots
    kernel_scaling["eliminate-unpacked-cpu"] = unpacked_s
    kernel_scaling["eliminate-packed-cpu"] = packed_s
    speedup = unpacked_s / packed_s
    assert speedup >= 2.0, f"packed eliminate {speedup:.2f}x < 2x over unpacked"


def test_solve_packed_speedup(kernel_scaling):
    rows, cols = SOLVE_SHAPE
    rng = np.random.default_rng(2022)
    matrix = rng.integers(0, 2, (rows, cols), dtype=np.uint8)
    witness = rng.integers(0, 2, cols, dtype=np.uint8)
    rhs = (matrix.astype(np.int64) @ witness.astype(np.int64) % 2).astype(np.uint8)
    unpacked_s, ref = _tier_timed("unpacked", lambda: gf2.solve(matrix, rhs), reps=5)
    packed_s, out = _tier_timed("packed", lambda: gf2.solve(matrix, rhs), reps=5)
    assert ref is not None and np.array_equal(ref, out)
    kernel_scaling["solve-unpacked-cpu"] = unpacked_s
    kernel_scaling["solve-packed-cpu"] = packed_s
    speedup = unpacked_s / packed_s
    assert speedup >= 2.0, f"packed solve {speedup:.2f}x < 2x over unpacked"


def test_charge_system_tier_identity_and_timing(kernel_scaling):
    """Both basis representations, timed on paper-scale charge systems.

    No packed-wins assertion (module docstring) — the record tracks the
    cost of the forced-packed CI leg instead, and identity is the hard
    requirement.
    """
    rng = np.random.default_rng(2023)
    cases = []
    for _ in range(60):
        code = random_sec_code(64, rng)
        charged = frozenset(int(v) for v in rng.choice(code.n, size=8, replace=False))
        cases.append((code, charged))

    def run_all():
        return [_solve_charge_ints(code, charged, frozenset()) for code, charged in cases]

    int_s, ref = _tier_timed("unpacked", run_all, reps=5)
    packed_s, out = _tier_timed("packed", run_all, reps=5)
    assert ref == out
    kernel_scaling["charge-int-cpu"] = int_s
    kernel_scaling["charge-packed-cpu"] = packed_s


def test_sweep_shared_cache_pool(kernel_scaling):
    """Serial sweep vs shared-cache worker pool: identical cells, wall-clocks.

    On a single-CPU host the pool entry only tracks its overhead; the
    bit-identity assertion is the part that must always hold.
    """
    clear_engine_caches()
    clear_analysis_caches()
    started = time.perf_counter()
    serial = run_sweep(SWEEP_GRID)
    kernel_scaling["sweep-serial"] = time.perf_counter() - started

    clear_engine_caches()
    clear_analysis_caches()
    started = time.perf_counter()
    pooled = run_sweep(SWEEP_GRID, jobs=0, shared_cache=True)
    kernel_scaling["sweep-shared-pool"] = time.perf_counter() - started
    assert pooled.cells == serial.cells
