"""Bench: cell-batched simulation kernel vs the per-word scalar path.

Times the non-adaptive Fig 6 grid (default ``SweepConfig`` scale, the
three profilers the batched kernel dispatches) through
:func:`simulate_words_batched` against the per-word
:func:`simulate_word` reference, asserts bit identity of every trace,
and pins the speedup floor recorded in
``benchmarks/results/BENCH_batched.json``.

Modes:

- full (default): measures the complete 48-cell grid and **rewrites**
  ``BENCH_batched.json`` with the observed numbers (keeping the pinned
  floor), so the repo's perf trajectory stays machine-readable.
- smoke (``REPRO_BENCH_SMOKE=1``): measures a reduced 12-cell slice of
  the same grid and only asserts the committed floor — the CI
  perf-regression gate.
"""

import json
import os
import pathlib
import time

from repro.analysis.memo import clear_analysis_caches
from repro.experiments import runner as engine
from repro.experiments.config import SweepConfig
from repro.memory.error_model import WordErrorProfile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import simulate_word, simulate_words_batched

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_batched.json"
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NON_ADAPTIVE = ("Naive", "HARP-U", "HARP-A")
FULL_GRID = SweepConfig(profilers=NON_ADAPTIVE)
SMOKE_GRID = SweepConfig(
    profilers=NON_ADAPTIVE, error_counts=(2, 5), probabilities=(0.5, 1.0)
)
GRID = SMOKE_GRID if SMOKE else FULL_GRID
#: Best-of repetitions; CPU time is compared, so scheduler noise mostly
#: cancels, but the floor assertion still wants the minimum.
REPS = 5


def _cells(config: SweepConfig):
    for error_count in config.error_counts:
        words = engine._words_for(config, error_count)
        for probability in config.probabilities:
            for name in config.profilers:
                yield PROFILER_REGISTRY[name], words, probability, error_count


def _scalar_grid(config: SweepConfig):
    runs = []
    for cls, words, probability, _error_count in _cells(config):
        for ctx in words:
            profile = WordErrorProfile(
                ctx.positions, tuple(probability for _ in ctx.positions)
            )
            runs.append(
                simulate_word(
                    cls(ctx.code, seed=ctx.word_seed),
                    profile,
                    config.num_rounds,
                    ctx.word_seed,
                    artifacts=engine._artifacts_for(ctx, config),
                )
            )
    return runs


def _batched_grid(config: SweepConfig):
    runs = []
    for cls, words, probability, error_count in _cells(config):
        profiles = [
            WordErrorProfile(ctx.positions, tuple(probability for _ in ctx.positions))
            for ctx in words
        ]
        profilers = [cls(ctx.code, seed=ctx.word_seed) for ctx in words]
        runs.extend(
            simulate_words_batched(
                profilers,
                profiles,
                config.num_rounds,
                [ctx.word_seed for ctx in words],
                batch_artifacts=engine._batch_stacks_for(config, error_count),
            )
        )
    return runs


def _best_of(run, reps: int = REPS):
    best, result = None, None
    for _ in range(reps):
        clear_analysis_caches()
        run()  # warm the decode memos outside the timed region
        start = time.process_time()
        result = run()
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _load_floor() -> float:
    if BASELINE_PATH.exists():
        return float(json.loads(BASELINE_PATH.read_text())["floor"])
    return 3.0


def test_batched_kernel_speedup_floor():
    engine.clear_engine_caches()
    scalar_seconds, scalar_runs = _best_of(lambda: _scalar_grid(GRID))
    batched_seconds, batched_runs = _best_of(lambda: _batched_grid(GRID))

    # Bit identity over the whole grid, word for word.
    assert len(scalar_runs) == len(batched_runs)
    for reference, candidate in zip(scalar_runs, batched_runs):
        assert reference.identified_per_round == candidate.identified_per_round
        assert reference.observed_per_round == candidate.observed_per_round
        assert reference.failures_per_round == candidate.failures_per_round

    speedup = scalar_seconds / batched_seconds
    floor = _load_floor()
    summary = (
        f"batched kernel: scalar {scalar_seconds:.3f}s CPU, "
        f"batched {batched_seconds:.3f}s CPU, {speedup:.2f}x "
        f"({'smoke' if SMOKE else 'full'} grid, floor {floor:.1f}x)"
    )
    print(f"\n{summary}")

    assert speedup >= floor, summary

    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "bench": "bench_batched_words",
                    "floor": floor,
                    "speedup": round(speedup, 2),
                    "scalar_cpu_s": round(scalar_seconds, 3),
                    "batched_cpu_s": round(batched_seconds, 3),
                    "grid": {
                        "num_codes": GRID.num_codes,
                        "words_per_code": GRID.words_per_code,
                        "num_rounds": GRID.num_rounds,
                        "error_counts": list(GRID.error_counts),
                        "probabilities": list(GRID.probabilities),
                        "profilers": list(GRID.profilers),
                    },
                    "reps": REPS,
                    "timing": "best-of CPU (time.process_time)",
                },
                indent=2,
            )
            + "\n"
        )
        print(f"[baseline saved to {BASELINE_PATH}]")
