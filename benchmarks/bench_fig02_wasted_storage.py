"""Bench: Fig 2 — expected wasted storage vs. RBER per repair granularity.

Regenerates the paper's motivation figure (closed form).  The key rows:
bit-granularity repair wastes nothing; 1024-bit granularity exceeds 99%
waste near RBER 6.8e-3.
"""

from conftest import save_exhibit

from repro.experiments import fig2


def test_fig2_wasted_storage(benchmark, results_dir):
    result = benchmark(fig2.run)
    # Paper claims: bit-granularity never wastes; 1024-bit peaks >99%.
    assert all(v == 0.0 for v in result.series[1])
    _, peak = result.peak_waste(1024)
    assert peak > 0.99
    save_exhibit(results_dir, "fig02_wasted_storage", fig2.render(result))
