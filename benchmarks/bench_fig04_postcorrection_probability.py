"""Bench: Fig 4 — per-bit post-correction error probability distributions.

Exact enumeration over random (71, 64) codes with the 0xFF pattern and
per-bit pre-correction probability 0.5.  The paper's observations: the
post-correction distribution spreads far below the 0.5 pre-correction
line and shifts toward zero as the error count grows.
"""

from conftest import save_exhibit

from repro.experiments import fig4


def run_fig4():
    return fig4.run(fig4.Fig4Config(num_codes=6, words_per_code=12))


def test_fig4_postcorrection_probability(benchmark, results_dir):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    medians = [result.summary(count)["median"] for count in result.config.error_counts]
    # All medians sit below the pre-correction probability...
    assert all(median < 0.5 for median in medians)
    # ...and the tail counts drift toward zero (paper: violins shift down).
    assert medians[-1] <= medians[1]
    save_exhibit(results_dir, "fig04_postcorrection_probability", fig4.render(result))
