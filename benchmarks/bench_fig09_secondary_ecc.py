"""Bench: Fig 9 — secondary-ECC capability required after active profiling.

Paper claims checked: HARP words are bounded at one simultaneous
post-correction error after the full active phase (9a), and HARP reaches
the capability-1 bound no later than Naive wherever Naive reaches it (9b).
"""

from conftest import save_exhibit

from repro.experiments import fig9


def test_fig9_secondary_ecc(benchmark, bench_sweep, results_dir):
    result = benchmark(fig9.from_sweep, bench_sweep)
    config = bench_sweep.config
    for error_count in config.error_counts:
        for probability in config.probabilities:
            for name in ("HARP-U", "HARP-A"):
                histogram = result.histograms[(error_count, probability, name)]
                assert sum(histogram.counts[2:]) == 0
            harp = result.rounds_to_bound[(error_count, probability, "HARP-U", 1)]
            naive = result.rounds_to_bound[(error_count, probability, "Naive", 1)]
            if naive is not None:
                assert harp is not None and harp <= naive
    save_exhibit(results_dir, "fig09_secondary_ecc", fig9.render(result))
