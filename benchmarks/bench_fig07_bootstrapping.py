"""Bench: Fig 7 — rounds spent bootstrapping (first direct error found).

Paper claims checked: HARP identifies its first error no later than the
baselines (median), and is never censored at p = 100%.
"""

from conftest import save_exhibit

from repro.experiments import fig7


def test_fig7_bootstrapping(benchmark, bench_sweep, results_dir):
    result = benchmark(fig7.from_sweep, bench_sweep)
    config = bench_sweep.config
    for error_count in config.error_counts:
        for probability in config.probabilities:
            harp = result.median(error_count, probability, "HARP-U")
            assert harp <= result.median(error_count, probability, "Naive")
            assert harp <= result.median(error_count, probability, "BEEP")
        assert result.censored_fraction(error_count, 1.0, "HARP-U") == 0.0
    save_exhibit(results_dir, "fig07_bootstrapping", fig7.render(result))
