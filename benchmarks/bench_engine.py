"""Bench: raw throughput of the core engines.

Measures the pieces the exhibit benches build on: the Monte-Carlo word
simulator for each profiler, the exact ground-truth computation, and the
batch decoder — plus the sweep execution engine against the pinned
pre-engine loop (serial) and a worker pool (parallel), recorded to
``results/sweep_scaling.txt`` through the ``sweep_scaling`` fixture.
"""

import time

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth, predict_indirect_from_direct
from repro.analysis.memo import clear_analysis_caches
from repro.ecc.hamming import random_sec_code
from repro.experiments.config import SweepConfig
from repro.experiments.runner import (
    SweepCell,
    SweepResult,
    clear_engine_caches,
    metrics_for_run,
    run_sweep,
)
from repro.memory.error_model import sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.base import ReadMode
from repro.profiling.runner import (
    WordRunResult,
    post_correction_data_errors,
    simulate_word,
)
from repro.utils.rng import derive_rng, derive_seed


@pytest.fixture(scope="module")
def word_setup():
    rng = np.random.default_rng(2021)
    code = random_sec_code(64, rng)
    profile = sample_word_profile(code, 4, 0.5, rng)
    return code, profile


@pytest.mark.parametrize("profiler_name", sorted(PROFILER_REGISTRY))
def test_simulate_word_128_rounds(benchmark, word_setup, profiler_name):
    code, profile = word_setup
    profiler_cls = PROFILER_REGISTRY[profiler_name]

    def run():
        return simulate_word(profiler_cls(code, seed=1), profile, 128, word_seed=1)

    result = benchmark(run)
    assert result.num_rounds == 128


def test_ground_truth_computation(benchmark, word_setup):
    code, profile = word_setup
    truth = benchmark(compute_ground_truth, code, profile)
    assert truth.direct_at_risk <= set(profile.positions)


def test_batch_decode_throughput(benchmark, word_setup):
    code, _ = word_setup
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, (512, code.k), dtype=np.uint8)
    codewords = code.encode(data)
    flips = rng.integers(0, code.n, size=512)
    for row, position in enumerate(flips):
        codewords[row, position] ^= 1

    decoded = benchmark(code.decode_batch, codewords)
    assert (decoded == data).all()


# ----------------------------------------------------------------------
# Sweep execution engine: legacy vs engine-serial vs engine-parallel
# ----------------------------------------------------------------------

#: The default Fig 6 grid (paper scale parameters, reduced samples are NOT
#: applied here — this is the grid the acceptance speedup is measured on).
SWEEP_GRID = SweepConfig()


class _SeedHarpAProfiler(PROFILER_REGISTRY["HARP-A"]):
    """Seed-revision HARP-A: refreshes its prediction uncached.

    The library's HARP-A now memoizes ``predict_indirect_from_direct``;
    the seed revision recomputed it on every direct-risk discovery, so
    the baseline must too.
    """

    def observe(self, round_index, written, mismatches):
        before = len(self._observed)
        self._observed.update(mismatches)
        if len(self._observed) != before:
            self._predicted = predict_indirect_from_direct(self.code, self._observed)


class _SeedHarpABeepProfiler(PROFILER_REGISTRY["HARP-A+BEEP"]):
    """Seed-revision hybrid: its active phase uses the uncached HARP-A."""

    def __init__(self, code, seed, pattern="random", switch_round=16):
        super().__init__(code, seed, pattern, switch_round)
        self._harp = _SeedHarpAProfiler(code, seed, pattern)


#: Profiler registry as the seed revision behaved (no memoized prediction).
_SEED_PROFILERS = dict(
    PROFILER_REGISTRY,
    **{"HARP-A": _SeedHarpAProfiler, "HARP-A+BEEP": _SeedHarpABeepProfiler},
)


def _seed_simulate_word(profiler, profile, num_rounds, word_seed) -> WordRunResult:
    """The seed revision's per-word simulation loop, pinned verbatim.

    Re-derives the per-round pattern stack per call, reduces the failure
    mask round by round, re-decodes repeated failure patterns, and
    rebuilds the cumulative trace sets every round — the per-run waste
    the current runner eliminates.
    """
    code = profiler.code
    draws = derive_rng(word_seed, "failure-draws").random((num_rounds, profile.count))
    probabilities = np.asarray(profile.probabilities, dtype=float)
    positions = np.asarray(profile.positions, dtype=np.intp)

    identified_trace, observed_trace, failure_trace = [], [], []
    if profiler.adaptive:
        written_rounds = None
    else:
        written_rounds = np.stack(
            [profiler.pattern_for_round(r) for r in range(num_rounds)]
        )
        if profile.count:
            codewords = code.encode(written_rounds)
            failed_matrix = codewords[..., positions].astype(bool) & (draws < probabilities)
        else:
            failed_matrix = np.zeros((num_rounds, 0), dtype=bool)

    for round_index in range(num_rounds):
        if written_rounds is None:
            written = profiler.pattern_for_round(round_index)
            if profile.count:
                codeword = code.encode(written)
                failed_mask = codeword[..., positions].astype(bool) & (
                    draws[round_index] < probabilities
                )
            else:
                failed_mask = np.zeros(0, dtype=bool)
        else:
            written = written_rounds[round_index]
            failed_mask = failed_matrix[round_index]
        failed = tuple(int(p) for p in positions[failed_mask]) if failed_mask.any() else ()
        failure_trace.append(failed)

        if profiler.read_mode_for(round_index) == ReadMode.BYPASS:
            mismatches = frozenset(p for p in failed if p < code.k)
        else:
            mismatches = post_correction_data_errors(code, failed)
        profiler.observe(round_index, written, mismatches)
        identified_trace.append(profiler.identified)
        observed_trace.append(profiler.identified_observed)

    return WordRunResult(
        identified_per_round=identified_trace,
        observed_per_round=observed_trace,
        failures_per_round=failure_trace,
    )


def _legacy_run_sweep(config) -> SweepResult:
    """The pre-engine serial sweep loop, pinned for comparison.

    This reproduces the seed revision's behaviour verbatim: words are
    re-sampled and ground truth re-enumerated inside the probability
    loop, and every per-round pattern is re-derived per profiler run
    (:func:`_seed_simulate_word`, no precomputed artifacts).  Kept here so
    the bench trajectory keeps measuring exactly the waste the engine
    eliminates.
    """
    cells = {}
    for error_count in config.error_counts:
        for probability in config.probabilities:
            words = []
            for code_index in range(config.num_codes):
                code_rng = derive_rng(config.seed, "code", config.k, code_index)
                code = random_sec_code(config.k, code_rng)
                for word_index in range(config.words_per_code):
                    word_rng = derive_rng(
                        config.seed, "word", error_count, code_index, word_index
                    )
                    profile = sample_word_profile(code, error_count, probability, word_rng)
                    ground_truth = compute_ground_truth(code, profile)
                    word_seed = derive_seed(
                        config.seed, "draws", error_count, code_index, word_index
                    )
                    words.append((code, profile, ground_truth, word_seed))
            for profiler_name in config.profilers:
                profiler_cls = _SEED_PROFILERS[profiler_name]
                metrics = []
                for code, profile, ground_truth, word_seed in words:
                    profiler = profiler_cls(code, seed=word_seed, pattern=config.pattern)
                    run = _seed_simulate_word(profiler, profile, config.num_rounds, word_seed)
                    metrics.append(metrics_for_run(run, ground_truth, config.num_rounds))
                cells[(error_count, probability, profiler_name)] = SweepCell(
                    error_count=error_count,
                    probability=probability,
                    profiler=profiler_name,
                    words=metrics,
                )
    return SweepResult(config=config, cells=cells)


def _cold_caches() -> None:
    clear_engine_caches()
    clear_analysis_caches()


def _timed(label: str, sweep_scaling: dict, fn, *args, **kwargs):
    """Run ``fn`` cold, recording wall-clock and CPU seconds.

    CPU time is recorded alongside wall-clock because serial runs on a
    shared/containerized host see wall-clock noise from neighbours; the
    speedup ratio is asserted on the stable CPU measurement.
    """
    _cold_caches()
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    result = fn(*args, **kwargs)
    sweep_scaling[f"{label}-cpu"] = time.process_time() - cpu_started
    sweep_scaling[label] = time.perf_counter() - wall_started
    return result


def test_run_sweep_legacy_serial(benchmark, sweep_scaling):
    result = benchmark.pedantic(
        lambda: _timed("legacy-serial", sweep_scaling, _legacy_run_sweep, SWEEP_GRID),
        rounds=1,
        iterations=1,
    )
    assert len(result.cells) == 80


def test_run_sweep_engine_serial(benchmark, sweep_scaling):
    result = benchmark.pedantic(
        lambda: _timed("engine-serial", sweep_scaling, run_sweep, SWEEP_GRID),
        rounds=1,
        iterations=1,
    )
    assert len(result.cells) == 80


def test_run_sweep_engine_parallel(benchmark, sweep_scaling):
    """Worker-pool run; on a single-CPU host this only tracks pool overhead.

    The pool does the work in child processes, so only the wall-clock
    entry is meaningful here.
    """
    result = benchmark.pedantic(
        lambda: _timed("engine-parallel", sweep_scaling, run_sweep, SWEEP_GRID, jobs=0),
        rounds=1,
        iterations=1,
    )
    assert len(result.cells) == 80


def test_engine_matches_legacy_and_meets_speedup(sweep_scaling):
    """The engine must be cell-identical to the legacy loop and >=2x faster.

    Runs after the timing benches (module order); verifies on their
    recorded CPU times rather than re-running the grid.
    """
    if "legacy-serial-cpu" not in sweep_scaling or "engine-serial-cpu" not in sweep_scaling:
        pytest.skip("timing benches did not run in this session")
    speedup = sweep_scaling["legacy-serial-cpu"] / sweep_scaling["engine-serial-cpu"]
    assert speedup >= 2.0, f"engine speedup {speedup:.2f}x < 2x over legacy sweep"

    # Spot-check cell identity on a reduced grid (full-grid identity is
    # covered by the unit suite; this guards the pinned legacy copy).
    small = SweepConfig(
        num_codes=2, words_per_code=3, num_rounds=32,
        error_counts=(2, 4), probabilities=(0.5, 1.0),
    )
    _cold_caches()
    legacy = _legacy_run_sweep(small)
    engine = run_sweep(small)
    assert legacy.cells.keys() == engine.cells.keys()
    for key in legacy.cells:
        assert legacy.cells[key].words == engine.cells[key].words, key


# ----------------------------------------------------------------------
# Metrics-reduction micro-bench (batched numpy set-ops vs per-word loop)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def metrics_cell():
    """A BENCH-shaped cell of traces: 48 words x 128 rounds per profiler."""
    from repro.analysis.memo import cached_ground_truth

    rng = np.random.default_rng(2021)
    code = random_sec_code(64, rng)
    cells = {}
    for name in ("Naive", "HARP-U", "HARP-A"):
        runs, truths = [], []
        for trial in range(48):
            profile = sample_word_profile(code, 4, 0.5, rng)
            truths.append(cached_ground_truth(code, profile.positions))
            profiler = PROFILER_REGISTRY[name](code, seed=trial)
            runs.append(simulate_word(profiler, profile, 128, word_seed=trial))
        cells[name] = (runs, truths)
    return cells


def test_metrics_reduction_batched_speedup(metrics_cell, sweep_scaling):
    """The batched reduction must be bit-identical and >=1.2x the loop.

    ``metrics_for_run`` is the pinned per-word reference;
    ``metrics_for_words`` amortizes the numpy set-ops over a whole
    cell's words.  CPU time over many repetitions keeps the ratio
    stable on shared hosts.
    """
    from repro.experiments.runner import metrics_for_words

    for runs, truths in metrics_cell.values():
        for run, truth, batched in zip(
            runs, truths, metrics_for_words(runs, truths, 128)
        ):
            assert batched == metrics_for_run(run, truth, 128)

    repetitions = 20
    started = time.process_time()
    for _ in range(repetitions):
        for runs, truths in metrics_cell.values():
            for run, truth in zip(runs, truths):
                metrics_for_run(run, truth, 128)
    loop_seconds = time.process_time() - started
    started = time.process_time()
    for _ in range(repetitions):
        for runs, truths in metrics_cell.values():
            metrics_for_words(runs, truths, 128)
    batched_seconds = time.process_time() - started
    sweep_scaling["metrics-loop-cpu"] = loop_seconds
    sweep_scaling["metrics-batched-cpu"] = batched_seconds
    speedup = loop_seconds / batched_seconds
    assert speedup >= 1.2, f"batched metrics reduction {speedup:.2f}x < 1.2x over loop"


def test_simulate_words_batched_speedup(sweep_scaling):
    """The cell-batched kernel must be bit-identical and beat the loop.

    A compact non-adaptive cell set (one code, three profilers, 48
    words x 128 rounds); the authoritative Fig 6-grid floor lives in
    ``bench_batched_words.py`` — this entry just lands the kernel in the
    ``sweep_scaling`` trajectory next to its engine siblings.
    """
    from repro.profiling.runner import WordArtifacts, simulate_words_batched

    rng = np.random.default_rng(2021)
    code = random_sec_code(64, rng)
    words = [
        (sample_word_profile(code, 4, 0.5, rng), trial) for trial in range(48)
    ]
    # Precompute the schedule encodings once, like the sweep engine does:
    # the kernels should be compared on simulation, not RNG re-derivation.
    artifacts = []
    for profile, seed in words:
        probe = PROFILER_REGISTRY["Naive"](code, seed=seed)
        schedule = np.stack([probe.pattern_for_round(r) for r in range(128)])
        artifacts.append(
            WordArtifacts(schedule=schedule, codewords=code.encode(schedule))
        )

    def scalar_pass():
        return [
            simulate_word(
                PROFILER_REGISTRY[name](code, seed=seed),
                profile,
                128,
                word_seed=seed,
                artifacts=artifact,
            )
            for name in ("Naive", "HARP-U", "HARP-A")
            for (profile, seed), artifact in zip(words, artifacts)
        ]

    def batched_pass():
        runs = []
        for name in ("Naive", "HARP-U", "HARP-A"):
            runs.extend(
                simulate_words_batched(
                    [PROFILER_REGISTRY[name](code, seed=seed) for _, seed in words],
                    [profile for profile, _ in words],
                    128,
                    [seed for _, seed in words],
                    artifacts=artifacts,
                )
            )
        return runs

    clear_analysis_caches()
    reference = scalar_pass()
    candidate = batched_pass()
    for ref, got in zip(reference, candidate):
        assert ref.identified_per_round == got.identified_per_round
        assert ref.observed_per_round == got.observed_per_round
        assert ref.failures_per_round == got.failures_per_round

    best_scalar = best_batched = None
    for _ in range(3):
        clear_analysis_caches()
        scalar_pass()  # warm the decode memos outside the timed region
        started = time.process_time()
        scalar_pass()
        elapsed = time.process_time() - started
        best_scalar = elapsed if best_scalar is None else min(best_scalar, elapsed)
        clear_analysis_caches()
        batched_pass()
        started = time.process_time()
        batched_pass()
        elapsed = time.process_time() - started
        best_batched = elapsed if best_batched is None else min(best_batched, elapsed)
    sweep_scaling["words-scalar-cpu"] = best_scalar
    sweep_scaling["words-batched-cpu"] = best_batched
    assert best_batched < best_scalar, (
        f"batched kernel {best_batched:.3f}s not faster than scalar {best_scalar:.3f}s"
    )


# ----------------------------------------------------------------------
# PAPER-preset wall-clock (one grid slice, extrapolated to the full grid)
# ----------------------------------------------------------------------


def test_run_sweep_paper_slice(sweep_scaling):
    """Wall-clock of a one-probability slice of the PAPER grid.

    Runs every (error count, profiler) cell at the full 2500 words/cell
    of the PAPER preset for a single probability — a quarter of the
    grid, covering the exponential ground-truth cost growth across
    error counts 2..5 that a single-error-count slice would understate.
    The conftest extrapolates the full-grid estimate by the probability
    count only (the probability just rescales failure draws, it does
    not change per-cell cost).  Excluded from CI (see the workflow's
    -k filter); run locally via
    ``pytest benchmarks/bench_engine.py -k paper_slice``.
    """
    from dataclasses import replace

    from repro.experiments.config import PAPER

    slice_config = replace(PAPER, probabilities=(0.5,))
    result = _timed("paper-slice", sweep_scaling, run_sweep, slice_config)
    assert len(result.cells) == len(PAPER.error_counts) * len(PAPER.profilers)
    sweep_scaling["paper-grid-estimate"] = sweep_scaling["paper-slice"] * len(
        PAPER.probabilities
    )
