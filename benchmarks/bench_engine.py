"""Bench: raw throughput of the core engines.

Measures the pieces the exhibit benches build on: the Monte-Carlo word
simulator for each profiler, the exact ground-truth computation, and the
batch decoder.
"""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import simulate_word


@pytest.fixture(scope="module")
def word_setup():
    rng = np.random.default_rng(2021)
    code = random_sec_code(64, rng)
    profile = sample_word_profile(code, 4, 0.5, rng)
    return code, profile


@pytest.mark.parametrize("profiler_name", sorted(PROFILER_REGISTRY))
def test_simulate_word_128_rounds(benchmark, word_setup, profiler_name):
    code, profile = word_setup
    profiler_cls = PROFILER_REGISTRY[profiler_name]

    def run():
        return simulate_word(profiler_cls(code, seed=1), profile, 128, word_seed=1)

    result = benchmark(run)
    assert result.num_rounds == 128


def test_ground_truth_computation(benchmark, word_setup):
    code, profile = word_setup
    truth = benchmark(compute_ground_truth, code, profile)
    assert truth.direct_at_risk <= set(profile.positions)


def test_batch_decode_throughput(benchmark, word_setup):
    code, _ = word_setup
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, (512, code.k), dtype=np.uint8)
    codewords = code.encode(data)
    flips = rng.integers(0, code.n, size=512)
    for row, position in enumerate(flips):
        codewords[row, position] ^= 1

    decoded = benchmark(code.decode_batch, codewords)
    assert (decoded == data).all()
