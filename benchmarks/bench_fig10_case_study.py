"""Bench: Fig 10 — data-retention case-study BER before/after secondary ECC.

The timed body runs a single-probability slice of the case study; the
paper-shape assertions and the saved exhibit use the full BENCH-scale
result from the shared session fixture.

Paper claims checked: HARP's post-secondary BER reaches exactly zero;
HARP gets there no later than Naive; the before-secondary curves are
non-increasing in profiling rounds.
"""

from conftest import save_exhibit

from repro.experiments import fig10
from repro.experiments.config import CaseStudyConfig

TIMED_SLICE = CaseStudyConfig(
    num_codes=2,
    words_per_stratum=3,
    num_rounds=128,
    probabilities=(0.5,),
    max_at_risk=4,
)


def test_fig10_parallel_matches_serial(benchmark):
    """The sharded runner with a worker pool is bit-identical to serial."""
    parallel = benchmark.pedantic(
        fig10.run, args=(TIMED_SLICE,), kwargs={"jobs": 2}, rounds=1, iterations=1
    )
    serial = fig10.run(TIMED_SLICE)
    assert parallel.ticks == serial.ticks
    assert parallel.before == serial.before
    assert parallel.after == serial.after
    assert parallel.rounds_to_zero == serial.rounds_to_zero


def test_fig10_case_study(benchmark, bench_case_study, results_dir):
    timed = benchmark.pedantic(fig10.run, args=(TIMED_SLICE,), rounds=1, iterations=1)
    assert timed.rounds_to_zero[(0.5, "HARP-U")] is not None

    result = bench_case_study
    config = result.config
    for probability in config.probabilities:
        harp = result.rounds_to_zero[(probability, "HARP-U")]
        naive = result.rounds_to_zero[(probability, "Naive")]
        assert harp is not None
        if naive is not None:
            assert harp <= naive
        for rber in config.rbers:
            assert result.after[(probability, rber, "HARP-U")][-1] == 0.0
            series = result.before[(probability, rber, "Naive")]
            assert list(series) == sorted(series, reverse=True)
    save_exhibit(results_dir, "fig10_case_study", fig10.render(result))
