"""Shared fixtures for the benchmark harness.

The Figs 6-9 exhibits all reduce the same Monte-Carlo sweep, so it is
computed once per session at BENCH scale and shared; each bench then
measures its own reduction and saves its rendered exhibit under
``benchmarks/results/`` for inspection (EXPERIMENTS.md quotes these).

``bench_engine.py`` additionally times the sweep execution engine against
the pre-engine legacy loop and a parallel run; the wall-clocks land in
``benchmarks/results/sweep_scaling.txt`` via :func:`sweep_scaling` so the
speedup is tracked across the bench trajectory.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.config import BENCH, CaseStudyConfig
from repro.experiments.runner import run_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Case-study scale used by the Fig 10 bench: full RBER/probability grid,
#: reduced Monte-Carlo samples.
BENCH_CASE_STUDY = CaseStudyConfig(
    num_codes=3,
    words_per_stratum=4,
    num_rounds=128,
    max_at_risk=5,
)


@pytest.fixture(scope="session")
def bench_sweep():
    """The BENCH-scale profiler sweep shared by the Fig 6-9 benches."""
    return run_sweep(BENCH)


@pytest.fixture(scope="session")
def bench_case_study():
    """The BENCH-scale Fig 10 case study (computed lazily, shared)."""
    from repro.experiments import fig10

    return fig10.run(BENCH_CASE_STUDY)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_scaling_json(
    results_dir: pathlib.Path,
    name: str,
    record: dict[str, float],
    speedups: dict[str, float],
) -> None:
    """Persist a scaling record as JSON beside its ``.txt`` rendition.

    The text files are for humans; the JSON twins give the repo a
    machine-readable perf trajectory (same timings, same derived
    speedups) that regression tooling can diff across commits.
    """
    path = results_dir / f"{name}.json"
    path.write_text(
        json.dumps(
            {
                "bench": name,
                "timings_s": {label: round(value, 3) for label, value in sorted(record.items())},
                "speedups": {label: round(value, 2) for label, value in speedups.items()},
            },
            indent=2,
        )
        + "\n"
    )


@pytest.fixture(scope="session")
def adaptive_scaling(results_dir: pathlib.Path) -> dict[str, float]:
    """Session-wide record of adaptive-path wall-clocks, persisted at teardown.

    ``bench_adaptive.py`` inserts ``label -> seconds`` entries
    (``pr1-adaptive-serial``, ``adaptive-serial``, ``adaptive-parallel``,
    ``fig10-serial``, ``fig10-parallel`` plus ``-cpu`` variants); derived
    speedups are appended so ``results/adaptive_scaling.txt`` is
    self-describing.
    """
    record: dict[str, float] = {}
    yield record
    if not record:
        return
    lines = [f"{label}: {seconds:.3f} s" for label, seconds in sorted(record.items())]
    speedups: dict[str, float] = {}
    for title, num, den in (
        ("adaptive speedup vs PR1 engine (serial wall-clock)", "pr1-adaptive-serial", "adaptive-serial"),
        ("adaptive speedup vs PR1 engine (serial CPU)", "pr1-adaptive-serial-cpu", "adaptive-serial-cpu"),
        ("parallel speedup vs adaptive-serial (wall-clock)", "adaptive-serial", "adaptive-parallel"),
        ("fig10 parallel speedup vs serial (wall-clock)", "fig10-serial", "fig10-parallel"),
    ):
        if num in record and den in record:
            speedups[title] = record[num] / record[den]
            lines.append(f"{title}: {speedups[title]:.2f}x")
    path = results_dir / "adaptive_scaling.txt"
    path.write_text("\n".join(lines) + "\n")
    write_scaling_json(results_dir, "adaptive_scaling", record, speedups)
    print(f"\n[adaptive scaling saved to {path}]")


@pytest.fixture(scope="session")
def sweep_scaling(results_dir: pathlib.Path) -> dict[str, float]:
    """Session-wide record of sweep wall-clocks, persisted at teardown.

    Benches insert ``label -> seconds`` entries (``legacy-serial``,
    ``engine-serial``, ``engine-parallel``); the derived speedups are
    appended so the trajectory file is self-describing.
    """
    record: dict[str, float] = {}
    yield record
    if not record:
        return
    lines = [
        f"{label}: {seconds:.3f} s"
        for label, seconds in sorted(record.items())
        if not label.endswith("-estimate")  # derived, rendered below
    ]
    speedups: dict[str, float] = {}
    for title, num, den in (
        ("engine speedup vs legacy (serial wall-clock)", "legacy-serial", "engine-serial"),
        ("engine speedup vs legacy (serial CPU)", "legacy-serial-cpu", "engine-serial-cpu"),
        ("parallel speedup vs engine-serial (wall-clock)", "engine-serial", "engine-parallel"),
        ("batched metrics reduction speedup vs per-word loop (CPU)", "metrics-loop-cpu", "metrics-batched-cpu"),
        ("batched word kernel speedup vs scalar (CPU)", "words-scalar-cpu", "words-batched-cpu"),
    ):
        if num in record and den in record:
            speedups[title] = record[num] / record[den]
            lines.append(f"{title}: {speedups[title]:.2f}x")
    if "paper-grid-estimate" in record:
        from repro.experiments.config import PAPER

        paper_cells = (
            len(PAPER.error_counts) * len(PAPER.probabilities) * len(PAPER.profilers)
        )
        lines.append(
            f"PAPER preset: full {paper_cells}-cell grid estimate "
            f"{record['paper-grid-estimate'] / 60:.1f} min serial "
            "(measured every error-count cell at one probability, "
            f"x{len(PAPER.probabilities)} probabilities; divide by the "
            "worker count for the socket/process backends)"
        )
    path = results_dir / "sweep_scaling.txt"
    path.write_text("\n".join(lines) + "\n")
    write_scaling_json(results_dir, "sweep_scaling", record, speedups)
    print(f"\n[sweep scaling saved to {path}]")


@pytest.fixture(scope="session")
def kernel_scaling(results_dir: pathlib.Path) -> dict[str, float]:
    """Session-wide record of GF(2) kernel-tier timings, persisted at teardown.

    ``bench_kernels.py`` inserts ``label -> seconds`` entries
    (``eliminate-unpacked-cpu``/``eliminate-packed-cpu``,
    ``solve-unpacked-cpu``/``solve-packed-cpu``,
    ``charge-int-cpu``/``charge-packed-cpu``, ``sweep-serial`` and
    ``sweep-shared-pool``); the derived tier speedups are appended so
    ``results/kernel_scaling.txt`` is self-describing.
    """
    record: dict[str, float] = {}
    yield record
    if not record:
        return
    lines = [f"{label}: {seconds:.3f} s" for label, seconds in sorted(record.items())]
    speedups: dict[str, float] = {}
    for title, num, den in (
        ("packed eliminate speedup vs unpacked (CPU)", "eliminate-unpacked-cpu", "eliminate-packed-cpu"),
        ("packed solve speedup vs unpacked (CPU)", "solve-unpacked-cpu", "solve-packed-cpu"),
        ("ChargeSystem packed basis vs integer basis (CPU)", "charge-int-cpu", "charge-packed-cpu"),
        ("shared-cache pool speedup vs serial sweep (wall-clock)", "sweep-serial", "sweep-shared-pool"),
    ):
        if num in record and den in record:
            speedups[title] = record[num] / record[den]
            lines.append(f"{title}: {speedups[title]:.2f}x")
    path = results_dir / "kernel_scaling.txt"
    path.write_text("\n".join(lines) + "\n")
    write_scaling_json(results_dir, "kernel_scaling", record, speedups)
    print(f"\n[kernel scaling saved to {path}]")


def save_exhibit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered exhibit and echo it for -s runs."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
