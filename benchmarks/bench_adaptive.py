"""Bench: the adaptive (BEEP/hybrid) profiler hot path vs. the PR 1 engine.

The non-adaptive sweep path was made cheap by the engine-layer caches, so
BEEP and HARP-A+BEEP cells dominate sweep wall-clock.  This bench pins
the PR 1 revision of that path — full GF(2) re-elimination per crafted
round, per-instance pattern caches, per-word O(n²) aliasing-pair
expansion — and measures the layered solver stack (incremental
:class:`~repro.analysis.atrisk.ChargeSystem` + code-level memo caches)
against it on a BEEP-heavy grid, recording wall-clocks to
``results/adaptive_scaling.txt`` through the ``adaptive_scaling``
fixture.  The sharded Fig 10 case study is timed serial vs. parallel the
same way.

Both comparisons also assert bit-identity: the cache layers and the
incremental solver must never change a trace.
"""

import time

import numpy as np
import pytest

from repro.analysis.atrisk import _solve_charge_ints
from repro.analysis.memo import clear_analysis_caches
from repro.experiments import fig10
from repro.experiments.config import CaseStudyConfig, SweepConfig
from repro.experiments.runner import (
    SweepCell,
    SweepResult,
    clear_engine_caches,
    metrics_for_run,
    run_sweep,
    shard_grid,
)
from repro.experiments.runner import _artifacts_for, _words_for  # engine caches
from repro.memory.error_model import WordErrorProfile, check_profile_positions
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.base import Profiler, ReadMode
from repro.profiling.runner import WordRunResult, post_correction_data_errors

#: The BEEP-heavy grid the acceptance speedup is measured on: the paper's
#: full parameter grid restricted to the two adaptive profilers.
ADAPTIVE_GRID = SweepConfig(profilers=("BEEP", "HARP-A+BEEP"))

#: Fig 10 scale used for the serial-vs-parallel shard-engine timing.
FIG10_GRID = CaseStudyConfig(num_codes=3, words_per_stratum=4, num_rounds=128, max_at_risk=5)


class _Pr1BeepProfiler(Profiler):
    """The PR 1 BeepProfiler, pinned verbatim.

    Re-eliminates the full (anchors | pair) system per distinct
    hypothesis, unpacks solutions with a per-bit list comprehension,
    rebuilds the O(n²) pair table per word, and caches patterns only per
    instance — the waste the memo layer and incremental solver eliminate.
    """

    name = "BEEP"
    adaptive = True

    def __init__(self, code, seed, pattern="random"):
        super().__init__(code, seed, pattern)
        self._columns = [code.column_int(i) for i in range(code.n)]
        self._column_index = {value: position for position, value in enumerate(self._columns)}
        self._hypotheses = []
        self._targets_expanded = set()
        self._next_hypothesis = 0
        self._pattern_cache = {}

    def _expand_target(self, target):
        if target in self._targets_expanded:
            return
        self._targets_expanded.add(target)
        target_column = self._columns[target]
        for a in range(self.code.n):
            partner = self._column_index.get(target_column ^ self._columns[a])
            if partner is not None and partner > a:
                self._hypotheses.append((target, (a, partner)))

    def observe(self, round_index, written, mismatches):
        for position in mismatches:
            if position not in self._observed:
                self._observed.add(position)
                self._expand_target(position)

    def _solve(self, charged):
        solution = _solve_charge_ints(self.code, charged, frozenset())
        if solution is None:
            return None
        return np.array([(solution >> i) & 1 for i in range(self.code.k)], dtype=np.uint8)

    def pattern_for_round(self, round_index):
        if not self._hypotheses:
            return super().pattern_for_round(round_index)
        anchors = frozenset(self._observed)
        for _ in range(len(self._hypotheses)):
            target, pair = self._hypotheses[self._next_hypothesis % len(self._hypotheses)]
            self._next_hypothesis += 1
            key = (anchors, pair)
            if key in self._pattern_cache:
                assignment = self._pattern_cache[key]
            else:
                assignment = self._solve(anchors | set(pair))
                self._pattern_cache[key] = assignment
            if assignment is not None:
                return assignment.copy()
        return super().pattern_for_round(round_index)


class _Pr1HybridProfiler(PROFILER_REGISTRY["HARP-A+BEEP"]):
    """The PR 1 hybrid: its crafted phase runs the pinned BEEP above."""

    def __init__(self, code, seed, pattern="random", switch_round=16):
        super().__init__(code, seed, pattern, switch_round)
        self._beep = _Pr1BeepProfiler(code, seed, pattern)


_PR1_PROFILERS = dict(
    PROFILER_REGISTRY, **{"BEEP": _Pr1BeepProfiler, "HARP-A+BEEP": _Pr1HybridProfiler}
)


def _pr1_simulate_word(profiler, profile, num_rounds, word_seed, artifacts) -> WordRunResult:
    """The PR 1 adaptive simulation loop, pinned verbatim.

    Per-run mismatch and charge-mask caches only (no cross-run sharing,
    no precomputed-schedule reuse on bootstrap rounds) — the per-run
    waste the current runner eliminates for adaptive profilers.
    """
    assert profiler.adaptive
    code = profiler.code
    check_profile_positions(profile, code.n)
    draws = artifacts.draws
    probabilities = np.asarray(profile.probabilities, dtype=float)
    positions = np.asarray(profile.positions, dtype=np.intp)

    identified_trace, observed_trace, failure_trace = [], [], []
    mismatch_cache = {}
    charged_cache = {}
    previous_observed_count = -1
    previous_predicted = None
    current_identified = frozenset()
    current_observed = frozenset()

    for round_index in range(num_rounds):
        written = profiler.pattern_for_round(round_index)
        if profile.count:
            pattern_key = written.tobytes()
            charged = charged_cache.get(pattern_key)
            if charged is None:
                charged = code.encode(written)[..., positions].astype(bool)
                charged_cache[pattern_key] = charged
            failed_mask = charged & (draws[round_index] < probabilities)
            failed = (
                tuple(int(p) for p in positions[failed_mask]) if failed_mask.any() else ()
            )
        else:
            failed = ()
        failure_trace.append(failed)

        mode = profiler.read_mode_for(round_index)
        key = (mode, failed)
        mismatches = mismatch_cache.get(key)
        if mismatches is None:
            if mode == ReadMode.BYPASS:
                mismatches = frozenset(p for p in failed if p < code.k)
            else:
                mismatches = post_correction_data_errors(code, failed)
            mismatch_cache[key] = mismatches
        profiler.observe(round_index, written, mismatches)
        observed_count = profiler.observation_count
        predicted = profiler.identified_predicted
        if observed_count != previous_observed_count or predicted != previous_predicted:
            current_identified = profiler.identified
            current_observed = profiler.identified_observed
            previous_observed_count = observed_count
            previous_predicted = predicted
        identified_trace.append(current_identified)
        observed_trace.append(current_observed)

    return WordRunResult(
        identified_per_round=identified_trace,
        observed_per_round=observed_trace,
        failures_per_round=failure_trace,
    )


def _pr1_run_sweep(config) -> SweepResult:
    """The PR 1 engine's serial sweep over the grid, with PR 1 profilers.

    Identical to the current engine in sampling, artifacts, and metrics —
    only the adaptive hot path differs (profiler internals and the
    per-word inner loop) — so the timing isolates exactly what this PR
    attacks.
    """
    cells = {}
    for shard in shard_grid(config):
        words = _words_for(config, shard.error_count)
        profiler_cls = _PR1_PROFILERS[shard.profiler]
        metrics = []
        for ctx in words:
            profile = WordErrorProfile(
                ctx.positions, tuple(shard.probability for _ in ctx.positions)
            )
            profiler = profiler_cls(ctx.code, seed=ctx.word_seed, pattern=config.pattern)
            run = _pr1_simulate_word(
                profiler,
                profile,
                config.num_rounds,
                ctx.word_seed,
                artifacts=_artifacts_for(ctx, config),
            )
            metrics.append(metrics_for_run(run, ctx.ground_truth, config.num_rounds))
        cells[shard.key] = SweepCell(
            error_count=shard.error_count,
            probability=shard.probability,
            profiler=shard.profiler,
            words=metrics,
        )
    return SweepResult(config=config, cells=cells)


def _cold_caches() -> None:
    clear_engine_caches()
    clear_analysis_caches()


def _timed(label: str, record: dict, fn, *args, **kwargs):
    """Run ``fn`` cold, recording wall-clock and CPU seconds.

    CPU time rides along because shared hosts make wall-clock noisy; the
    speedup ratio is asserted on the CPU measurement.
    """
    _cold_caches()
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    result = fn(*args, **kwargs)
    record[f"{label}-cpu"] = time.process_time() - cpu_started
    record[label] = time.perf_counter() - wall_started
    return result


def test_adaptive_sweep_pr1_serial(benchmark, adaptive_scaling):
    result = benchmark.pedantic(
        lambda: _timed("pr1-adaptive-serial", adaptive_scaling, _pr1_run_sweep, ADAPTIVE_GRID),
        rounds=1,
        iterations=1,
    )
    assert len(result.cells) == 32


def test_adaptive_sweep_engine_serial(benchmark, adaptive_scaling):
    result = benchmark.pedantic(
        lambda: _timed("adaptive-serial", adaptive_scaling, run_sweep, ADAPTIVE_GRID),
        rounds=1,
        iterations=1,
    )
    assert len(result.cells) == 32


def test_adaptive_sweep_engine_parallel(benchmark, adaptive_scaling):
    """Worker-pool run; on a single-CPU host this only tracks pool overhead."""
    result = benchmark.pedantic(
        lambda: _timed("adaptive-parallel", adaptive_scaling, run_sweep, ADAPTIVE_GRID, jobs=0),
        rounds=1,
        iterations=1,
    )
    assert len(result.cells) == 32


def test_fig10_shard_engine_serial(benchmark, adaptive_scaling):
    result = benchmark.pedantic(
        lambda: _timed("fig10-serial", adaptive_scaling, fig10.run, FIG10_GRID),
        rounds=1,
        iterations=1,
    )
    assert result.rounds_to_zero[(1.0, "HARP-U")] is not None


def test_fig10_shard_engine_parallel(benchmark, adaptive_scaling):
    serial = _timed("fig10-serial-check", adaptive_scaling, fig10.run, FIG10_GRID)
    adaptive_scaling.pop("fig10-serial-check", None)
    adaptive_scaling.pop("fig10-serial-check-cpu", None)
    result = benchmark.pedantic(
        lambda: _timed("fig10-parallel", adaptive_scaling, fig10.run, FIG10_GRID, jobs=0),
        rounds=1,
        iterations=1,
    )
    assert result.before == serial.before
    assert result.after == serial.after
    assert result.rounds_to_zero == serial.rounds_to_zero


def test_adaptive_matches_pr1(adaptive_scaling):
    """Bit-identity spot check on a reduced BEEP-heavy grid.

    The caches and the incremental solver must never change a trace; the
    full-grid identity is implied by this plus the layer-by-layer tests
    in the unit suite.  (The fixture reference keeps this test ordered
    with the timing benches under ``-p no:randomly`` style runs; it does
    not require their entries.)
    """
    small = SweepConfig(
        num_codes=2, words_per_code=3, num_rounds=48,
        error_counts=(3, 5), probabilities=(0.5, 1.0),
        profilers=("BEEP", "HARP-A+BEEP"),
    )
    _cold_caches()
    pr1 = _pr1_run_sweep(small)
    engine = run_sweep(small)
    assert pr1.cells.keys() == engine.cells.keys()
    for key in pr1.cells:
        assert pr1.cells[key].words == engine.cells[key].words, key


def test_adaptive_meets_speedup(adaptive_scaling):
    """The layered solver stack must be >=2x faster than the PR 1 engine.

    Runs after the timing benches (module order); verifies on their
    recorded CPU times rather than re-running the grid.
    """
    if (
        "pr1-adaptive-serial-cpu" not in adaptive_scaling
        or "adaptive-serial-cpu" not in adaptive_scaling
    ):
        pytest.skip("timing benches did not run in this session")
    speedup = adaptive_scaling["pr1-adaptive-serial-cpu"] / adaptive_scaling["adaptive-serial-cpu"]
    assert speedup >= 2.0, f"adaptive speedup {speedup:.2f}x < 2x over the PR 1 engine"
