"""Bench: Fig 6 — direct-error coverage vs. profiling rounds.

Reduces the shared BENCH sweep.  Paper claims checked: HARP reaches full
coverage everywhere and dominates both baselines round-for-round.
"""

from conftest import save_exhibit

from repro.experiments import fig6


def test_fig6_direct_coverage(benchmark, bench_sweep, results_dir):
    result = benchmark(fig6.from_sweep, bench_sweep)
    config = bench_sweep.config
    for error_count in config.error_counts:
        for probability in config.probabilities:
            assert result.final_coverage(error_count, probability, "HARP-U") == 1.0
            for baseline in ("Naive", "BEEP"):
                harp = result.curves[(error_count, probability, "HARP-U")]
                other = result.curves[(error_count, probability, baseline)]
                assert all(h >= o - 1e-9 for h, o in zip(harp, other))
    save_exhibit(results_dir, "fig06_direct_coverage", fig6.render(result))
