"""Bench: ablation and extension experiments (DESIGN.md §2 extras).

* Data-pattern ablation — static patterns cap Naive's coverage; HARP is
  pattern-insensitive (paper §7.2.1).
* DEC BCH extension — the indirect-error bound equals the on-die
  correction capability, so the secondary ECC must match it (§6.3.2).
* Code-length extension — observations transfer to (136, 128) (§7.1.2).
"""

from conftest import save_exhibit

from repro.experiments import (
    ext_code_length,
    ext_dec,
    ext_interleaving,
    ext_patterns,
    ext_scrubbing,
)


def test_pattern_ablation(benchmark, results_dir):
    result = benchmark.pedantic(ext_patterns.run, rounds=1, iterations=1)
    for error_count in result.config.error_counts:
        for probability in result.config.probabilities:
            for pattern in result.patterns:
                assert result.final_coverage[(pattern, "HARP-U", error_count, probability)] == 1.0
            checkered = result.final_coverage[("checkered", "Naive", error_count, probability)]
            random_cov = result.final_coverage[("random", "Naive", error_count, probability)]
            assert checkered <= random_cov + 1e-9
    save_exhibit(results_dir, "ext_pattern_ablation", ext_patterns.render(result))


def test_dec_extension(benchmark, results_dir):
    result = benchmark.pedantic(ext_dec.run, rounds=1, iterations=1)
    for label, (capability, worst, sec_ok, dec_ok) in result.rows.items():
        assert worst <= capability
        assert dec_ok == result.num_words
    save_exhibit(results_dir, "ext_dec_bch", ext_dec.render(result))


def test_code_length_extension(benchmark, results_dir):
    result = benchmark.pedantic(ext_code_length.run, rounds=1, iterations=1)
    for label, _ in ext_code_length.PAPER_GEOMETRIES:
        coverage, _ = result.rows[(label, "HARP-U")]
        assert coverage == 1.0
    save_exhibit(results_dir, "ext_code_length", ext_code_length.render(result))


def test_interleaving_extension(benchmark, results_dir):
    result = benchmark.pedantic(ext_interleaving.run, rounds=1, iterations=1)
    for label, (after_harp, unprofiled) in result.rows.items():
        bound = 2 if "interleaved" in label else 1
        assert after_harp <= bound, label
        assert after_harp <= unprofiled
    save_exhibit(results_dir, "ext_interleaving", ext_interleaving.render(result))


def test_scrubbing_extension(benchmark, results_dir):
    result = benchmark.pedantic(ext_scrubbing.run, rounds=1, iterations=1)
    # After the HARP active phase the SEC secondary never escapes, and
    # identification completeness degrades monotonically with probability.
    fractions = []
    for probability in sorted(result.rows, reverse=True):
        fraction, _, escaped = result.rows[probability]
        assert escaped == 0
        fractions.append(fraction)
    assert fractions[0] >= fractions[-1]
    save_exhibit(results_dir, "ext_scrubbing_latency", ext_scrubbing.render(result))
