"""Bench: Fig 8 — missed indirect-risk bits per ECC word vs. rounds.

Paper claims checked: HARP-U identifies essentially no indirect bits;
HARP-A's precomputation leaves no more missed bits than HARP-U; the
missed count is non-increasing for every profiler.
"""

from conftest import save_exhibit

from repro.experiments import fig8


def test_fig8_indirect_coverage(benchmark, bench_sweep, results_dir):
    result = benchmark(fig8.from_sweep, bench_sweep)
    config = bench_sweep.config
    for error_count in config.error_counts:
        for probability in config.probabilities:
            harp_u = result.curves[(error_count, probability, "HARP-U")]
            harp_a = result.curves[(error_count, probability, "HARP-A")]
            assert harp_u[-1] >= harp_u[0] * 0.8  # HARP-U: near-flat
            assert harp_a[-1] <= harp_u[-1] + 1e-9  # HARP-A dominates
    for curve in result.curves.values():
        assert list(curve) == sorted(curve, reverse=True)
    save_exhibit(results_dir, "fig08_indirect_coverage", fig8.render(result))
