"""Bench: Table 2 — at-risk bit amplification under on-die ECC.

Closed-form columns (2^n - 1 patterns, 2^n - n - 1 uncorrectable) plus the
measured amplification across random (71, 64) codes.
"""

from conftest import save_exhibit

from repro.experiments import table2


def test_table2_amplification(benchmark, results_dir):
    result = benchmark(table2.run)
    by_n = {row.pre_correction_at_risk: row for row in result.rows}
    assert by_n[4].unique_error_patterns == 15
    assert by_n[8].worst_case_post_correction_at_risk == 255
    for n, row in by_n.items():
        _, largest = result.empirical[n]
        assert largest <= row.worst_case_post_correction_at_risk
    save_exhibit(results_dir, "table02_amplification", table2.render(result))
