"""Bench: the paper's headline comparisons.

* Abstract / §7.3.2: HARP reaches the capability-1 bound in 20.6-62.1% of
  the best baseline's rounds at p = 50% (2-5 pre-correction errors).
* §7.4: Naive needs ~3.7x HARP's rounds to reach zero BER at p = 75%.

At bench scale we assert the direction (HARP strictly faster) rather than
the exact paper fractions, which carry Monte-Carlo spread.
"""

from conftest import save_exhibit

from repro.experiments import headline


def test_headline_speedups(benchmark, bench_sweep, bench_case_study, results_dir):
    def compute():
        active = headline.active_speedups(bench_sweep)
        case = headline.case_study_speedups(bench_case_study)
        return active, case

    active, case = benchmark(compute)
    for speedup in active:
        assert speedup.harp_rounds is not None
        if speedup.fraction is not None:
            assert speedup.fraction <= 1.0
    for speedup in case:
        if speedup.factor is not None:
            assert speedup.factor >= 1.0
    save_exhibit(results_dir, "headline_speedups", headline.render(active, case))
