"""Bench: sub-cell sharding vs whole-cell shards on the fleet workload.

A fleet's wall-clock is gated by its largest shard: one bank-faulted
chip holds far more profiled words than the median, and in whole-cell
mode (``slice_words=0``) its entire cell — batched with its range
neighbours — pins a single worker.  This bench times every shard of the
pinned fleet grid under both sharding modes, asserts the merged results
are bit-identical, and requires sub-cell slicing to cut the *maximum*
per-shard time (the critical path of a perfectly parallel map).

Modes:

- full (default): measures the pinned grid and **rewrites**
  ``benchmarks/results/BENCH_fleet.json`` with the observed numbers
  (keeping the pinned reduction floor).
- smoke (``REPRO_BENCH_SMOKE=1``): measures a reduced population and
  only asserts the committed floor — the CI perf-regression gate.
"""

import json
import os
import pathlib
import time
from dataclasses import replace

from repro.analysis.memo import clear_analysis_caches
from repro.experiments import fleet
from repro.experiments.config import FleetConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_fleet.json"
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The pinned benchmark grid: a population small enough to time in
#: seconds whose tail still holds sliced (heavy) chips.
FULL_GRID = FleetConfig(
    num_chips=96,
    k=32,
    num_codes=2,
    num_rounds=32,
    rows=16,
    words_per_row=4,
    chips_per_shard=4,
    slice_words=6,
)
SMOKE_GRID = replace(FULL_GRID, num_chips=48, num_rounds=16)
GRID = SMOKE_GRID if SMOKE else FULL_GRID
#: Per-shard times are milliseconds; best-of reps tame scheduler noise.
REPS = 3


def _shard_times(config: FleetConfig) -> tuple[dict, float]:
    """Merged payloads plus the max per-shard CPU time (best-of-REPS)."""
    shards = fleet.shard_fleet(config)
    worst = 0.0
    payloads = []
    for shard in shards:
        best = None
        for _ in range(REPS):
            start = time.process_time()
            payload = fleet.run_fleet_shard(shard)
            elapsed = time.process_time() - start
            best = elapsed if best is None else min(best, elapsed)
        payloads.append(payload)
        worst = max(worst, best)
    return fleet.merge_slice_payloads(payloads), worst


def _load_floor() -> float:
    if BASELINE_PATH.exists():
        return float(json.loads(BASELINE_PATH.read_text())["floor"])
    return 1.2


def test_sub_cell_sharding_cuts_max_shard_time():
    sliced_config = GRID
    whole_config = replace(GRID, slice_words=0)
    assert any(
        shard.num_slices > 1 for shard in fleet.shard_fleet(sliced_config)
    ), "pinned grid holds no heavy chip; the comparison would be vacuous"

    # Warm every cache layer (fault topologies, schedules, draws, decode
    # memos) so both modes time pure simulation work.
    fleet.clear_fleet_caches()
    clear_analysis_caches()
    _shard_times(sliced_config)
    _shard_times(whole_config)

    sliced_merged, sliced_worst = _shard_times(sliced_config)
    whole_merged, whole_worst = _shard_times(whole_config)
    assert sliced_merged == whole_merged  # bit-identity of the merge

    reduction = whole_worst / sliced_worst if sliced_worst else float("inf")
    floor = _load_floor()
    summary = (
        f"fleet sharding: max shard {whole_worst * 1e3:.1f}ms whole-cell vs "
        f"{sliced_worst * 1e3:.1f}ms sliced, {reduction:.2f}x reduction "
        f"({'smoke' if SMOKE else 'full'} grid, floor {floor:.1f}x)"
    )
    print(f"\n{summary}")
    assert reduction >= floor, summary

    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "bench": "bench_fleet",
                    "floor": floor,
                    "reduction": round(reduction, 2),
                    "max_shard_cpu_s_whole": round(whole_worst, 4),
                    "max_shard_cpu_s_sliced": round(sliced_worst, 4),
                    "grid": {
                        "num_chips": GRID.num_chips,
                        "k": GRID.k,
                        "num_codes": GRID.num_codes,
                        "num_rounds": GRID.num_rounds,
                        "rows": GRID.rows,
                        "words_per_row": GRID.words_per_row,
                        "chips_per_shard": GRID.chips_per_shard,
                        "slice_words": GRID.slice_words,
                    },
                    "timing": "max per-shard CPU (time.process_time), warm caches",
                },
                indent=2,
            )
            + "\n"
        )
        print(f"[baseline saved to {BASELINE_PATH}]")
