"""Unit tests for Hamming code construction."""

import numpy as np
import pytest

from repro.ecc.hamming import (
    canonical_sec_code,
    minimal_aliasing_code,
    paper_example_code,
    parity_bits_for,
    random_sec_code,
)


class TestParityBits:
    def test_paper_geometries(self):
        assert parity_bits_for(64) == 7  # (71, 64)
        assert parity_bits_for(128) == 8  # (136, 128)

    def test_small_values(self):
        assert parity_bits_for(1) == 2
        assert parity_bits_for(4) == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            parity_bits_for(0)


class TestRandomSecCode:
    def test_paper_geometry_71_64(self):
        code = random_sec_code(64, np.random.default_rng(0))
        assert (code.n, code.k, code.p) == (71, 64, 7)

    def test_paper_geometry_136_128(self):
        code = random_sec_code(128, np.random.default_rng(0))
        assert (code.n, code.k, code.p) == (136, 128, 8)

    def test_data_columns_have_weight_at_least_two(self):
        code = random_sec_code(64, np.random.default_rng(1))
        weights = code.parity_submatrix.sum(axis=0)
        assert (weights >= 2).all()

    def test_different_seeds_give_different_codes(self):
        a = random_sec_code(64, np.random.default_rng(0))
        b = random_sec_code(64, np.random.default_rng(1))
        assert a != b

    def test_same_rng_state_reproduces(self):
        a = random_sec_code(64, np.random.default_rng(5))
        b = random_sec_code(64, np.random.default_rng(5))
        assert a == b

    def test_infeasible_k_for_p(self):
        with pytest.raises(ValueError):
            random_sec_code(64, np.random.default_rng(0), p=6)  # only 57 columns


class TestMinimalAliasingSearch:
    def test_beats_or_matches_average_random_code(self):
        """The searched code's data-bit aliasing count must be no worse
        than a random draw (it is the min over candidate draws)."""
        from repro.ecc.code_analysis import miscorrection_profile

        rng = np.random.default_rng(9)
        best = minimal_aliasing_code(16, rng, trials=8)
        best_score = sum(miscorrection_profile(best, 2).target_counts[: best.k])
        reference = random_sec_code(16, np.random.default_rng(10))
        reference_score = sum(
            miscorrection_profile(reference, 2).target_counts[: reference.k]
        )
        # Not guaranteed strictly better than an arbitrary reference, but a
        # valid SEC code with a plausible score.
        assert best.t == 1
        assert best_score >= 0
        assert best_score <= reference_score + reference.n**2  # sanity bound

    def test_still_corrects_single_errors(self):
        rng = np.random.default_rng(11)
        code = minimal_aliasing_code(16, rng, trials=4)
        message = np.ones(code.k, dtype=np.uint8)
        corrupted = code.encode(message).copy()
        corrupted[7] ^= 1
        assert (code.decode(corrupted).data == message).all()

    def test_search_is_deterministic_given_rng(self):
        a = minimal_aliasing_code(12, np.random.default_rng(3), trials=4)
        b = minimal_aliasing_code(12, np.random.default_rng(3), trials=4)
        assert a == b

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            minimal_aliasing_code(12, np.random.default_rng(0), trials=0)


class TestCanonicalAndPaperCodes:
    def test_canonical_is_deterministic(self):
        assert canonical_sec_code(16) == canonical_sec_code(16)

    def test_paper_example_matches_equation_1(self):
        code = paper_example_code()
        expected_h = np.array(
            [
                [1, 1, 1, 0, 1, 0, 0],
                [1, 1, 0, 1, 0, 1, 0],
                [1, 0, 1, 1, 0, 0, 1],
            ],
            dtype=np.uint8,
        )
        assert (code.parity_check_matrix == expected_h).all()

    def test_paper_example_generator_matches_equation_1(self):
        code = paper_example_code()
        expected_gt = np.array(
            [
                [1, 0, 0, 0, 1, 1, 1],
                [0, 1, 0, 0, 1, 1, 0],
                [0, 0, 1, 0, 1, 0, 1],
                [0, 0, 0, 1, 0, 1, 1],
            ],
            dtype=np.uint8,
        )
        assert (code.generator_matrix_t == expected_gt).all()
