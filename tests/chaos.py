"""Fault-injection harness for the socket backend's transport layer.

:class:`ChaosProxy` sits between workers and a :class:`SocketBackend`
server as a frame-aware TCP proxy and injects the faults a long
campaign on a real fleet actually sees:

* **corrupt** — flip one byte inside a frame's body (the MAC fails on
  the far side; per-frame recovery via ``badframe``/``nack`` resends);
* **drop** — swallow a frame whole (heartbeat-deadline requeue);
* **duplicate** — deliver a frame twice (sequence numbers drop the
  replay silently);
* **delay** — stall a frame (out-of-cadence delivery);
* **truncate** — send part of a frame and tear the connection down
  (both sides see a desynchronized stream and must reconnect/requeue).

Faults are driven by a seeded :class:`random.Random` so chaos runs are
reproducible.  The proxy parses ``repro-wire-v1`` preambles to find
frame boundaries, which also makes it the wire-format auditor: any
connection whose bytes do not start with the ``RPW1`` magic is recorded
in :attr:`ChaosProxy.violations` (and pumped through blind) — the chaos
suite asserts ``violations == 0`` to prove no pickle frame ever touches
the wire under ``--wire v1``.

The first ``handshake_grace`` frames of each direction of a connection
are exempt from faults: dropping a ``hello`` or ``welcome`` leaves both
sides waiting politely forever (neither has a heartbeat deadline yet),
which models a fault the real transport cannot detect rather than one
it must survive.

:class:`WorkerFleet` spawns real worker *processes* pointed at the
proxy, with a kill schedule (``SIGKILL`` after a frame count) and
late-join support, so chaos tests cover process death, not just wire
noise.

The proxy speaks plain frames, so it fronts any ``repro-wire-v1``
listener — the per-map :class:`SocketBackend` *or* the campaign
daemon's persistent ``WorkServer``.  For daemon crash drills,
:meth:`ChaosProxy.retarget` repoints new connections at a restarted
daemon's fresh ephemeral work port while the proxy's own front address
stays fixed, so lingering workers reconnect straight through the
restart.

Usable standalone for the CI smoke leg::

    python tests/chaos.py --self-test
"""

from __future__ import annotations

import os
import random
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

import serviceharness

_PREAMBLE = struct.Struct(">4sIQ")
_MAGIC = b"RPW1"
_MAC_SIZE = 32
_SANE_FRAME = 1 << 26  # proxy-side guard; far below the codec's MAX_FRAME


@dataclass
class FaultPlan:
    """Per-frame fault probabilities (evaluated in this order, at most
    one fault per frame) and the RNG seed that makes a run reproducible."""

    corrupt: float = 0.0
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    truncate: float = 0.0
    delay_seconds: float = 0.05
    seed: int = 0
    #: Leading frames per direction exempt from faults (handshake).
    handshake_grace: int = 3


@dataclass
class ChaosStats:
    """Counters the proxy accumulates across all connections."""

    frames: int = 0
    corrupted: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    truncated: int = 0
    connections: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class ChaosProxy:
    """Frame-aware fault-injecting TCP proxy in front of a backend server.

    Args:
        upstream: ``(host, port)`` of the real :class:`SocketBackend`
            listener.
        plan: the :class:`FaultPlan` to apply to every proxied frame.

    Start with :meth:`start` (returns the proxy's own ``(host, port)``
    for workers to connect to), stop with :meth:`stop`.  Fault counts
    land in :attr:`stats`; non-v1 frames land in :attr:`violations`.
    """

    def __init__(self, upstream: tuple[str, int], plan: FaultPlan | None = None):
        self.upstream = upstream
        self._upstream_lock = threading.Lock()
        self.plan = plan or FaultPlan()
        self.stats = ChaosStats()
        #: One entry per connection that carried non-``RPW1`` bytes —
        #: the "no pickle on the wire" audit trail.
        self.violations: list[str] = []
        self._rng = random.Random(self.plan.seed)
        self._rng_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------

    def start(self) -> tuple[str, int]:
        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(16)
        self._listener = listener
        self.address = listener.getsockname()
        accepter = threading.Thread(target=self._accept_loop, daemon=True)
        accepter.start()
        self._threads.append(accepter)
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def retarget(self, upstream: tuple[str, int]) -> None:
        """Point *new* connections at a different upstream server.

        The proxy's own front address never changes, so a fleet that
        connected through it survives its server being replaced — the
        shape of a campaign daemon dying and restarting on a fresh
        ephemeral work port while lingering workers reconnect through
        the stable proxy front.  Existing pumps drain against the old
        upstream (their sockets are already torn when it died).
        """
        with self._upstream_lock:
            self.upstream = tuple(upstream)

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- proxying -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            with self._upstream_lock:
                upstream = self.upstream
            try:
                server = socket.create_connection(upstream, timeout=30)
            except OSError:
                client.close()
                continue
            with self.stats.lock:
                self.stats.connections += 1
            for source, sink, tag in (
                (client, server, "worker->server"),
                (server, client, "server->worker"),
            ):
                pump = threading.Thread(
                    target=self._pump, args=(source, sink, tag), daemon=True
                )
                pump.start()
                self._threads.append(pump)

    def _recv_exact(self, sock: socket.socket, count: int) -> bytes | None:
        chunks, remaining = [], count
        while remaining:
            try:
                chunk = sock.recv(min(remaining, 1 << 20))
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _pump(self, source: socket.socket, sink: socket.socket, tag: str) -> None:
        """Forward frames from ``source`` to ``sink``, injecting faults."""
        seen = 0
        try:
            while not self._stopping.is_set():
                preamble = self._recv_exact(source, _PREAMBLE.size)
                if preamble is None:
                    break
                if preamble[:4] != _MAGIC:
                    # Not repro-wire-v1 (a pickle fleet, a port scan):
                    # record the violation and go blind for the rest of
                    # this connection.
                    self.violations.append(
                        f"{tag}: non-v1 bytes {preamble[:4]!r} on the wire"
                    )
                    sink.sendall(preamble)
                    self._pump_blind(source, sink)
                    break
                _, header_len, heap_len = _PREAMBLE.unpack(preamble)
                if header_len + heap_len > _SANE_FRAME:
                    self.violations.append(
                        f"{tag}: absurd frame announcing "
                        f"{header_len + heap_len} bytes"
                    )
                    break
                rest = self._recv_exact(
                    source, header_len + heap_len + _MAC_SIZE
                )
                if rest is None:
                    break
                frame = preamble + rest
                seen += 1
                with self.stats.lock:
                    self.stats.frames += 1
                if not self._deliver(sink, frame, seen):
                    break
        finally:
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _pump_blind(self, source: socket.socket, sink: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                data = source.recv(1 << 16)
            except OSError:
                return
            if not data:
                return
            try:
                sink.sendall(data)
            except OSError:
                return

    def _roll(self) -> float:
        with self._rng_lock:
            return self._rng.random()

    def _deliver(self, sink: socket.socket, frame: bytes, seen: int) -> bool:
        """Send one frame, possibly faulted.  False tears the connection."""
        plan = self.plan
        if seen <= plan.handshake_grace:
            sink.sendall(frame)
            return True
        roll = self._roll()
        threshold = plan.corrupt
        if roll < threshold:
            corrupted = bytearray(frame)
            # Flip a byte past the preamble: lengths stay sane, the
            # stream stays aligned, only the MAC check fails.
            index = _PREAMBLE.size + int(
                self._roll() * (len(frame) - _PREAMBLE.size)
            )
            corrupted[min(index, len(frame) - 1)] ^= 0x55
            with self.stats.lock:
                self.stats.corrupted += 1
            sink.sendall(bytes(corrupted))
            return True
        threshold += plan.drop
        if roll < threshold:
            with self.stats.lock:
                self.stats.dropped += 1
            return True  # swallowed whole; stream stays aligned
        threshold += plan.duplicate
        if roll < threshold:
            with self.stats.lock:
                self.stats.duplicated += 1
            sink.sendall(frame + frame)
            return True
        threshold += plan.delay
        if roll < threshold:
            with self.stats.lock:
                self.stats.delayed += 1
            time.sleep(plan.delay_seconds)
            sink.sendall(frame)
            return True
        threshold += plan.truncate
        if roll < threshold:
            with self.stats.lock:
                self.stats.truncated += 1
            sink.sendall(frame[: max(1, len(frame) // 2)])
            return False  # tear the connection mid-frame
        sink.sendall(frame)
        return True


class WorkerFleet:
    """Real worker processes pointed at an address, with a kill switch.

    Args:
        address: ``HOST:PORT`` string the workers connect to (usually a
            :class:`ChaosProxy` front).
        linger: seconds each worker retries the address after a torn
            session — chaos workers must reconnect through faults.
        auth_token: shared secret forwarded via the environment.
        wire: frame codec the workers speak (must match the server).
    """

    def __init__(
        self,
        address: str,
        linger: float = 30.0,
        auth_token: str | None = None,
        wire: str = "v1",
    ):
        self.address = address
        self.linger = linger
        self.auth_token = auth_token
        self.wire = wire
        self.procs: list[subprocess.Popen] = []

    def spawn(self, count: int = 1) -> list[subprocess.Popen]:
        started = [
            serviceharness.spawn_worker(
                self.address,
                linger=self.linger,
                wire=self.wire,
                auth_token=self.auth_token,
            )
            for _ in range(count)
        ]
        self.procs.extend(started)
        return started

    def kill_one_after(self, delay: float) -> threading.Thread:
        """SIGKILL the first still-running worker after ``delay`` seconds
        (a hard node loss on a schedule).  Returns the timer thread."""

        def reap() -> None:
            time.sleep(delay)
            for proc in self.procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                    return

        thread = threading.Thread(target=reap, daemon=True)
        thread.start()
        return thread

    def join_late(self, delay: float, count: int = 1) -> threading.Thread:
        """Spawn ``count`` extra workers after ``delay`` seconds (elastic
        scale-up mid-campaign).  Returns the timer thread."""

        def join() -> None:
            time.sleep(delay)
            self.spawn(count)

        thread = threading.Thread(target=join, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        serviceharness.terminate_procs(self.procs)

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _self_test() -> int:
    """CI smoke: a live campaign through the proxy (5% corruption, one
    worker SIGKILLed, one late joiner) must match the serial run
    bit-for-bit with zero wire-format violations."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from repro.experiments.config import SweepConfig
    from repro.experiments.backends import SocketBackend
    from repro.experiments.runner import run_sweep

    config = SweepConfig(
        num_codes=2,
        words_per_code=2,
        num_rounds=16,
        error_counts=(2, 3),
        probabilities=(0.5, 1.0),
        profilers=("Naive", "HARP-U"),
    )
    serial = run_sweep(config)
    backend = SocketBackend(
        spawn_workers=0, heartbeat_timeout=2.0, timeout=300.0
    )
    plan = FaultPlan(corrupt=0.05, seed=1234)
    result = {}

    def campaign() -> None:
        result["sweep"] = run_sweep(config, backend=backend)

    runner = threading.Thread(target=campaign, daemon=True)
    runner.start()
    while backend.address is None:
        time.sleep(0.01)
    with ChaosProxy(backend.address, plan) as proxy:
        host, port = proxy.address
        with WorkerFleet(f"{host}:{port}") as fleet:
            fleet.spawn(2)
            fleet.kill_one_after(1.0)
            fleet.join_late(1.5)
            runner.join(timeout=300)
    if runner.is_alive():
        print("chaos self-test: campaign did not finish", file=sys.stderr)
        return 1
    if proxy.violations:
        print(f"wire violations: {proxy.violations}", file=sys.stderr)
        return 1
    chaos = result["sweep"]
    if chaos.cells.keys() != serial.cells.keys():
        print("chaos self-test: cell set mismatch", file=sys.stderr)
        return 1
    for key in serial.cells:
        if chaos.cells[key].words != serial.cells[key].words:
            print(f"chaos self-test: cell {key} diverged", file=sys.stderr)
            return 1
    print(
        f"chaos self-test: bit-identical under faults "
        f"({proxy.stats.frames} frames, {proxy.stats.corrupted} corrupted, "
        f"1 worker SIGKILLed, 1 late joiner)"
    )
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv:
        raise SystemExit(_self_test())
    raise SystemExit("usage: python tests/chaos.py --self-test")
