"""Unit tests for MemoryArray and AddressMap."""

import numpy as np
import pytest

from repro.memory.address import AddressMap, LogicalAddress, PhysicalAddress
from repro.memory.array import MemoryArray


class TestMemoryArray:
    def test_roundtrip(self):
        array = MemoryArray(4, 8)
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        array.write(2, bits)
        assert (array.read(2) == bits).all()

    def test_read_returns_copy(self):
        array = MemoryArray(1, 4)
        array.write(0, np.ones(4, dtype=np.uint8))
        view = array.read(0)
        view[0] = 0
        assert array.read(0)[0] == 1

    def test_flip(self):
        array = MemoryArray(1, 4)
        array.flip(0, [1, 3])
        assert array.read(0).tolist() == [0, 1, 0, 1]

    def test_bounds(self):
        array = MemoryArray(2, 4)
        with pytest.raises(IndexError):
            array.read(2)
        with pytest.raises(IndexError):
            array.flip(0, [4])
        with pytest.raises(ValueError):
            array.write(0, np.ones(5, dtype=np.uint8))

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            MemoryArray(1, 0)

    def test_total_bits(self):
        assert MemoryArray(3, 8).total_bits == 24


class TestAddressMap:
    @pytest.fixture
    def address_map(self):
        return AddressMap(k=64, n=71, num_words=10)

    def test_sizes(self, address_map):
        assert address_map.logical_bits == 640
        assert address_map.physical_bits == 710

    def test_flat_roundtrip(self, address_map):
        for flat in (0, 63, 64, 639):
            address = address_map.flat_to_logical(flat)
            assert address_map.logical_to_flat(address) == flat

    def test_logical_physical_identity_for_data(self, address_map):
        logical = LogicalAddress(3, 17)
        physical = address_map.logical_to_physical(logical)
        assert physical == PhysicalAddress(3, 17)
        assert address_map.physical_to_logical(physical) == logical

    def test_parity_bits_have_no_logical_address(self, address_map):
        parity = PhysicalAddress(0, 70)
        assert address_map.is_parity(parity)
        assert address_map.physical_to_logical(parity) is None

    def test_bounds(self, address_map):
        with pytest.raises(IndexError):
            address_map.logical_to_flat(LogicalAddress(0, 64))
        with pytest.raises(IndexError):
            address_map.flat_to_logical(640)
        with pytest.raises(IndexError):
            address_map.physical_to_logical(PhysicalAddress(0, 71))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            AddressMap(k=8, n=4, num_words=1)
