"""Fleet-scale field simulation: sampling statistics, identity, slicing.

Three contracts pin the fleet workload:

1. **Statistics** — the fault-mix sampler reproduces its calibrated
   distribution: per-mode Poisson totals pass a chi-square check at a
   fixed seed, the lognormal rate multiplier's percentiles land on the
   closed-form values, and sampling is chip-indexed (growing the
   population never reshuffles an existing chip's topology).
2. **Determinism** — serial, process-pool, and socket backends produce
   bit-identical fleets, as does a fresh interpreter.
3. **Sub-cell sharding** — a heavy chip's cell slices merge to exactly
   the whole-cell result on both GF(2) tiers and both simulation
   kernels, and a poisoned slice quarantines just its own chip and
   heals on a targeted resume.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.experiments import fleet
from repro.experiments.backends import ExecutionBackend
from repro.experiments.config import FleetConfig
from repro.experiments.runner import clear_engine_caches
from repro.memory.faults import (
    FAULT_MODES,
    ChipGeometry,
    FaultMixModel,
    sample_chip_faults,
)
from serviceharness import repro_env

#: Seconds-fast fleet: 24 chips over 2 codes, heavy chips sliced at 4
#: profiled words.
SMALL = FleetConfig(
    num_chips=24,
    k=16,
    num_codes=2,
    num_rounds=16,
    rows=8,
    words_per_row=2,
    chips_per_shard=8,
    slice_words=4,
)

#: Even smaller population for the tier/kernel equivalence matrix.
TINY = replace(SMALL, num_chips=12)


@pytest.fixture(autouse=True)
def _fresh_caches():
    fleet.clear_fleet_caches()
    clear_engine_caches()
    yield
    fleet.clear_fleet_caches()
    clear_engine_caches()


def _chip_digest(result: fleet.FleetResult) -> str:
    payload = [
        [
            chip.chip,
            chip.at_risk_bits,
            chip.identified_bits,
            chip.missed_bits,
            chip.repaired_rows,
            chip.bit_repairs,
            repr(chip.ue_repaired),
            repr(chip.ue_unrepaired),
        ]
        for chip in result.chips
    ]
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


class TestFaultSampling:
    GEOMETRY = ChipGeometry(rows=4, words_per_row=2)

    def test_mode_totals_pass_chi_square(self):
        """Observed per-mode fault totals match the Poisson intensities.

        With ``variability_sigma=0`` each mode's fleet total is
        Poisson(num_chips · rate); the chi-square statistic over the
        four modes must sit below the 99.9% quantile of chi²(4) at this
        fixed seed (and, being deterministic, forever).
        """
        model = FaultMixModel(variability_sigma=0.0)
        num_chips = 4000
        totals = dict.fromkeys(FAULT_MODES, 0)
        for chip in range(num_chips):
            faults = sample_chip_faults(7, chip, model, self.GEOMETRY, n=21)
            for mode in FAULT_MODES:
                totals[mode] += faults.count_of(mode)
        statistic = 0.0
        for mode in FAULT_MODES:
            expected = num_chips * model.rate_of(mode)
            statistic += (totals[mode] - expected) ** 2 / expected
        assert statistic < 18.47, (statistic, totals)

    def test_lognormal_scale_percentiles(self):
        """The rate multiplier's quantiles land on the closed forms.

        ``scale = exp(sigma·Z − sigma²/2)`` has median ``exp(−sigma²/2)``
        and P90/P50 ratio ``exp(1.2816·sigma)``; 4000 chips at a fixed
        seed pin both within a few percent.
        """
        sigma = 1.2
        model = FaultMixModel(
            single_rate=0.0,
            row_rate=0.0,
            column_rate=0.0,
            bank_rate=0.0,
            variability_sigma=sigma,
        )
        scales = sorted(
            sample_chip_faults(7, chip, model, self.GEOMETRY, n=21).rate_scale
            for chip in range(4000)
        )
        median = scales[len(scales) // 2]
        p90 = scales[int(len(scales) * 0.9)]
        expected_median = pytest.approx(2.718281828 ** (-sigma * sigma / 2), rel=0.10)
        assert median == expected_median
        assert p90 / median == pytest.approx(2.718281828 ** (1.2816 * sigma), rel=0.15)

    def test_chip_insertion_does_not_reshuffle(self):
        """Growing the population leaves existing chips bit-identical.

        The regression this pins: fleet sampling must be chip-indexed,
        never draw-order dependent — inserting chip N must not shift any
        draw of chips 0..N-1.
        """
        smaller = replace(SMALL, num_chips=6)
        larger = replace(SMALL, num_chips=7)
        for chip in range(6):
            assert fleet.chip_faults(smaller, chip) == fleet.chip_faults(larger, chip)
        # And at the sampler level, with the population size nowhere in
        # the derivation path at all:
        model = FaultMixModel()
        first = sample_chip_faults(11, 3, model, self.GEOMETRY, n=21)
        again = sample_chip_faults(11, 3, model, self.GEOMETRY, n=21)
        assert first == again

    def test_row_and_column_faults_never_empty(self):
        """A row/column fault keeps ≥ 1 at-risk bit even at density 0."""
        model = FaultMixModel(
            single_rate=0.0,
            row_rate=4.0,
            column_rate=4.0,
            bank_rate=0.0,
            variability_sigma=0.0,
            row_density=0.0,
            column_density=0.0,
        )
        hit = 0
        for chip in range(20):
            faults = sample_chip_faults(3, chip, model, self.GEOMETRY, n=21)
            count = faults.count_of("row") + faults.count_of("column")
            hit += count
            assert faults.total_at_risk >= min(count, 1)
            if count:
                assert faults.total_at_risk > 0
        assert hit > 0  # the rates guarantee faults actually occurred

    def test_per_word_cap_truncates_to_lowest_positions(self):
        model = FaultMixModel(
            single_rate=0.0,
            row_rate=0.0,
            column_rate=0.0,
            bank_rate=3.0,
            variability_sigma=0.0,
            bank_density=1.0,
        )
        faults = sample_chip_faults(5, 0, model, self.GEOMETRY, n=21, max_per_word=4)
        assert faults.count_of("bank") > 0
        assert faults.word_positions  # density 1.0 marks every bit
        for _, positions in faults.word_positions:
            assert len(positions) <= 4
            assert positions == tuple(range(4))  # lowest positions kept


class TestBackendIdentity:
    def test_serial_process_socket_bit_identical(self):
        serial = fleet.run(SMALL)
        process = fleet.run(SMALL, jobs=2, backend="process")
        sock = fleet.run(SMALL, jobs=2, backend="socket")
        assert serial.chips == process.chips
        assert serial.chips == sock.chips
        assert serial.quarantined == () and sock.quarantined == ()

    def test_fresh_interpreter_matches(self):
        """A separate process reproduces the fleet digest bit for bit."""
        reference = _chip_digest(fleet.run(TINY))
        script = (
            "import hashlib, json\n"
            "from dataclasses import replace\n"
            "from repro.experiments import fleet\n"
            "from repro.experiments.config import FleetConfig\n"
            f"config = replace(FleetConfig(num_chips=12, k=16, num_codes=2, "
            f"num_rounds=16, rows=8, words_per_row=2, chips_per_shard=8, "
            f"slice_words=4))\n"
            "result = fleet.run(config)\n"
            "payload = [[c.chip, c.at_risk_bits, c.identified_bits, c.missed_bits,"
            " c.repaired_rows, c.bit_repairs, repr(c.ue_repaired),"
            " repr(c.ue_unrepaired)] for c in result.chips]\n"
            "print(hashlib.sha256(json.dumps(payload).encode()).hexdigest())\n"
        )
        digest = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=repro_env(),
        ).stdout.strip()
        assert digest == reference

    def test_resume_after_truncation_bit_identical(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        full = fleet.run(SMALL, resume=str(path))
        lines = path.read_text().splitlines(True)
        assert len(lines) > 4
        path.write_text("".join(lines[:4]) + '{"kind": "fleet", "torn')
        resumed = fleet.run(SMALL, resume=str(path))
        assert resumed.chips == full.chips

    def test_resume_rejects_other_config(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        fleet.run(TINY, resume=str(path))
        with pytest.raises(ValueError, match="different fleet config"):
            fleet.run(replace(TINY, seed=1), resume=str(path))


class _QuarantiningBackend(ExecutionBackend):
    """Serial stub that sets one fixed shard index aside (fig10 pattern)."""

    name = "quarantining-stub"

    def __init__(self, skip_index: int) -> None:
        self.skip_index = skip_index

    def imap(self, worker, shards, chunksize=1):
        for index, result in self.imap_unordered(worker, shards, chunksize):
            yield result

    def imap_unordered(self, worker, shards, chunksize=1):
        self.quarantined_shards = ()
        for index, shard in enumerate(shards):
            if index == self.skip_index:
                self.quarantined_shards = (index,)
                continue
            yield index, worker(shard)


class TestSubCellSharding:
    def test_fleet_actually_has_cell_slices(self):
        """The test fleet must exercise slicing, or this suite is vacuous."""
        shards = fleet.shard_fleet(SMALL)
        slices = [shard for shard in shards if shard.num_slices > 1]
        assert slices, "no heavy chip in SMALL; lower slice_words"
        for shard in slices:
            assert shard.stop == shard.start + 1

    def test_slices_partition_profiled_words(self):
        """Each heavy chip's slices carry disjoint, exhaustive word sets."""
        shards = fleet.shard_fleet(SMALL)
        by_chip: dict[int, list] = {}
        for shard in shards:
            if shard.num_slices > 1:
                by_chip.setdefault(shard.start, []).append(shard)
        assert by_chip
        for chip, slices in by_chip.items():
            expected = {
                word for word, _ in fleet.profiled_words(fleet.chip_faults(SMALL, chip))
            }
            seen: list[int] = []
            for shard in slices:
                payload = fleet.run_fleet_shard(shard)
                (entry,) = payload["chips"]
                assert entry["chip"] == chip
                seen.extend(word for word, _, _ in entry["words"])
            assert sorted(seen) == sorted(expected)  # disjoint and exhaustive

    @pytest.mark.parametrize("tier", ["packed", "unpacked"])
    @pytest.mark.parametrize("kernel", ["auto", "scalar"])
    def test_slice_merge_equals_whole_cell(self, tier, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_GF2_TIER", tier)
        monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
        fleet.clear_fleet_caches()
        clear_engine_caches()
        sliced = fleet.run(TINY)
        whole = fleet.run(replace(TINY, slice_words=0))
        assert sliced.chips == whole.chips

    def test_poisoned_slice_quarantines_only_its_chip_and_heals(self, tmp_path):
        reference = fleet.run(SMALL)
        shards = fleet.shard_fleet(SMALL)
        poison = next(
            index for index, shard in enumerate(shards) if shard.num_slices > 1
        )
        poisoned_chip = shards[poison].start
        path = tmp_path / "fleet.jsonl"
        partial = fleet.run(
            SMALL, backend=_QuarantiningBackend(poison), resume=str(path)
        )
        assert partial.quarantined == (shards[poison].key,)
        assert partial.incomplete_chips == (poisoned_chip,)
        # Every other chip is bit-identical to the clean run.
        surviving = {chip.chip: chip for chip in partial.chips}
        assert poisoned_chip not in surviving
        for chip in reference.chips:
            if chip.chip != poisoned_chip:
                assert surviving[chip.chip] == chip
        # Heal: a targeted resume recomputes only the poisoned slice and
        # restores the full fleet bit for bit.
        healed = fleet.run(SMALL, resume=str(path))
        assert healed.quarantined == ()
        assert healed.chips == reference.chips


class TestRender:
    def test_report_lines(self):
        result = fleet.run(TINY)
        text = fleet.render(result)
        assert f"fleet    {len(result.chips)}/{TINY.num_chips} chips" in text
        assert "repair   " in text
        assert "UE       " in text
        assert "partial" not in text
