"""Tests for the BEER-lite on-die ECC reverse-engineering module."""

import numpy as np
import pytest

from repro.ecc.hamming import paper_example_code, random_sec_code
from repro.ecc.reverse_engineering import (
    EccReverseEngineer,
    Observation,
    reverse_engineer,
    simulate_injection,
)
from repro.ecc.syndrome import analyze_error_pattern


class TestObservationIngestion:
    def test_data_triple_constraint(self):
        code = random_sec_code(16, np.random.default_rng(0))
        engineer = EccReverseEngineer(code.k, code.p)
        injector = simulate_injection(code)
        # Find a data pair that miscorrects onto data.
        added = 0
        for i in range(code.k):
            for j in range(i + 1, code.k):
                pattern = frozenset({i, j})
                observed = injector(pattern)
                if engineer.add_observation(Observation(pattern, observed)):
                    added += 1
        assert added > 0
        assert engineer.num_constraints == added

    def test_non_informative_observations_skipped(self):
        engineer = EccReverseEngineer(8, 4)
        # Single-position injection: never informative.
        assert not engineer.add_observation(Observation(frozenset({1}), frozenset()))
        # Detected-uncorrectable double (both bits visible, nothing extra).
        assert not engineer.add_observation(
            Observation(frozenset({1, 2}), frozenset({1, 2}))
        )

    def test_probe_bounds_checked(self):
        engineer = EccReverseEngineer(8, 4)
        with pytest.raises(IndexError):
            engineer.add_parity_probe(8, 0, frozenset())
        with pytest.raises(IndexError):
            engineer.add_parity_probe(0, 4, frozenset())

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            EccReverseEngineer(0, 4)

    def test_solve_returns_none_before_full_rank(self):
        engineer = EccReverseEngineer(8, 4)
        assert engineer.solve() is None


class TestEndToEndRecovery:
    @pytest.mark.parametrize("seed", range(4))
    def test_recovers_random_71_64_codes_exactly(self, seed):
        """The headline property: black-box injections alone pin down the
        full parity-check matrix of the paper's code geometry."""
        code = random_sec_code(64, np.random.default_rng(seed))
        recovered = reverse_engineer(
            simulate_injection(code), code.k, code.p, np.random.default_rng(seed + 50)
        )
        assert recovered == code

    def test_recovers_paper_example_code(self):
        code = paper_example_code()
        recovered = reverse_engineer(
            simulate_injection(code), code.k, code.p, np.random.default_rng(1)
        )
        assert recovered == code

    def test_recovered_code_predicts_miscorrections(self):
        """The recovered code is functionally equivalent: it predicts the
        same post-correction outcome for every double error."""
        code = random_sec_code(16, np.random.default_rng(9))
        recovered = reverse_engineer(
            simulate_injection(code), code.k, code.p, np.random.default_rng(10)
        )
        assert recovered is not None
        from itertools import combinations

        for pattern in combinations(range(code.n), 2):
            original = analyze_error_pattern(code, frozenset(pattern)).data_errors
            predicted = analyze_error_pattern(recovered, frozenset(pattern)).data_errors
            assert original == predicted

    def test_budget_exhaustion_returns_none_or_partial(self):
        code = random_sec_code(64, np.random.default_rng(3))
        result = reverse_engineer(
            simulate_injection(code), code.k, code.p, np.random.default_rng(4), max_injections=5
        )
        assert result is None  # 5 injections cannot pin 64 columns
