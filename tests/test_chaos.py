"""Chaos suite: campaigns must complete bit-identically under injected
transport faults and process death.

Each test runs a real :class:`SocketBackend` campaign with real worker
processes connected *through* :class:`chaos.ChaosProxy`, which injects
one fault class per test (corruption, drops, duplicates, delays,
connection tears) from a seeded RNG.  The acceptance test combines
frame corruption, a SIGKILLed worker, and a late-joining worker over a
full sweep and diffs the result bit-for-bit against a serial run — with
the proxy simultaneously auditing that no pickle frame ever appears on
the wire under ``--wire v1``.
"""

import time

from chaos import ChaosProxy, FaultPlan, WorkerFleet
from repro.experiments.backends import SocketBackend
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from serviceharness import BackgroundCampaign, wait_for_address

SOCKET_TIMEOUT = 180.0

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=2,
    num_rounds=16,
    error_counts=(2, 3),
    probabilities=(0.5, 1.0),
    profilers=("Naive", "HARP-U"),
)


def _double(value):
    return value * 2


def _slow_double(value):
    time.sleep(0.15)
    return value * 2


def _run_map_through_proxy(
    plan,
    items,
    worker=_double,
    *,
    workers=2,
    chunksize=1,
    heartbeat=1.0,
    wire="v1",
    kill_after=None,
    join_late=None,
):
    """One campaign: backend behind the chaos proxy, external fleet."""
    backend = SocketBackend(
        spawn_workers=0,
        heartbeat_timeout=heartbeat,
        timeout=SOCKET_TIMEOUT,
        wire=wire,
    )
    runner = BackgroundCampaign(
        lambda: backend.map(worker, items, chunksize=chunksize),
        name="campaign under injected faults",
    ).start()
    with ChaosProxy(wait_for_address(backend), plan) as proxy:
        host, port = proxy.address
        fleet = WorkerFleet(
            f"{host}:{port}", linger=SOCKET_TIMEOUT / 2, wire=wire
        )
        with fleet:
            fleet.spawn(workers)
            if kill_after is not None:
                fleet.kill_one_after(kill_after)
            if join_late is not None:
                fleet.join_late(join_late)
            results = runner.finish(timeout=SOCKET_TIMEOUT)
    return results, proxy


class TestFaultClasses:
    """Each fault class alone: the campaign completes bit-identically."""

    def test_corrupted_frames(self):
        items = list(range(16))
        results, proxy = _run_map_through_proxy(
            FaultPlan(corrupt=0.08, seed=11), items
        )
        assert results == [v * 2 for v in items]
        assert proxy.violations == []

    def test_dropped_frames(self):
        items = list(range(12))
        results, proxy = _run_map_through_proxy(
            FaultPlan(drop=0.05, seed=22), items
        )
        assert results == [v * 2 for v in items]
        assert proxy.violations == []

    def test_duplicated_frames(self):
        items = list(range(16))
        results, proxy = _run_map_through_proxy(
            FaultPlan(duplicate=0.2, seed=33), items
        )
        assert results == [v * 2 for v in items]
        assert proxy.stats.duplicated > 0  # replays really happened
        assert proxy.violations == []

    def test_delayed_frames(self):
        items = list(range(16))
        results, proxy = _run_map_through_proxy(
            FaultPlan(delay=0.25, delay_seconds=0.05, seed=44), items
        )
        assert results == [v * 2 for v in items]
        assert proxy.stats.delayed > 0
        assert proxy.violations == []

    def test_torn_connections(self):
        items = list(range(12))
        results, proxy = _run_map_through_proxy(
            FaultPlan(truncate=0.04, seed=55), items
        )
        assert results == [v * 2 for v in items]
        assert proxy.violations == []


class TestProcessChaos:
    """Wire noise plus process death plus elastic membership."""

    def test_sigkill_plus_late_joiner_under_corruption(self):
        items = list(range(24))
        results, proxy = _run_map_through_proxy(
            FaultPlan(corrupt=0.05, seed=66),
            items,
            worker=_slow_double,
            workers=2,
            kill_after=0.8,
            join_late=1.2,
        )
        assert results == [v * 2 for v in items]
        assert proxy.violations == []


class TestWireAudit:
    """The proxy doubles as the no-pickle-on-the-wire assertion."""

    def test_v1_campaign_has_no_wire_violations(self):
        items = list(range(8))
        results, proxy = _run_map_through_proxy(FaultPlan(seed=77), items)
        assert results == [v * 2 for v in items]
        assert proxy.stats.frames > 0
        assert proxy.violations == []

    def test_pickle_wire_is_detected(self):
        """Negative control: a legacy ``--wire pickle`` fleet through the
        same proxy trips the audit immediately."""
        items = list(range(4))
        results, proxy = _run_map_through_proxy(
            FaultPlan(seed=88), items, wire="pickle"
        )
        assert results == [v * 2 for v in items]
        assert proxy.violations  # pickle frames are not RPW1 frames


class TestChaosSweepBitIdentity:
    """Acceptance: a full sweep under combined chaos (5% corruption, one
    SIGKILLed worker, one late joiner) is bit-identical to serial."""

    def test_sweep_bit_identical_under_combined_chaos(self):
        serial = run_sweep(CONFIG)
        backend = SocketBackend(
            spawn_workers=0, heartbeat_timeout=2.0, timeout=SOCKET_TIMEOUT
        )
        runner = BackgroundCampaign(
            lambda: run_sweep(CONFIG, backend=backend), name="chaos sweep"
        ).start()
        plan = FaultPlan(corrupt=0.05, seed=1234)
        with ChaosProxy(wait_for_address(backend), plan) as proxy:
            host, port = proxy.address
            with WorkerFleet(f"{host}:{port}", linger=SOCKET_TIMEOUT / 2) as fleet:
                fleet.spawn(2)
                fleet.kill_one_after(1.0)
                fleet.join_late(1.5)
                chaos_sweep = runner.finish(timeout=SOCKET_TIMEOUT)
        assert proxy.violations == []
        assert chaos_sweep.cells.keys() == serial.cells.keys()
        for key in serial.cells:
            assert chaos_sweep.cells[key].words == serial.cells[key].words, key
