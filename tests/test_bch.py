"""Unit and property tests for DEC BCH codes."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import gf2
from repro.ecc.bch import bch_dec_code, bch_field_degree_for
from repro.ecc.code_analysis import minimum_distance


class TestFieldDegree:
    def test_known_sizes(self):
        assert bch_field_degree_for(7) == 4  # (15, 7)
        assert bch_field_degree_for(16) == 5
        assert bch_field_degree_for(64) == 7

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bch_field_degree_for(0)


@pytest.fixture(scope="module")
def bch16():
    return bch_dec_code(16)


class TestConstruction:
    def test_geometry(self, bch16):
        assert bch16.k == 16
        assert bch16.t == 2
        assert bch16.p == 10  # 2m for m=5

    def test_orthogonality(self, bch16):
        product = gf2.matmul(bch16.generator_matrix_t, bch16.parity_check_matrix.T)
        assert not product.any()

    def test_minimum_distance_at_least_five(self):
        code = bch_dec_code(7, m=4)  # (15, 7) BCH: exhaustive check feasible
        assert minimum_distance(code) == 5

    def test_oversized_k_rejected(self):
        with pytest.raises(ValueError):
            bch_dec_code(100, m=5)

    def test_all_pair_syndromes_distinct(self, bch16):
        """Every weight-<=2 pattern must map to a unique syndrome."""
        seen = set()
        columns = [bch16.column_int(i) for i in range(bch16.n)]
        for a, b in combinations(range(bch16.n), 2):
            syndrome = columns[a] ^ columns[b]
            assert syndrome not in seen
            seen.add(syndrome)


class TestDoubleErrorCorrection:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_corrects_every_double_error(self, data):
        code = bch_dec_code(16)
        first = data.draw(st.integers(min_value=0, max_value=code.n - 1))
        second = data.draw(st.integers(min_value=0, max_value=code.n - 1).filter(lambda x: x != first))
        message = np.zeros(code.k, dtype=np.uint8)
        message[::3] = 1
        corrupted = code.encode(message).copy()
        corrupted[first] ^= 1
        corrupted[second] ^= 1
        result = code.decode(corrupted)
        assert (result.data == message).all()
        assert set(result.corrected_positions) == {first, second}

    def test_corrects_single_error_too(self, bch16):
        message = np.ones(bch16.k, dtype=np.uint8)
        corrupted = bch16.encode(message).copy()
        corrupted[5] ^= 1
        result = bch16.decode(corrupted)
        assert (result.data == message).all()

    def test_triple_error_not_silently_fixed(self, bch16):
        message = np.ones(bch16.k, dtype=np.uint8)
        corrupted = bch16.encode(message).copy()
        for position in (1, 7, 13):
            corrupted[position] ^= 1
        result = bch16.decode(corrupted)
        # A triple error is beyond t=2: it is either detected or miscorrected.
        if not result.detected_uncorrectable:
            assert set(result.corrected_positions) != {1, 7, 13} or not (
                result.data == message
            ).all()
