"""Unit tests for memory data patterns."""

import numpy as np
import pytest

from repro.memory.patterns import (
    ChargedPattern,
    CheckeredPattern,
    FixedPattern,
    RandomPattern,
    ZeroPattern,
    make_pattern,
)


class TestStaticPatterns:
    def test_charged_is_all_ones(self):
        data = ChargedPattern().data_for_round(3, 8)
        assert data.tolist() == [1] * 8

    def test_zero_is_all_zeros(self):
        assert not ZeroPattern().data_for_round(0, 8).any()

    def test_checkered_alternates(self):
        base = CheckeredPattern().data_for_round(0, 6)
        assert base.tolist() == [0, 1, 0, 1, 0, 1]

    def test_checkered_inverts_on_odd_rounds(self):
        pattern = CheckeredPattern()
        even = pattern.data_for_round(0, 6)
        odd = pattern.data_for_round(1, 6)
        assert ((even ^ odd) == 1).all()


class TestRandomPattern:
    def test_deterministic_per_round(self):
        a = RandomPattern(5).data_for_round(4, 32)
        b = RandomPattern(5).data_for_round(4, 32)
        assert (a == b).all()

    def test_inverts_every_other_round(self):
        """Paper §7.1.2: the random pattern and its inverse are both tested."""
        pattern = RandomPattern(5)
        for block in range(4):
            even = pattern.data_for_round(2 * block, 32)
            odd = pattern.data_for_round(2 * block + 1, 32)
            assert ((even ^ odd) == 1).all()

    def test_base_changes_across_blocks(self):
        pattern = RandomPattern(5)
        first = pattern.data_for_round(0, 64)
        second = pattern.data_for_round(2, 64)
        assert not (first == second).all()

    def test_different_seeds_differ(self):
        a = RandomPattern(1).data_for_round(0, 64)
        b = RandomPattern(2).data_for_round(0, 64)
        assert not (a == b).all()

    def test_every_bit_charged_within_two_rounds(self):
        """Inversion guarantees each cell holds charge once per block."""
        pattern = RandomPattern(9)
        union = pattern.data_for_round(0, 64) | pattern.data_for_round(1, 64)
        assert union.all()


class TestFixedAndFactory:
    def test_fixed_returns_copy(self):
        source = np.array([1, 0, 1], dtype=np.uint8)
        pattern = FixedPattern(source)
        out = pattern.data_for_round(0, 3)
        out[0] = 0
        assert pattern.data_for_round(1, 3).tolist() == [1, 0, 1]

    def test_fixed_length_mismatch(self):
        with pytest.raises(ValueError):
            FixedPattern(np.array([1], dtype=np.uint8)).data_for_round(0, 3)

    def test_factory_names(self):
        for name in ("random", "charged", "checkered", "zero"):
            assert make_pattern(name, seed=1).data_for_round(0, 4).shape == (4,)

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_pattern("worst-case-magic")

    def test_rounds_materialization(self):
        pattern = RandomPattern(3)
        rounds = pattern.rounds(6, 16)
        assert rounds.shape == (6, 16)
        for index in range(6):
            assert (rounds[index] == pattern.data_for_round(index, 16)).all()
