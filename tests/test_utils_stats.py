"""Unit tests for repro.utils.stats."""

import pytest

from repro.utils.stats import Histogram, empirical_cdf, percentile, summarize


class TestPercentile:
    def test_returns_observed_value(self):
        values = [1, 5, 9, 13]
        assert percentile(values, 99) in values

    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_p0_is_min_p100_is_max(self):
        values = [4, 8, 15, 16, 23, 42]
        assert percentile(values, 0) == 4
        assert percentile(values, 100) == 42


class TestEmpiricalCdf:
    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_monotone_and_ends_at_one(self):
        cdf = empirical_cdf([3, 1, 2])
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions[-1] == 1.0
        assert all(f2 >= f1 for f1, f2 in zip(fractions, fractions[1:]))


class TestHistogram:
    def test_from_values_with_overflow_bin(self):
        histogram = Histogram.from_values([0, 1, 1, 9], num_bins=3)
        assert histogram.counts == (1, 2, 1)  # 9 clamps into the last bin

    def test_normalized_sums_to_one(self):
        histogram = Histogram.from_values([0, 1, 2, 2], num_bins=3)
        assert abs(sum(histogram.normalized()) - 1.0) < 1e-12

    def test_normalized_empty(self):
        histogram = Histogram.from_values([], num_bins=3)
        assert histogram.normalized() == (0.0, 0.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram.from_values([-1], num_bins=2)


class TestSummarize:
    def test_fields(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
