"""Cross-layer invariant: the fast Monte-Carlo runner and the object-level
chip model implement the same physics.

``simulate_word`` shortcuts the chip (integer syndromes, shared draws);
``MemorySystem`` routes every access through ``OnDieEccChip``.  Their
random streams differ, so traces are not bit-identical — but the reachable
behaviour must agree: every identification either path produces lies
inside the same exact ground-truth sets, and deterministic (p = 1)
scenarios must match exactly.
"""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.controller.system import MemorySystem
from repro.ecc.hamming import random_sec_code
from repro.memory.chip import OnDieEccChip
from repro.memory.error_model import WordErrorProfile
from repro.profiling.harp import HarpUProfiler
from repro.profiling.naive import NaiveProfiler
from repro.profiling.runner import simulate_word


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(121))


def chip_identify(code, profile, profiler_cls, rounds, seed):
    """Profile one word through the full chip/system path."""
    chip = OnDieEccChip(code, num_words=1, rng=np.random.default_rng(seed))
    chip.set_error_profile(0, profile)
    system = MemorySystem(chip, profiler_cls, seed=seed)
    system.run_active_profiling(num_rounds=rounds)
    return set(system.profile.bits_for(0))


class TestDeterministicEquivalence:
    def test_p1_charged_harp_identical(self, code):
        """At p=1 with all cells charged, both paths identify exactly the
        direct-risk set on the first round."""
        profile = WordErrorProfile((3, 9, 40), (1.0, 1.0, 1.0))
        truth = compute_ground_truth(code, profile)
        fast = simulate_word(
            HarpUProfiler(code, 1, pattern="charged"), profile, 1, word_seed=1
        ).final_identified()

        chip = chip_identify(
            code,
            profile,
            lambda c, s: HarpUProfiler(c, s, pattern="charged"),
            rounds=1,
            seed=1,
        )
        assert fast == truth.direct_at_risk
        assert chip == truth.direct_at_risk

    def test_p1_charged_naive_identical(self, code):
        """Same determinism through the corrected read path."""
        profile = WordErrorProfile((3, 9), (1.0, 1.0))
        fast = simulate_word(
            NaiveProfiler(code, 1, pattern="charged"), profile, 1, word_seed=1
        ).final_identified()
        chip = chip_identify(
            code,
            profile,
            lambda c, s: NaiveProfiler(c, s, pattern="charged"),
            rounds=1,
            seed=1,
        )
        assert fast == chip


class TestStochasticContainment:
    @pytest.mark.parametrize("seed", range(4))
    def test_both_paths_stay_inside_ground_truth(self, code, seed):
        rng = np.random.default_rng(seed)
        positions = tuple(sorted(int(p) for p in rng.choice(code.n, 4, replace=False)))
        profile = WordErrorProfile(positions, (0.75,) * 4)
        truth = compute_ground_truth(code, profile)

        fast = simulate_word(
            NaiveProfiler(code, seed), profile, 32, word_seed=seed
        ).final_identified()
        chip = chip_identify(code, profile, NaiveProfiler, rounds=32, seed=seed)
        assert fast <= truth.post_correction_at_risk
        assert chip <= truth.post_correction_at_risk

    @pytest.mark.parametrize("seed", range(4))
    def test_harp_paths_stay_inside_direct_truth(self, code, seed):
        rng = np.random.default_rng(seed + 100)
        positions = tuple(sorted(int(p) for p in rng.choice(code.n, 4, replace=False)))
        profile = WordErrorProfile(positions, (0.75,) * 4)
        truth = compute_ground_truth(code, profile)

        fast = simulate_word(
            HarpUProfiler(code, seed), profile, 32, word_seed=seed
        ).final_identified()
        chip = chip_identify(code, profile, HarpUProfiler, rounds=32, seed=seed)
        assert fast <= truth.direct_at_risk
        assert chip <= truth.direct_at_risk
