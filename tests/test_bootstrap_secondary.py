"""Unit tests for bootstrapping metrics and secondary-ECC analysis."""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.analysis.bootstrap import censored_rounds, rounds_to_first_identification
from repro.analysis.secondary_ecc import (
    capability_trajectory,
    required_capability,
    rounds_to_bound_capability,
)
from repro.ecc.hamming import random_sec_code


class TestBootstrap:
    def test_first_identification(self):
        assert rounds_to_first_identification([0, 0, 2, 3]) == 3

    def test_never_identified_is_censored(self):
        assert rounds_to_first_identification([0, 0, 0]) == 3
        assert rounds_to_first_identification([0, 0, 0], max_rounds=128) == 128

    def test_immediate_identification(self):
        assert rounds_to_first_identification([1, 1]) == 1

    def test_censored_rounds_batch(self):
        traces = [[0, 1], [0, 0], [2, 2]]
        assert censored_rounds(traces) == [2, 2, 1]


class TestRequiredCapability:
    @pytest.fixture(scope="class")
    def setup(self):
        code = random_sec_code(64, np.random.default_rng(71))
        truth = compute_ground_truth(code, (3, 9, 27, 45))
        return code, truth

    def test_zero_when_all_identified(self, setup):
        _, truth = setup
        assert required_capability(truth, truth.post_correction_at_risk) == 0

    def test_full_risk_when_nothing_identified(self, setup):
        _, truth = setup
        assert required_capability(truth, frozenset()) >= 4

    def test_direct_coverage_bounds_capability_at_one(self, setup):
        """The HARP guarantee, via the analysis API."""
        _, truth = setup
        assert required_capability(truth, truth.direct_at_risk) <= 1

    def test_trajectory(self, setup):
        _, truth = setup
        identified = [frozenset(), truth.direct_at_risk, truth.post_correction_at_risk]
        trajectory = capability_trajectory(truth, identified)
        assert trajectory[0] >= trajectory[1] >= trajectory[2]
        assert trajectory[2] == 0


class TestRoundsToBound:
    def test_finds_first_bounding_round(self):
        trajectories = [[3, 2, 1, 1], [3, 3, 1, 0]]
        assert rounds_to_bound_capability(trajectories, bound=1) == 3
        assert rounds_to_bound_capability(trajectories, bound=3) == 1

    def test_none_when_never_bounded(self):
        assert rounds_to_bound_capability([[2, 2]], bound=1) is None

    def test_percentile_semantics(self):
        """Lower percentiles tolerate outlier words; q=100 does not."""
        trajectories = [[0, 0], [5, 5], [0, 0]]
        assert rounds_to_bound_capability(trajectories, bound=0, q=50.0) == 1
        assert rounds_to_bound_capability(trajectories, bound=0, q=100.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_to_bound_capability([], bound=1)
        with pytest.raises(ValueError):
            rounds_to_bound_capability([[1], [1, 2]], bound=1)
