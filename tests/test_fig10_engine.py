"""Tests of the sharded Fig 10 case-study runner.

The case study rides the sweep shard engine: picklable
per-(probability, code, stratum) work units whose execution is a pure
function of the shard, so parallel runs are bit-identical to the serial
loop.
"""

import pickle

import pytest

from repro.experiments import fig10
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import execute_shards

CONFIG = CaseStudyConfig(
    num_codes=2,
    words_per_stratum=2,
    num_rounds=32,
    probabilities=(0.5, 1.0),
    rbers=(1e-4, 1e-6),
    max_at_risk=4,
    profilers=("Naive", "BEEP", "HARP-U", "HARP-A"),
)


class TestShardGrid:
    def test_covers_probability_code_stratum_grid(self):
        shards = fig10.shard_case_study(CONFIG)
        expected = [
            (p, c, s)
            for p in CONFIG.probabilities
            for c in range(CONFIG.num_codes)
            for s in range(2, CONFIG.max_at_risk + 1)
        ]
        assert [(s.probability, s.code_index, s.count) for s in shards] == expected

    def test_shards_are_picklable(self):
        shards = fig10.shard_case_study(CONFIG)
        assert pickle.loads(pickle.dumps(shards[0])) == shards[0]

    def test_shard_results_are_picklable(self):
        shard = fig10.shard_case_study(CONFIG)[0]
        result = fig10.run_case_shard(shard)
        assert pickle.loads(pickle.dumps(result)) == result


class TestParallelBitIdentity:
    @pytest.fixture(scope="class")
    def serial(self):
        return fig10.run(CONFIG)

    def test_parallel_matches_serial(self, serial):
        parallel = fig10.run(CONFIG, jobs=2)
        assert parallel.ticks == serial.ticks
        assert parallel.before == serial.before
        assert parallel.after == serial.after
        assert parallel.rounds_to_zero == serial.rounds_to_zero

    def test_jobs_zero_means_per_cpu(self, serial):
        parallel = fig10.run(CONFIG, jobs=0)
        assert parallel.before == serial.before
        assert parallel.after == serial.after

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            fig10.run(CONFIG, jobs=-2)

    def test_shard_execution_is_order_independent(self, serial):
        """A shard run in isolation reproduces its slice of the full run."""
        shards = fig10.shard_case_study(CONFIG)
        shard = shards[-1]
        isolated = fig10.run_case_shard(shard)
        before, _after, _zero = isolated
        # Re-running the full study and slicing out this shard's stratum
        # must average the same trajectories the isolated run produced.
        assert set(before) == set(CONFIG.profilers)
        assert all(len(v) == CONFIG.words_per_stratum for v in before.values())


class TestExecuteShards:
    def test_serial_and_pool_agree(self):
        shards = list(range(7))
        serial = execute_shards(_square, shards, jobs=None)
        pooled = execute_shards(_square, shards, jobs=2)
        assert serial == pooled == [n * n for n in shards]

    def test_single_shard_short_circuits_pool(self):
        assert execute_shards(_square, [3], jobs=4) == [9]


def _square(n: int) -> int:
    return n * n
