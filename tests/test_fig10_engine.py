"""Tests of the sharded Fig 10 case-study runner.

The case study rides the sweep shard engine: picklable
per-(probability, code, stratum) work units whose execution is a pure
function of the shard, so parallel runs are bit-identical to the serial
loop — and, like the sweep, it streams completed shards to a
:class:`~repro.experiments.store.Fig10Store` and resumes from them
bit-identically after a kill.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import fig10
from repro.experiments.config import CaseStudyConfig
from repro.experiments.runner import execute_shards
from repro.experiments.store import Fig10Store

CONFIG = CaseStudyConfig(
    num_codes=2,
    words_per_stratum=2,
    num_rounds=32,
    probabilities=(0.5, 1.0),
    rbers=(1e-4, 1e-6),
    max_at_risk=4,
    profilers=("Naive", "BEEP", "HARP-U", "HARP-A"),
)


class TestShardGrid:
    def test_covers_probability_code_stratum_grid(self):
        shards = fig10.shard_case_study(CONFIG)
        expected = [
            (p, c, s)
            for p in CONFIG.probabilities
            for c in range(CONFIG.num_codes)
            for s in range(2, CONFIG.max_at_risk + 1)
        ]
        assert [(s.probability, s.code_index, s.count) for s in shards] == expected

    def test_shards_are_picklable(self):
        shards = fig10.shard_case_study(CONFIG)
        assert pickle.loads(pickle.dumps(shards[0])) == shards[0]

    def test_shard_results_are_picklable(self):
        shard = fig10.shard_case_study(CONFIG)[0]
        result = fig10.run_case_shard(shard)
        assert pickle.loads(pickle.dumps(result)) == result


class TestParallelBitIdentity:
    @pytest.fixture(scope="class")
    def serial(self):
        return fig10.run(CONFIG)

    def test_parallel_matches_serial(self, serial):
        parallel = fig10.run(CONFIG, jobs=2)
        assert parallel.ticks == serial.ticks
        assert parallel.before == serial.before
        assert parallel.after == serial.after
        assert parallel.rounds_to_zero == serial.rounds_to_zero

    def test_jobs_zero_means_per_cpu(self, serial):
        parallel = fig10.run(CONFIG, jobs=0)
        assert parallel.before == serial.before
        assert parallel.after == serial.after

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            fig10.run(CONFIG, jobs=-2)

    def test_shard_execution_is_order_independent(self, serial):
        """A shard run in isolation reproduces its slice of the full run."""
        shards = fig10.shard_case_study(CONFIG)
        shard = shards[-1]
        isolated = fig10.run_case_shard(shard)
        before, _after, _zero = isolated
        # Re-running the full study and slicing out this shard's stratum
        # must average the same trajectories the isolated run produced.
        assert set(before) == set(CONFIG.profilers)
        assert all(len(v) == CONFIG.words_per_stratum for v in before.values())


class TestResume:
    """Streaming persistence and kill-and-resume bit-identity."""

    @pytest.fixture(scope="class")
    def serial(self):
        return fig10.run(CONFIG)

    def test_fresh_run_with_resume_matches_serial(self, serial, tmp_path):
        store_path = tmp_path / "fig10.jsonl"
        resumed = fig10.run(CONFIG, resume=str(store_path))
        assert resumed == serial
        config, shards = Fig10Store(store_path).load()
        assert config == CONFIG
        assert len(shards) == len(fig10.shard_case_study(CONFIG))

    def test_resume_from_partial_store_is_bit_identical(self, serial, tmp_path):
        """Simulated kill: keep the header plus a prefix of the records
        (and a torn tail from the interrupted append), then resume."""
        complete = tmp_path / "complete.jsonl"
        fig10.run(CONFIG, resume=str(complete))
        lines = complete.read_text().splitlines()
        partial = tmp_path / "partial.jsonl"
        partial.write_text(
            "\n".join(lines[:4]) + "\n" + '{"kind": "fig10", "probability": 0.'
        )
        resumed = fig10.run(CONFIG, resume=str(partial))
        assert resumed == serial
        # The store is now complete: a further resume recomputes nothing.
        size = partial.stat().st_size
        again = fig10.run(CONFIG, resume=str(partial))
        assert again == serial
        assert partial.stat().st_size == size

    def test_resume_skips_persisted_shards(self, serial, tmp_path, monkeypatch):
        store_path = tmp_path / "fig10.jsonl"
        fig10.run(CONFIG, resume=str(store_path))
        executed = []
        real = fig10.run_case_shard
        monkeypatch.setattr(
            fig10, "run_case_shard", lambda shard: executed.append(shard) or real(shard)
        )
        resumed = fig10.run(CONFIG, resume=str(store_path))
        assert executed == []  # every shard came from disk
        assert resumed == serial

    def test_resume_refuses_foreign_config(self, tmp_path):
        store_path = tmp_path / "fig10.jsonl"
        fig10.run(CONFIG, resume=str(store_path))
        with pytest.raises(ValueError, match="different case-study config"):
            fig10.run(replace(CONFIG, seed=7), resume=str(store_path))

    def test_resume_refuses_sweep_store(self, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        store_path.write_text(
            json.dumps({"format": "repro-sweep-v2", "kind": "header", "config": None})
            + "\n"
        )
        with pytest.raises(ValueError, match="not a Fig 10"):
            fig10.run(CONFIG, resume=str(store_path))


class TestKillAndResume:
    """The acceptance path: a real process killed mid-campaign resumes
    to a bit-identical rendition."""

    def test_sigkilled_cli_run_resumes_bit_identically(self, tmp_path):
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        store = tmp_path / "fig10.jsonl"
        command = [
            sys.executable,
            "-m",
            "repro",
            "fig10",
            "--scale",
            "unit",
            "--resume",
            str(store),
        ]
        reference = subprocess.run(
            [c for c in command if c != "--resume" and c != str(store)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert reference.returncode == 0, reference.stderr
        victim = subprocess.Popen(
            command, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        # SIGKILL as soon as at least one shard is durable; if the run
        # wins the race and finishes first, the resume is simply a
        # no-op replay — still a valid equality check.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if store.exists() and store.read_text().count("\n") >= 2:
                victim.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
        victim.wait(timeout=300)
        resumed = subprocess.run(
            command, env=env, capture_output=True, text=True, timeout=300
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == reference.stdout


class TestExecuteShards:
    def test_serial_and_pool_agree(self):
        shards = list(range(7))
        serial = execute_shards(_square, shards, jobs=None)
        pooled = execute_shards(_square, shards, jobs=2)
        assert serial == pooled == [n * n for n in shards]

    def test_single_shard_short_circuits_pool(self):
        assert execute_shards(_square, [3], jobs=4) == [9]


def _square(n: int) -> int:
    return n * n
