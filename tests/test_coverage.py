"""Unit tests for coverage aggregation."""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import sample_word_profile
from repro.profiling.coverage import (
    aggregate_coverage,
    aggregate_mean,
    coverage_trajectory,
    missed_indirect_trajectory,
)
from repro.profiling.naive import NaiveProfiler
from repro.profiling.runner import simulate_word


@pytest.fixture(scope="module")
def run_and_truth():
    code = random_sec_code(64, np.random.default_rng(101))
    profile = sample_word_profile(code, 4, 1.0, np.random.default_rng(1))
    truth = compute_ground_truth(code, profile)
    run = simulate_word(NaiveProfiler(code, 3), profile, 16, word_seed=3)
    return run, truth


class TestCoverageTrajectory:
    def test_totals_constant(self, run_and_truth):
        run, truth = run_and_truth
        trajectory = coverage_trajectory(run, truth.direct_at_risk)
        totals = {total for _, total in trajectory}
        assert totals == {len(truth.direct_at_risk)}

    def test_identified_monotone(self, run_and_truth):
        run, truth = run_and_truth
        trajectory = coverage_trajectory(run, truth.direct_at_risk)
        identified = [count for count, _ in trajectory]
        assert identified == sorted(identified)

    def test_missed_indirect_monotone_decreasing(self, run_and_truth):
        run, truth = run_and_truth
        missed = missed_indirect_trajectory(run, truth)
        assert missed == sorted(missed, reverse=True)


class TestAggregation:
    def test_aggregate_coverage_pools_counts(self):
        per_word = [
            [(1, 2), (2, 2)],
            [(0, 2), (2, 2)],
        ]
        assert aggregate_coverage(per_word) == [0.25, 1.0]

    def test_aggregate_empty_input(self):
        assert aggregate_coverage([]) == []

    def test_aggregate_with_empty_targets(self):
        per_word = [[(0, 0)], [(1, 1)]]
        assert aggregate_coverage(per_word) == [1.0]

    def test_aggregate_length_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_coverage([[(0, 1)], [(0, 1), (1, 1)]])

    def test_aggregate_mean(self):
        assert aggregate_mean([[2.0, 0.0], [4.0, 2.0]]) == [3.0, 1.0]

    def test_aggregate_mean_length_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_mean([[1.0], [1.0, 2.0]])
