"""Documentation checks: links resolve and every mentioned CLI flag is real.

Keeps README.md and docs/ honest as the CLI evolves: a renamed or
removed flag, a moved file, or a deleted anchor document fails here
(and in the CI docs job) instead of rotting silently.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.experiments.monitor import build_status_parser
from repro.experiments.service import build_jobs_parser, build_serve_parser
from repro.experiments.storetools import build_store_parser

ROOT = Path(__file__).resolve().parent.parent
DOCS = [
    ROOT / "README.md",
    ROOT / "docs" / "architecture.md",
    ROOT / "docs" / "distributed.md",
    ROOT / "docs" / "fleet.md",
    ROOT / "docs" / "operations.md",
    ROOT / "docs" / "service.md",
]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")


def _real_flags() -> set[str]:
    flags = set()
    for parser in (
        build_parser(),
        build_store_parser(),
        build_status_parser(),
        build_serve_parser(),
        build_jobs_parser(),
    ):
        for action in parser._actions:
            flags.update(s for s in action.option_strings if s.startswith("--"))
    return flags


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_doc_exists(doc):
    assert doc.exists(), f"{doc} is referenced by the docs suite but missing"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    """Every non-HTTP markdown link must point at a real file/directory."""
    broken = []
    for target in LINK.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        resolved = (doc.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative links {broken}"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_every_mentioned_cli_flag_is_real(doc):
    """Flags in repro command lines and inline code must exist on a parser."""
    real = _real_flags()
    unknown = []
    text = doc.read_text()
    # Fenced code blocks: check lines that invoke the repro CLI.
    for block in re.findall(r"```(?:bash|console|sh)?\n(.*?)```", text, re.DOTALL):
        for line in block.splitlines():
            if "repro" not in line:
                continue
            unknown.extend(f for f in FLAG.findall(line) if f not in real)
    # Inline code spans that are exactly one flag (optionally with value).
    for span in re.findall(r"`([^`]+)`", text):
        match = re.fullmatch(r"(--[a-z][a-z0-9-]*)(?:[= ][^`]*)?", span)
        if match and match.group(1) not in unknown and match.group(1) not in real:
            unknown.append(match.group(1))
    assert not unknown, f"{doc.name}: flags not found on any parser: {sorted(set(unknown))}"


def test_readme_scales_match_cli():
    """The README's documented scale presets are exactly the CLI's."""
    from repro.cli import SCALES

    readme = (ROOT / "README.md").read_text()
    documented = re.search(r"--scale \{([a-z,]+)\}", readme)
    assert documented, "README must document --scale {unit,bench,full,paper}"
    assert set(documented.group(1).split(",")) == set(SCALES)


def test_readme_exhibit_commands_are_real():
    """Every `python -m repro <command>` in the README must parse."""
    from repro.cli import COMMANDS

    readme = (ROOT / "README.md").read_text()
    known = set(COMMANDS) | {"all", "worker", "store", "status", "serve", "jobs"}
    for command in re.findall(r"python -m repro ([a-z0-9-]+)", readme):
        assert command in known, f"README mentions unknown command {command!r}"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_doc_commands_are_real(doc):
    """Every `python -m repro <command>` in every doc must parse."""
    from repro.cli import COMMANDS

    known = set(COMMANDS) | {"all", "worker", "store", "status", "serve", "jobs"}
    for command in re.findall(r"python -m repro ([a-z0-9-]+)", doc.read_text()):
        assert command in known, f"{doc.name} mentions unknown command {command!r}"


def test_operations_runbook_is_cross_linked():
    """The monitoring runbook must be reachable from the entry docs,
    and link back to the docs it builds on."""
    readme = (ROOT / "README.md").read_text()
    distributed = (ROOT / "docs" / "distributed.md").read_text()
    operations = (ROOT / "docs" / "operations.md").read_text()
    assert "docs/operations.md" in readme
    assert "operations.md" in distributed
    assert "distributed.md" in operations
    assert "architecture.md" in operations


def test_operations_covers_the_control_plane_surfaces():
    """The runbook must document every control-plane surface by name."""
    operations = (ROOT / "docs" / "operations.md").read_text()
    for surface in (
        "--status-port",
        "python -m repro status",
        "--progress",
        "--continue-past-quarantine",
        "store summary",
        "merge",
        "repro-status-v1",
    ):
        assert surface in operations, f"operations.md must document {surface}"


def test_service_runbook_is_cross_linked():
    """The daemon runbook must be reachable from the entry docs, and
    link back to the runbooks it builds on."""
    readme = (ROOT / "README.md").read_text()
    operations = (ROOT / "docs" / "operations.md").read_text()
    service = (ROOT / "docs" / "service.md").read_text()
    assert "docs/service.md" in readme
    assert "service.md" in operations
    assert "distributed.md" in service
    assert "operations.md" in service


def test_service_runbook_covers_the_api_surfaces():
    """service.md must document every API surface and drill by name."""
    service = (ROOT / "docs" / "service.md").read_text()
    for surface in (
        "python -m repro serve",
        "python -m repro jobs",
        "--state-dir",
        "--max-concurrent",
        "POST /jobs",
        "X-Auth-Token",
        "repro-status-v2",
        "healed",
        "kill -9",
        "round-robin",
    ):
        assert surface in service, f"service.md must document {surface}"


def test_fleet_doc_is_cross_linked():
    """The fleet doc must be reachable from the entry docs and link back."""
    readme = (ROOT / "README.md").read_text()
    architecture = (ROOT / "docs" / "architecture.md").read_text()
    fleet_doc = (ROOT / "docs" / "fleet.md").read_text()
    assert "docs/fleet.md" in readme
    assert "fleet.md" in architecture
    assert "distributed.md" in fleet_doc
    assert "operations.md" in fleet_doc


def test_fleet_doc_covers_the_model_and_sharding():
    """fleet.md must document the model, the report, and the slicing."""
    fleet_doc = (ROOT / "docs" / "fleet.md").read_text()
    for surface in (
        "FaultMixModel",
        "FIELD_DDR4",
        "variability_sigma",
        "chip-indexed",
        "slice_words",
        "repro-fleet-v1",
        "--resume",
        "--status-port",
        "python -m repro fleet",
    ):
        assert surface in fleet_doc, f"fleet.md must document {surface}"
