"""Shared spawn/readiness/teardown harness for the fleet and service suites.

Four test modules used to each carry their own copy of the same three
rituals: wait for a freshly bound listener, build a child-process
environment in which ``repro`` is importable, and spawn/reap real
``python -m repro worker`` processes.  This module is the single home
for those helpers, plus the one genuinely new piece the campaign
daemon needs — :class:`ServiceDaemon`, a managed ``python -m repro
serve`` subprocess with readiness-line parsing, a JSON request helper,
a SIGKILL switch for crash drills, and log capture for post-mortems.

Importable both under pytest (the tests directory is on ``sys.path``)
and from ``tests/chaos.py`` running standalone as a script.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")

#: Header carrying the shared secret on mutating service requests
#: (kept in sync with repro.experiments.service.AUTH_HEADER).
AUTH_HEADER = "X-Auth-Token"


# ----------------------------------------------------------------------
# Readiness waits
# ----------------------------------------------------------------------


def wait_for_address(backend, deadline: float = 30.0):
    """Spin until the backend's listener is live; return (host, port).

    Works for anything exposing an ``address`` attribute that flips
    from ``None`` to ``(host, port)`` once bound: ``SocketBackend``
    inside ``map()``, a started ``WorkServer``, a ``StatusServer``.
    """
    end = time.monotonic() + deadline
    while backend.address is None:
        if time.monotonic() > end:  # pragma: no cover - debugging aid
            raise AssertionError("backend never bound its listener")
        time.sleep(0.005)
    return backend.address


def wait_until(
    predicate,
    deadline: float = 30.0,
    interval: float = 0.02,
    message: str = "condition never became true",
) -> None:
    """Poll ``predicate`` until it returns truthy or ``deadline`` passes."""
    end = time.monotonic() + deadline
    while not predicate():
        if time.monotonic() > end:
            raise AssertionError(message)
        time.sleep(interval)


# ----------------------------------------------------------------------
# Child-process environment and worker spawning
# ----------------------------------------------------------------------


def repro_env(auth_token: str | None = None) -> dict:
    """Environment for a child process that must import ``repro``.

    ``PYTHONPATH`` is rebuilt from this interpreter's ``sys.path`` (so
    the child sees exactly what the test process can import, including
    ``src/`` and the tests directory), and the fleet secret rides along
    in ``REPRO_AUTH_TOKEN`` when given.
    """
    env = dict(os.environ)
    entries = [entry for entry in sys.path if entry]
    if SRC_DIR not in entries:
        entries.insert(0, SRC_DIR)
    env["PYTHONPATH"] = os.pathsep.join(entries)
    if auth_token is not None:
        env["REPRO_AUTH_TOKEN"] = auth_token
    return env


def spawn_worker(
    address: str,
    *,
    linger: float = 30.0,
    wire: str = "v1",
    auth_token: str | None = None,
    quiet: bool = True,
) -> subprocess.Popen:
    """Start one real ``python -m repro worker`` process at ``address``."""
    sink = subprocess.DEVNULL if quiet else None
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            address,
            "--linger",
            str(linger),
            "--spawned",
            "--wire",
            wire,
        ],
        env=repro_env(auth_token),
        stdout=sink,
        stderr=sink,
    )


def terminate_procs(procs, timeout: float = 10.0) -> None:
    """Teardown-kill: SIGKILL every live process, then reap them all."""
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
            pass


# ----------------------------------------------------------------------
# Background campaigns
# ----------------------------------------------------------------------


class BackgroundCampaign:
    """A campaign callable on a daemon thread, with a checked join.

    The socket suites all run ``backend.map(...)`` (or a whole sweep)
    on a side thread so the test thread can play fleet operator; this
    wraps the thread + outcome-dict + join-and-assert ritual.  Raises
    whatever the campaign raised when :meth:`finish` is called.
    """

    def __init__(self, fn, name: str = "campaign"):
        self._fn = fn
        self._name = name
        self._outcome: dict = {}
        self._thread = threading.Thread(
            target=self._run, name=f"test-{name}", daemon=True
        )

    def _run(self) -> None:
        try:
            self._outcome["value"] = self._fn()
        except BaseException as error:  # noqa: BLE001 - re-raised in finish()
            self._outcome["error"] = error

    def start(self) -> "BackgroundCampaign":
        self._thread.start()
        return self

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def finish(self, timeout: float = 180.0):
        """Join the campaign; assert it ended; return (or raise) its outcome."""
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), f"{self._name} hung"
        if "error" in self._outcome:
            raise self._outcome["error"]
        return self._outcome["value"]


# ----------------------------------------------------------------------
# The campaign daemon as a managed subprocess
# ----------------------------------------------------------------------

#: The daemon's machine-parsed readiness line (see serve_main).
_READY_LINE = re.compile(
    r"repro serve: listening on http://(?P<host>[^:\s]+):(?P<port>\d+) . "
    r"work (?P<work_host>[^:\s]+):(?P<work_port>\d+)"
)


class ServiceDaemon:
    """A real ``python -m repro serve`` subprocess under test control.

    Spawns the daemon on an ephemeral HTTP port, parses the readiness
    line for the HTTP and work addresses, captures every output line
    (``lines``) for post-mortems, and records the job ids the daemon
    reported healing at startup (``healed``).

    Crash drills use :meth:`sigkill` (hard node loss — the state dir
    survives, spawned workers linger briefly and then exit); normal
    teardown uses :meth:`terminate` or the context manager.
    """

    def __init__(
        self,
        state_dir,
        *,
        workers: int = 2,
        auth_token: str | None = None,
        args: tuple = (),
        deadline: float = 30.0,
    ):
        self.state_dir = str(state_dir)
        self.workers = workers
        self.auth_token = auth_token
        self._extra = list(args)
        self._deadline = deadline
        self.proc: subprocess.Popen | None = None
        #: Every stdout/stderr line the daemon printed, in order.
        self.lines: list[str] = []
        self.http: tuple[str, int] | None = None
        self.work: tuple[str, int] | None = None
        #: Job ids the daemon healed when it (re)started.
        self.healed: list[str] = []
        self._ready = threading.Event()
        self._reader: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServiceDaemon":
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--state-dir",
            self.state_dir,
            "--workers",
            str(self.workers),
        ]
        if self.auth_token is not None:
            command += ["--auth-token", self.auth_token]
        command += self._extra
        self._ready.clear()
        self.healed = []
        self.proc = subprocess.Popen(
            command,
            env=repro_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            encoding="utf-8",
        )
        self._reader = threading.Thread(
            target=self._drain, name="test-serve-log", daemon=True
        )
        self._reader.start()
        if not self._ready.wait(self._deadline):
            self.sigkill()
            raise AssertionError(
                f"daemon never reported readiness; log so far: {self.lines}"
            )
        return self

    def _drain(self) -> None:
        for raw in self.proc.stdout:
            line = raw.rstrip("\n")
            self.lines.append(line)
            match = _READY_LINE.search(line)
            if match:
                self.http = (match["host"], int(match["port"]))
                self.work = (match["work_host"], int(match["work_port"]))
                self._ready.set()
            elif "healed" in line and "job(s):" in line:
                self.healed = [
                    token.strip()
                    for token in line.split("job(s):", 1)[1].split(",")
                    if token.strip()
                ]

    @property
    def base_url(self) -> str:
        assert self.http is not None, "daemon not started"
        return f"http://{self.http[0]}:{self.http[1]}"

    @property
    def work_address(self) -> str:
        assert self.work is not None, "daemon not started"
        return f"{self.work[0]}:{self.work[1]}"

    def sigkill(self) -> None:
        """Hard-kill the daemon (models a node loss, no cleanup runs)."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self, timeout: float = 30.0) -> None:
        """Graceful SIGTERM shutdown; escalates to SIGKILL on a hang."""
        if self.proc is None or self.proc.poll() is not None:
            return
        self.proc.terminate()
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
            self.proc.kill()
            self.proc.wait(timeout=10)

    def __enter__(self) -> "ServiceDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.terminate()

    # -- HTTP helpers ---------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        expect: int | None = None,
        timeout: float = 30.0,
    ) -> tuple[int, dict]:
        """One JSON request against the daemon; returns (status, body).

        4xx/5xx responses are returned, not raised, so tests can assert
        on error payloads; ``expect`` asserts the status code in-line.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        request.add_header("Content-Type", "application/json")
        if self.auth_token is not None:
            request.add_header(AUTH_HEADER, self.auth_token)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                code, raw = response.status, response.read()
        except urllib.error.HTTPError as error:
            code, raw = error.code, error.read()
        parsed = json.loads(raw.decode("utf-8"))
        if expect is not None:
            assert code == expect, f"{method} {path} -> {code}: {parsed}"
        return code, parsed

    def get(self, path: str, **kwargs) -> tuple[int, dict]:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, payload: dict | None = None, **kwargs):
        return self.request("POST", path, payload, **kwargs)

    def submit(self, spec: dict) -> str:
        """Submit a job spec; return the new job id (asserts 201)."""
        _, job = self.post("/jobs", spec, expect=201)
        return job["id"]

    def wait_job(
        self,
        job_id: str,
        states: tuple = ("done", "failed", "cancelled"),
        deadline: float = 180.0,
    ) -> dict:
        """Poll ``GET /jobs/ID`` until the job reaches one of ``states``."""
        latest: dict = {}

        def settled() -> bool:
            _, record = self.get(f"/jobs/{job_id}", expect=200)
            latest.clear()
            latest.update(record)
            return record["state"] in states

        wait_until(
            settled,
            deadline,
            interval=0.05,
            message=f"job {job_id} never reached {states}; last: {latest}",
        )
        return latest

    def result(self, job_id: str) -> dict:
        """Fetch the persisted result payload of a done job."""
        _, payload = self.get(f"/jobs/{job_id}/result", expect=200)
        return payload
