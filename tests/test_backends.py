"""Tests of the pluggable execution backends.

Covers the backend contract (results in shard order, bit-identical
across serial / process-pool / socket execution), the socket protocol's
length-prefixed framing, the worker loop, remote-error propagation, the
backend spec strings the CLI forwards, and the campaign-hardening
failure paths (auth rejection, heartbeat-timeout requeue, poison-chunk
retry budgets, the workers-expected start barrier).
"""

import socket
import struct
import threading
import time

import pytest

from repro.experiments import fig10
from repro.experiments.backends import (
    AUTH_TOKEN_ENV,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    WorkerRejectedError,
    _reconnect_backoff,
    _recv_msg,
    _send_msg,
    _tokens_match,
    parse_address,
    resolve_backend,
    resolve_jobs,
    run_worker,
)
from repro.experiments.wire import MAX_FRAME, StreamDesync, make_session
from repro.experiments.config import CaseStudyConfig, SweepConfig
from repro.experiments.runner import run_sweep
from serviceharness import wait_for_address as _wait_for_address

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=2,
    num_rounds=16,
    error_counts=(2, 3),
    probabilities=(0.5, 1.0),
    profilers=("Naive", "HARP-U"),
)

#: Worker spawns are slow; keep the socket-backed sweeps on one grid.
SOCKET_TIMEOUT = 120.0


def _identity(value):
    return value * 2


def _boom(value):
    raise ValueError(f"cannot process {value}")


def _die_once_then_succeed(item):
    """Hard-kills the first worker process that sees a ``kill-once`` item.

    The marker file distinguishes the first attempt (die mid-chunk, no
    reply frame) from the requeued retry on a surviving worker.
    """
    import os

    kind, payload = item
    if kind == "kill-once":
        if not os.path.exists(payload):
            open(payload, "w").close()
            os._exit(1)
        return ("survived", payload)
    return ("ok", payload)


class TestFraming:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        with left, right:
            message = ("task", 3, _identity, [1, 2, 3])
            _send_msg(left, message)
            received = _recv_msg(right)
        assert received[0] == "task"
        assert received[1] == 3
        assert received[2] is _identity
        assert received[3] == [1, 2, 3]

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        right.close()
        with left:
            assert _recv_msg(left) is None

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        with left:
            left.sendall(b"\x00\x00\x00")  # partial length header
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(ConnectionError):
                _recv_msg(right)
        right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.1:7071") == ("10.0.0.1", 7071)
        assert parse_address(":9") == ("127.0.0.1", 9)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:seven")


class TestResolveBackend:
    def test_none_infers_from_jobs(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(None, jobs=1), SerialBackend)
        pool = resolve_backend(None, jobs=3)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.jobs == 3

    def test_spec_strings(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process", jobs=2), ProcessPoolBackend)
        sock = resolve_backend("socket", jobs=2)
        assert isinstance(sock, SocketBackend)
        assert sock.spawn_workers == 2

    def test_explicitly_parallel_specs_default_to_cpu_count(self):
        """--backend process/socket without --jobs must not run serial."""
        import os

        cpus = os.cpu_count() or 1
        assert resolve_backend("process").jobs == cpus
        assert resolve_backend("socket").spawn_workers == max(1, cpus)
        assert resolve_backend("socket://127.0.0.1:7071").spawn_workers == cpus

    def test_socket_url_binds_host(self):
        backend = resolve_backend("socket://0.0.0.0:7071", jobs=0)
        assert (backend.bind_host, backend.bind_port) == ("0.0.0.0", 7071)
        assert backend.spawn_workers == 0  # remote-only server

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("carrier-pigeon")

    def test_worker_hint_drives_chunking(self):
        assert SerialBackend().worker_hint() == 1
        assert ProcessPoolBackend(jobs=3).worker_hint() == 3
        # Loopback spawn-only pools have an exactly-known size.
        assert SocketBackend(spawn_workers=8).worker_hint() == 8
        assert SocketBackend(spawn_workers=2).worker_hint() == 2
        # Remote-capable servers can't know the fleet size; the estimate
        # must exceed typical error-count block counts or chunking would
        # never split blocks and larger fleets would starve.
        assert SocketBackend(spawn_workers=0).worker_hint() > 4
        assert SocketBackend(bind="0.0.0.0:7071", spawn_workers=2).worker_hint() > 4

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestBackendContract:
    """Each backend maps a plain function over items in order."""

    @pytest.mark.parametrize(
        "backend",
        [
            SerialBackend(),
            ProcessPoolBackend(jobs=2),
            SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT),
        ],
        ids=["serial", "process", "socket"],
    )
    def test_map_preserves_order(self, backend):
        values = list(range(7))
        assert backend.map(_identity, values, chunksize=2) == [v * 2 for v in values]

    def test_empty_shards(self):
        assert SerialBackend().map(_identity, []) == []
        assert SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT).map(_identity, []) == []

    @pytest.mark.parametrize(
        "backend",
        [
            SerialBackend(),
            ProcessPoolBackend(jobs=2),
            SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT),
        ],
        ids=["serial", "process", "socket"],
    )
    def test_imap_unordered_covers_every_shard_with_right_indices(self, backend):
        """Completion order is free; the (index, result) pairing is not."""
        values = list(range(7))
        pairs = list(backend.imap_unordered(_identity, values, chunksize=2))
        assert sorted(pairs) == [(i, v * 2) for i, v in enumerate(values)]

    def test_socket_error_propagates(self):
        backend = SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT)
        with pytest.raises(RuntimeError, match="cannot process"):
            backend.map(_boom, [1, 2])

    def test_worker_death_mid_chunk_requeues_to_survivor(self, tmp_path):
        """The module docstring's promise: a worker that dies mid-chunk
        has that chunk requeued for the surviving workers."""
        import os

        marker = str(tmp_path / "killed-once")
        items = [("plain", 1), ("kill-once", marker), ("plain", 2)]
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        results = backend.map(_die_once_then_succeed, items, chunksize=1)
        assert results == [("ok", 1), ("survived", marker), ("ok", 2)]
        assert os.path.exists(marker)  # the first attempt really died


def _sleepy(value):
    time.sleep(0.2)
    return value * 2


class TestAuthToken:
    """The join handshake's shared secret."""

    def test_wrong_token_rejected_and_right_token_serves(self):
        backend = SocketBackend(
            spawn_workers=0, auth_token="s3cret", timeout=SOCKET_TIMEOUT
        )
        rejection = {}

        def bad_worker():
            host, port = _wait_for_address(backend)
            try:
                run_worker(f"{host}:{port}", auth_token="wrong")
            except WorkerRejectedError as error:
                rejection["reason"] = str(error)

        def good_worker():
            host, port = _wait_for_address(backend)
            run_worker(f"{host}:{port}", auth_token="s3cret")

        threading.Thread(target=bad_worker, daemon=True).start()
        threading.Thread(target=good_worker, daemon=True).start()
        assert backend.map(_identity, [1, 2, 3], chunksize=1) == [2, 4, 6]
        assert "auth token" in rejection.get("reason", "auth token")

    def test_missing_token_rejected(self):
        backend = SocketBackend(
            spawn_workers=0, auth_token="s3cret", timeout=SOCKET_TIMEOUT
        )
        outcome = {}

        def tokenless_then_good():
            host, port = _wait_for_address(backend)
            try:
                run_worker(f"{host}:{port}")  # no token at all
            except WorkerRejectedError:
                outcome["rejected"] = True
            run_worker(f"{host}:{port}", auth_token="s3cret")

        threading.Thread(target=tokenless_then_good, daemon=True).start()
        assert backend.map(_identity, [5], chunksize=1) == [10]
        assert outcome == {"rejected": True}

    def test_spawned_workers_inherit_token_via_env(self, monkeypatch):
        """Self-spawned workers receive the secret through the environment,
        never the command line."""
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        backend = SocketBackend(
            spawn_workers=1, auth_token="fleet-secret", timeout=SOCKET_TIMEOUT
        )
        assert backend.map(_identity, [1, 2], chunksize=1) == [2, 4]

    def test_tokenless_server_accepts_tokened_worker(self):
        backend = SocketBackend(spawn_workers=0, timeout=SOCKET_TIMEOUT)

        def worker():
            host, port = _wait_for_address(backend)
            run_worker(f"{host}:{port}", auth_token="anything")

        threading.Thread(target=worker, daemon=True).start()
        assert backend.map(_identity, [7], chunksize=1) == [14]


class TestHeartbeats:
    """Dead-worker detection and chunk requeue via heartbeat deadlines."""

    def test_silent_worker_times_out_and_chunk_requeues(self):
        """A worker that takes a task and goes silent (hard kill, network
        partition) must have its chunk requeued for the survivors."""
        backend = SocketBackend(
            spawn_workers=1,
            workers_expected=2,
            heartbeat_timeout=1.0,
            timeout=SOCKET_TIMEOUT,
        )
        hung = threading.Event()

        def silent_worker():
            host, port = _wait_for_address(backend)
            session = make_session("v1", None)
            with socket.create_connection((host, port)) as sock:
                session.send(sock, ("hello", 0, None))
                while True:
                    message = session.recv(sock)
                    if message is None:
                        return
                    if message[0] == "welcome":
                        session.campaign = str(message[2])
                        session.secure(str(message[3]))
                        continue
                    if message[0] == "task":
                        hung.set()
                        # Take the chunk, never reply, never heartbeat:
                        # exactly what a hard-killed worker looks like.
                        time.sleep(SOCKET_TIMEOUT)
                        return

        threading.Thread(target=silent_worker, daemon=True).start()
        results = backend.map(_sleepy, list(range(4)), chunksize=1)
        assert results == [v * 2 for v in range(4)]
        assert hung.is_set()  # the silent worker really owned a chunk

    def test_heartbeats_keep_slow_chunks_alive(self):
        """A chunk slower than the deadline must NOT be requeued while its
        worker heartbeats: the deadline detects death, not slowness."""
        backend = SocketBackend(
            spawn_workers=1, heartbeat_timeout=0.4, timeout=SOCKET_TIMEOUT
        )
        # 0.2s per item, chunksize 4 -> ~0.8s per chunk, twice the
        # deadline; heartbeats at deadline/4 keep the connection warm.
        assert backend.map(_sleepy, list(range(4)), chunksize=4) == [
            v * 2 for v in range(4)
        ]


def _exit_on_poison(item):
    """Worker function that hard-kills its process on the poison item."""
    import os

    if item == "poison":
        os._exit(1)
    return item


class TestRetryBudget:
    """Poison chunks are quarantined instead of crash-looping the fleet."""

    def test_poison_chunk_exhausts_budget_and_aborts(self):
        backend = SocketBackend(
            spawn_workers=3, max_chunk_retries=1, timeout=SOCKET_TIMEOUT
        )
        with pytest.raises(RuntimeError, match="retry budget|poison"):
            backend.map(_exit_on_poison, ["ok", "poison", "fine"], chunksize=1)

    def test_zero_budget_aborts_on_first_loss(self):
        backend = SocketBackend(
            spawn_workers=2, max_chunk_retries=0, timeout=SOCKET_TIMEOUT
        )
        with pytest.raises(RuntimeError, match="retry budget|poison"):
            backend.map(_exit_on_poison, ["ok", "poison"], chunksize=1)

    def test_budget_still_allows_single_recovery(self, tmp_path):
        """The PR 3 die-once scenario stays within the default budget."""
        marker = str(tmp_path / "killed-once")
        items = [("plain", 1), ("kill-once", marker), ("plain", 2)]
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        results = backend.map(_die_once_then_succeed, items, chunksize=1)
        assert results == [("ok", 1), ("survived", marker), ("ok", 2)]


class TestStartBarrier:
    """--workers-expected holds dispatch until the fleet is up."""

    def test_map_waits_for_expected_fleet(self):
        backend = SocketBackend(
            spawn_workers=0, workers_expected=2, timeout=SOCKET_TIMEOUT
        )

        def late_fleet():
            host, port = _wait_for_address(backend)
            threading.Thread(
                target=run_worker, args=(f"{host}:{port}",), daemon=True
            ).start()
            # Second worker joins noticeably later; the barrier must have
            # held everything rather than dispatched to worker one alone.
            time.sleep(0.5)
            run_worker(f"{host}:{port}")

        threading.Thread(target=late_fleet, daemon=True).start()
        assert backend.map(_identity, list(range(6)), chunksize=1) == [
            v * 2 for v in range(6)
        ]

    def test_unmet_barrier_times_out_with_fleet_count(self):
        backend = SocketBackend(
            spawn_workers=1, workers_expected=3, timeout=3.0
        )
        with pytest.raises(TimeoutError, match="1 of 3 expected"):
            backend.map(_identity, [1, 2], chunksize=1)


class TestSweepBitIdentity:
    """Acceptance: serial, process-pool, and socket sweeps are bit-identical."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(CONFIG)

    @pytest.mark.parametrize("spec", ["serial", "process"], ids=["serial", "process"])
    def test_local_backends_match(self, serial, spec):
        result = run_sweep(CONFIG, jobs=2, backend=spec)
        assert result.cells.keys() == serial.cells.keys()
        for key in serial.cells:
            assert result.cells[key].words == serial.cells[key].words, key

    def test_socket_end_to_end_matches_serial(self, serial):
        """Spawn 2 local workers over the socket protocol (the CI smoke)."""
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        result = run_sweep(CONFIG, backend=backend)
        assert result.cells.keys() == serial.cells.keys()
        for key in serial.cells:
            assert result.cells[key].words == serial.cells[key].words, key

    def test_seeded_variants_match(self):
        """Property-style spot check across config variations."""
        from dataclasses import replace

        for variant in (
            replace(CONFIG, seed=7),
            replace(CONFIG, pattern="charged"),
        ):
            reference = run_sweep(variant)
            parallel = run_sweep(variant, jobs=2)
            for key in reference.cells:
                assert parallel.cells[key].words == reference.cells[key].words, key


class TestFig10OverSocket:
    def test_case_study_matches_serial(self):
        config = CaseStudyConfig(
            num_codes=2,
            words_per_stratum=2,
            num_rounds=32,
            probabilities=(0.5,),
            rbers=(1e-4,),
            max_at_risk=3,
            profilers=("Naive", "HARP-U"),
        )
        serial = fig10.run(config)
        remote = fig10.run(
            config, backend=SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        )
        assert remote.before == serial.before
        assert remote.after == serial.after
        assert remote.rounds_to_zero == serial.rounds_to_zero


class TestExternalWorker:
    """A worker process started by hand (the multi-machine path)."""

    def test_run_worker_joins_listening_server(self):
        backend = SocketBackend(spawn_workers=0, timeout=SOCKET_TIMEOUT)
        executed = {}

        def join_when_listening():
            host, port = _wait_for_address(backend)
            executed["chunks"] = run_worker(f"{host}:{port}")

        worker = threading.Thread(target=join_when_listening, daemon=True)
        worker.start()
        results = backend.map(_identity, list(range(5)), chunksize=2)
        worker.join(timeout=SOCKET_TIMEOUT)
        assert results == [v * 2 for v in range(5)]
        assert executed["chunks"] == (3, True)  # 3 chunks, clean session

    def test_unreachable_server_reports_not_reached(self):
        executed, reached = run_worker("127.0.0.1:9", linger=0.0)
        assert executed == 0
        assert reached is False

    def test_silent_probe_connection_does_not_stall_the_map(self):
        """A port scan / health check that connects and says nothing must
        neither hang its handler forever nor starve the real workers."""
        backend = SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT)
        probes = []

        def probe_when_listening():
            probe = socket.create_connection(_wait_for_address(backend))
            probes.append(probe)  # connect, send nothing, hold open

        threading.Thread(target=probe_when_listening, daemon=True).start()
        assert backend.map(_identity, list(range(4)), chunksize=1) == [
            v * 2 for v in range(4)
        ]
        for probe in probes:
            probe.close()

    def test_lingering_worker_serves_consecutive_maps(self):
        """Multi-sweep exhibits drain workers per sweep; linger rejoins.

        One fixed port, two separate maps (as ext-patterns or headline
        would run), one external worker with a linger window: it must
        execute chunks of both.
        """
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = threading.Thread(
            target=run_worker,
            args=(f"127.0.0.1:{port}",),
            kwargs={"linger": SOCKET_TIMEOUT / 2},
            daemon=True,
        )
        worker.start()
        first = SocketBackend(
            bind=f"127.0.0.1:{port}", spawn_workers=0, timeout=SOCKET_TIMEOUT
        ).map(_identity, [1, 2], chunksize=1)
        second = SocketBackend(
            bind=f"127.0.0.1:{port}", spawn_workers=0, timeout=SOCKET_TIMEOUT
        ).map(_identity, [3, 4], chunksize=1)
        assert first == [2, 4]
        assert second == [6, 8]


class TestTimingSafeTokens:
    """Satellite: the join-token check must never be a bare ``==``."""

    def test_tokens_match_semantics(self):
        assert _tokens_match("secret", "secret")
        assert not _tokens_match("secrex", "secret")
        assert not _tokens_match("", "secret")
        assert not _tokens_match(None, "secret")
        assert not _tokens_match(42, "secret")
        assert not _tokens_match(["secret"], "secret")

    def test_handshake_never_compares_secret_with_equality(self):
        """Regression: ``==`` short-circuits on the first differing byte,
        leaking the token prefix to anyone who can time the handshake."""
        import inspect

        import repro.experiments.backends as backends_module

        source = inspect.getsource(backends_module)
        assert "== self.auth_token" not in source
        assert "self.auth_token ==" not in source
        assert "_tokens_match(" in source


class TestReconnectBackoff:
    """Satellite: linger reconnects use jittered exponential backoff."""

    def test_delays_double_to_cap(self):
        # rng pinned to 0.5 makes the jitter factor exactly 1.0.
        backoff = _reconnect_backoff(base=0.2, cap=5.0, rng=lambda: 0.5)
        delays = [next(backoff) for _ in range(8)]
        assert delays[0] == pytest.approx(0.2)
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier
        assert delays[-2] == pytest.approx(5.0)
        assert delays[-1] == pytest.approx(5.0)  # capped, not still doubling

    def test_jitter_spreads_a_fleet(self):
        low = next(_reconnect_backoff(base=1.0, cap=9.0, rng=lambda: 0.0))
        high = next(_reconnect_backoff(base=1.0, cap=9.0, rng=lambda: 1.0))
        assert low == pytest.approx(0.5)
        assert high == pytest.approx(1.5)


class TestMalformedFrames:
    """Satellite: torn/oversized/undecodable frames must not kill fleets."""

    def test_oversized_length_prefix_is_desync_not_allocation(self):
        left, right = socket.socketpair()
        with left, right:
            left.sendall(struct.pack(">Q", MAX_FRAME + 1))
            with pytest.raises(StreamDesync):
                _recv_msg(right)

    def test_torn_header_mid_recv_raises_connection_error(self):
        left, right = socket.socketpair()
        with left:
            left.sendall(b"\x00\x00\x00\x00\x00")  # 5 of 8 length bytes
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(ConnectionError):
                _recv_msg(right)
        right.close()

    def test_undecodable_task_frame_worker_survives_and_chunk_resends(self):
        """A task frame the worker cannot decode (here: a function
        reference that does not resolve) must draw a ``badframe`` reply,
        not kill the worker; the server resends and the chunk completes."""
        import hashlib
        import hmac as hmac_module
        import json

        from repro.experiments import wire as wire_module

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()
        outcome = {}

        def fake_server():
            conn, _ = server.accept()
            session = make_session("v1", None)
            with conn:
                conn.settimeout(SOCKET_TIMEOUT)
                hello = session.recv(conn)
                assert hello[0] == "hello"
                campaign = "feedfacefeedface"
                session.send(
                    conn, ("welcome", 5.0, campaign, session.mac_mode)
                )
                session.campaign = campaign
                session.secure()
                # Hand-build a task frame whose function reference cannot
                # resolve on the worker (pack_frame would refuse to encode
                # it, which is exactly why it must be forged by hand).
                header = json.dumps(
                    {
                        "v": 1,
                        "kind": "task",
                        "campaign": campaign,
                        "seq": session._send_seq + 1,
                        "body": [
                            "t",
                            0,
                            ["fn", "no.such.module:missing"],
                            ["l", 1],
                        ],
                        "blobs": [],
                    },
                    separators=(",", ":"),
                ).encode("utf-8")
                preamble = wire_module._PREAMBLE.pack(
                    wire_module.MAGIC, len(header), 0
                )
                data = preamble + header
                conn.sendall(
                    data
                    + hmac_module.new(
                        session._key, data, hashlib.sha256
                    ).digest()
                )
                session._send_seq += 1

                def next_reply():
                    while True:
                        reply = session.recv(conn)
                        if reply is not None and reply[0] == "heartbeat":
                            continue
                        return reply

                reply = next_reply()
                outcome["first"] = reply[0]
                # The worker survived: resend the chunk properly.
                session.send(conn, ("task", 0, _identity, [21]))
                outcome["second"] = next_reply()
                session.send(conn, ("shutdown",))

        thread = threading.Thread(target=fake_server, daemon=True)
        thread.start()
        executed, reached = run_worker(f"{host}:{port}")
        thread.join(timeout=SOCKET_TIMEOUT)
        server.close()
        assert outcome["first"] == "badframe"
        assert outcome["second"] == ("result", 0, [42])
        assert (executed, reached) == (1, True)


class TestElasticFleet:
    """Workers join after dispatch started and leave mid-campaign."""

    def test_worker_joins_mid_campaign(self):
        backend = SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT)
        late = {}

        def late_joiner():
            host, port = _wait_for_address(backend)
            time.sleep(0.5)  # dispatch to worker one is well underway
            late["session"] = run_worker(f"{host}:{port}")

        threading.Thread(target=late_joiner, daemon=True).start()
        results = backend.map(_sleepy, list(range(8)), chunksize=1)
        assert results == [v * 2 for v in range(8)]
        # The late joiner really took work off the first worker's plate.
        assert late["session"][0] >= 1
        assert late["session"][1] is True

    def test_max_chunks_drains_cleanly_mid_campaign(self):
        """An elastic worker leaves after its chunk budget with a clean
        goodbye — no retry-budget charge, no lost chunks."""
        backend = SocketBackend(
            spawn_workers=0, max_chunk_retries=0, timeout=SOCKET_TIMEOUT
        )
        sessions = {}

        def fleet():
            host, port = _wait_for_address(backend)
            address = f"{host}:{port}"

            def capped():
                sessions["capped"] = run_worker(address, max_chunks=2)

            threading.Thread(target=capped, daemon=True).start()
            time.sleep(0.3)
            sessions["rest"] = run_worker(address)

        threading.Thread(target=fleet, daemon=True).start()
        # max_chunk_retries=0: any chunk lost to an unclean leave would
        # abort the whole map, so success proves the goodbye was clean.
        results = backend.map(_identity, list(range(6)), chunksize=1)
        assert results == [v * 2 for v in range(6)]
        assert sessions["capped"] == (2, True)

    def test_backpressure_bounds_in_flight_dispatch(self):
        backend = SocketBackend(
            spawn_workers=2, max_buffered_chunks=1, timeout=SOCKET_TIMEOUT
        )
        assert backend.map(_identity, list(range(8)), chunksize=1) == [
            v * 2 for v in range(8)
        ]

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="wire"):
            SocketBackend(wire="v2")
        with pytest.raises(ValueError, match="max_buffered_chunks"):
            SocketBackend(max_buffered_chunks=0)
        with pytest.raises(ValueError, match="max_chunks"):
            run_worker("127.0.0.1:9", max_chunks=0)


class TestLegacyPickleWire:
    """``--wire pickle`` stays available as an explicit escape hatch."""

    def test_pickle_wire_end_to_end(self):
        backend = SocketBackend(
            spawn_workers=1, wire="pickle", timeout=SOCKET_TIMEOUT
        )
        assert backend.map(_identity, [1, 2, 3], chunksize=1) == [2, 4, 6]


class TestAutoRetry:
    """End-of-map auto-retry shrinks poison chunks to single shards."""

    def test_poison_chunk_shrinks_to_single_bad_shard(self, capsys):
        backend = SocketBackend(
            spawn_workers=6,
            max_chunk_retries=1,
            continue_past_quarantine=True,
            timeout=SOCKET_TIMEOUT,
        )
        got = sorted(
            backend.imap_unordered(
                _exit_on_poison, ["a", "poison", "b", "c"], chunksize=2
            )
        )
        # Chunk [a, poison] died twice, was split, and the auto-retry
        # pass healed shard 0 while isolating shard 1 as the poison.
        assert got == [(0, "a"), (2, "b"), (3, "c")]
        assert backend.quarantined_shards == (1,)
        assert backend.healed_shards == (0,)
        stderr = capsys.readouterr().err
        assert "auto-retry" in stderr

    def test_auto_retry_off_quarantines_the_whole_chunk(self):
        backend = SocketBackend(
            spawn_workers=4,
            max_chunk_retries=1,
            continue_past_quarantine=True,
            auto_retry=False,
            timeout=SOCKET_TIMEOUT,
        )
        got = sorted(
            backend.imap_unordered(
                _exit_on_poison, ["a", "poison", "b", "c"], chunksize=2
            )
        )
        assert got == [(2, "b"), (3, "c")]
        assert backend.quarantined_shards == (0, 1)
        assert backend.healed_shards == ()
