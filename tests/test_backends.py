"""Tests of the pluggable execution backends.

Covers the backend contract (results in shard order, bit-identical
across serial / process-pool / socket execution), the socket protocol's
length-prefixed framing, the worker loop, remote-error propagation, the
backend spec strings the CLI forwards, and the campaign-hardening
failure paths (auth rejection, heartbeat-timeout requeue, poison-chunk
retry budgets, the workers-expected start barrier).
"""

import socket
import threading
import time

import pytest

from repro.experiments import fig10
from repro.experiments.backends import (
    AUTH_TOKEN_ENV,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    WorkerRejectedError,
    _recv_msg,
    _send_msg,
    parse_address,
    resolve_backend,
    resolve_jobs,
    run_worker,
)
from repro.experiments.config import CaseStudyConfig, SweepConfig
from repro.experiments.runner import run_sweep

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=2,
    num_rounds=16,
    error_counts=(2, 3),
    probabilities=(0.5, 1.0),
    profilers=("Naive", "HARP-U"),
)

#: Worker spawns are slow; keep the socket-backed sweeps on one grid.
SOCKET_TIMEOUT = 120.0


def _identity(value):
    return value * 2


def _boom(value):
    raise ValueError(f"cannot process {value}")


def _die_once_then_succeed(item):
    """Hard-kills the first worker process that sees a ``kill-once`` item.

    The marker file distinguishes the first attempt (die mid-chunk, no
    reply frame) from the requeued retry on a surviving worker.
    """
    import os

    kind, payload = item
    if kind == "kill-once":
        if not os.path.exists(payload):
            open(payload, "w").close()
            os._exit(1)
        return ("survived", payload)
    return ("ok", payload)


class TestFraming:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        with left, right:
            message = ("task", 3, _identity, [1, 2, 3])
            _send_msg(left, message)
            received = _recv_msg(right)
        assert received[0] == "task"
        assert received[1] == 3
        assert received[2] is _identity
        assert received[3] == [1, 2, 3]

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        right.close()
        with left:
            assert _recv_msg(left) is None

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        with left:
            left.sendall(b"\x00\x00\x00")  # partial length header
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(ConnectionError):
                _recv_msg(right)
        right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.1:7071") == ("10.0.0.1", 7071)
        assert parse_address(":9") == ("127.0.0.1", 9)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:seven")


class TestResolveBackend:
    def test_none_infers_from_jobs(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(None, jobs=1), SerialBackend)
        pool = resolve_backend(None, jobs=3)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.jobs == 3

    def test_spec_strings(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process", jobs=2), ProcessPoolBackend)
        sock = resolve_backend("socket", jobs=2)
        assert isinstance(sock, SocketBackend)
        assert sock.spawn_workers == 2

    def test_explicitly_parallel_specs_default_to_cpu_count(self):
        """--backend process/socket without --jobs must not run serial."""
        import os

        cpus = os.cpu_count() or 1
        assert resolve_backend("process").jobs == cpus
        assert resolve_backend("socket").spawn_workers == max(1, cpus)
        assert resolve_backend("socket://127.0.0.1:7071").spawn_workers == cpus

    def test_socket_url_binds_host(self):
        backend = resolve_backend("socket://0.0.0.0:7071", jobs=0)
        assert (backend.bind_host, backend.bind_port) == ("0.0.0.0", 7071)
        assert backend.spawn_workers == 0  # remote-only server

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("carrier-pigeon")

    def test_worker_hint_drives_chunking(self):
        assert SerialBackend().worker_hint() == 1
        assert ProcessPoolBackend(jobs=3).worker_hint() == 3
        # Loopback spawn-only pools have an exactly-known size.
        assert SocketBackend(spawn_workers=8).worker_hint() == 8
        assert SocketBackend(spawn_workers=2).worker_hint() == 2
        # Remote-capable servers can't know the fleet size; the estimate
        # must exceed typical error-count block counts or chunking would
        # never split blocks and larger fleets would starve.
        assert SocketBackend(spawn_workers=0).worker_hint() > 4
        assert SocketBackend(bind="0.0.0.0:7071", spawn_workers=2).worker_hint() > 4

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestBackendContract:
    """Each backend maps a plain function over items in order."""

    @pytest.mark.parametrize(
        "backend",
        [
            SerialBackend(),
            ProcessPoolBackend(jobs=2),
            SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT),
        ],
        ids=["serial", "process", "socket"],
    )
    def test_map_preserves_order(self, backend):
        values = list(range(7))
        assert backend.map(_identity, values, chunksize=2) == [v * 2 for v in values]

    def test_empty_shards(self):
        assert SerialBackend().map(_identity, []) == []
        assert SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT).map(_identity, []) == []

    @pytest.mark.parametrize(
        "backend",
        [
            SerialBackend(),
            ProcessPoolBackend(jobs=2),
            SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT),
        ],
        ids=["serial", "process", "socket"],
    )
    def test_imap_unordered_covers_every_shard_with_right_indices(self, backend):
        """Completion order is free; the (index, result) pairing is not."""
        values = list(range(7))
        pairs = list(backend.imap_unordered(_identity, values, chunksize=2))
        assert sorted(pairs) == [(i, v * 2) for i, v in enumerate(values)]

    def test_socket_error_propagates(self):
        backend = SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT)
        with pytest.raises(RuntimeError, match="cannot process"):
            backend.map(_boom, [1, 2])

    def test_worker_death_mid_chunk_requeues_to_survivor(self, tmp_path):
        """The module docstring's promise: a worker that dies mid-chunk
        has that chunk requeued for the surviving workers."""
        import os

        marker = str(tmp_path / "killed-once")
        items = [("plain", 1), ("kill-once", marker), ("plain", 2)]
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        results = backend.map(_die_once_then_succeed, items, chunksize=1)
        assert results == [("ok", 1), ("survived", marker), ("ok", 2)]
        assert os.path.exists(marker)  # the first attempt really died


def _sleepy(value):
    time.sleep(0.2)
    return value * 2


def _wait_for_address(backend, deadline=30.0):
    """Spin until the backend's listener is live; return (host, port)."""
    end = time.monotonic() + deadline
    while backend.address is None:
        if time.monotonic() > end:  # pragma: no cover - debugging aid
            raise AssertionError("backend never bound its listener")
        time.sleep(0.005)
    return backend.address


class TestAuthToken:
    """The join handshake's shared secret."""

    def test_wrong_token_rejected_and_right_token_serves(self):
        backend = SocketBackend(
            spawn_workers=0, auth_token="s3cret", timeout=SOCKET_TIMEOUT
        )
        rejection = {}

        def bad_worker():
            host, port = _wait_for_address(backend)
            try:
                run_worker(f"{host}:{port}", auth_token="wrong")
            except WorkerRejectedError as error:
                rejection["reason"] = str(error)

        def good_worker():
            host, port = _wait_for_address(backend)
            run_worker(f"{host}:{port}", auth_token="s3cret")

        threading.Thread(target=bad_worker, daemon=True).start()
        threading.Thread(target=good_worker, daemon=True).start()
        assert backend.map(_identity, [1, 2, 3], chunksize=1) == [2, 4, 6]
        assert "auth token" in rejection.get("reason", "auth token")

    def test_missing_token_rejected(self):
        backend = SocketBackend(
            spawn_workers=0, auth_token="s3cret", timeout=SOCKET_TIMEOUT
        )
        outcome = {}

        def tokenless_then_good():
            host, port = _wait_for_address(backend)
            try:
                run_worker(f"{host}:{port}")  # no token at all
            except WorkerRejectedError:
                outcome["rejected"] = True
            run_worker(f"{host}:{port}", auth_token="s3cret")

        threading.Thread(target=tokenless_then_good, daemon=True).start()
        assert backend.map(_identity, [5], chunksize=1) == [10]
        assert outcome == {"rejected": True}

    def test_spawned_workers_inherit_token_via_env(self, monkeypatch):
        """Self-spawned workers receive the secret through the environment,
        never the command line."""
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        backend = SocketBackend(
            spawn_workers=1, auth_token="fleet-secret", timeout=SOCKET_TIMEOUT
        )
        assert backend.map(_identity, [1, 2], chunksize=1) == [2, 4]

    def test_tokenless_server_accepts_tokened_worker(self):
        backend = SocketBackend(spawn_workers=0, timeout=SOCKET_TIMEOUT)

        def worker():
            host, port = _wait_for_address(backend)
            run_worker(f"{host}:{port}", auth_token="anything")

        threading.Thread(target=worker, daemon=True).start()
        assert backend.map(_identity, [7], chunksize=1) == [14]


class TestHeartbeats:
    """Dead-worker detection and chunk requeue via heartbeat deadlines."""

    def test_silent_worker_times_out_and_chunk_requeues(self):
        """A worker that takes a task and goes silent (hard kill, network
        partition) must have its chunk requeued for the survivors."""
        backend = SocketBackend(
            spawn_workers=1,
            workers_expected=2,
            heartbeat_timeout=1.0,
            timeout=SOCKET_TIMEOUT,
        )
        hung = threading.Event()

        def silent_worker():
            host, port = _wait_for_address(backend)
            with socket.create_connection((host, port)) as sock:
                _send_msg(sock, ("hello", 0, None))
                while True:
                    message = _recv_msg(sock)
                    if message is None:
                        return
                    if message[0] == "task":
                        hung.set()
                        # Take the chunk, never reply, never heartbeat:
                        # exactly what a hard-killed worker looks like.
                        time.sleep(SOCKET_TIMEOUT)
                        return

        threading.Thread(target=silent_worker, daemon=True).start()
        results = backend.map(_sleepy, list(range(4)), chunksize=1)
        assert results == [v * 2 for v in range(4)]
        assert hung.is_set()  # the silent worker really owned a chunk

    def test_heartbeats_keep_slow_chunks_alive(self):
        """A chunk slower than the deadline must NOT be requeued while its
        worker heartbeats: the deadline detects death, not slowness."""
        backend = SocketBackend(
            spawn_workers=1, heartbeat_timeout=0.4, timeout=SOCKET_TIMEOUT
        )
        # 0.2s per item, chunksize 4 -> ~0.8s per chunk, twice the
        # deadline; heartbeats at deadline/4 keep the connection warm.
        assert backend.map(_sleepy, list(range(4)), chunksize=4) == [
            v * 2 for v in range(4)
        ]


def _exit_on_poison(item):
    """Worker function that hard-kills its process on the poison item."""
    import os

    if item == "poison":
        os._exit(1)
    return item


class TestRetryBudget:
    """Poison chunks are quarantined instead of crash-looping the fleet."""

    def test_poison_chunk_exhausts_budget_and_aborts(self):
        backend = SocketBackend(
            spawn_workers=3, max_chunk_retries=1, timeout=SOCKET_TIMEOUT
        )
        with pytest.raises(RuntimeError, match="retry budget|poison"):
            backend.map(_exit_on_poison, ["ok", "poison", "fine"], chunksize=1)

    def test_zero_budget_aborts_on_first_loss(self):
        backend = SocketBackend(
            spawn_workers=2, max_chunk_retries=0, timeout=SOCKET_TIMEOUT
        )
        with pytest.raises(RuntimeError, match="retry budget|poison"):
            backend.map(_exit_on_poison, ["ok", "poison"], chunksize=1)

    def test_budget_still_allows_single_recovery(self, tmp_path):
        """The PR 3 die-once scenario stays within the default budget."""
        marker = str(tmp_path / "killed-once")
        items = [("plain", 1), ("kill-once", marker), ("plain", 2)]
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        results = backend.map(_die_once_then_succeed, items, chunksize=1)
        assert results == [("ok", 1), ("survived", marker), ("ok", 2)]


class TestStartBarrier:
    """--workers-expected holds dispatch until the fleet is up."""

    def test_map_waits_for_expected_fleet(self):
        backend = SocketBackend(
            spawn_workers=0, workers_expected=2, timeout=SOCKET_TIMEOUT
        )

        def late_fleet():
            host, port = _wait_for_address(backend)
            threading.Thread(
                target=run_worker, args=(f"{host}:{port}",), daemon=True
            ).start()
            # Second worker joins noticeably later; the barrier must have
            # held everything rather than dispatched to worker one alone.
            time.sleep(0.5)
            run_worker(f"{host}:{port}")

        threading.Thread(target=late_fleet, daemon=True).start()
        assert backend.map(_identity, list(range(6)), chunksize=1) == [
            v * 2 for v in range(6)
        ]

    def test_unmet_barrier_times_out_with_fleet_count(self):
        backend = SocketBackend(
            spawn_workers=1, workers_expected=3, timeout=3.0
        )
        with pytest.raises(TimeoutError, match="1 of 3 expected"):
            backend.map(_identity, [1, 2], chunksize=1)


class TestSweepBitIdentity:
    """Acceptance: serial, process-pool, and socket sweeps are bit-identical."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(CONFIG)

    @pytest.mark.parametrize("spec", ["serial", "process"], ids=["serial", "process"])
    def test_local_backends_match(self, serial, spec):
        result = run_sweep(CONFIG, jobs=2, backend=spec)
        assert result.cells.keys() == serial.cells.keys()
        for key in serial.cells:
            assert result.cells[key].words == serial.cells[key].words, key

    def test_socket_end_to_end_matches_serial(self, serial):
        """Spawn 2 local workers over the socket protocol (the CI smoke)."""
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        result = run_sweep(CONFIG, backend=backend)
        assert result.cells.keys() == serial.cells.keys()
        for key in serial.cells:
            assert result.cells[key].words == serial.cells[key].words, key

    def test_seeded_variants_match(self):
        """Property-style spot check across config variations."""
        from dataclasses import replace

        for variant in (
            replace(CONFIG, seed=7),
            replace(CONFIG, pattern="charged"),
        ):
            reference = run_sweep(variant)
            parallel = run_sweep(variant, jobs=2)
            for key in reference.cells:
                assert parallel.cells[key].words == reference.cells[key].words, key


class TestFig10OverSocket:
    def test_case_study_matches_serial(self):
        config = CaseStudyConfig(
            num_codes=2,
            words_per_stratum=2,
            num_rounds=32,
            probabilities=(0.5,),
            rbers=(1e-4,),
            max_at_risk=3,
            profilers=("Naive", "HARP-U"),
        )
        serial = fig10.run(config)
        remote = fig10.run(
            config, backend=SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        )
        assert remote.before == serial.before
        assert remote.after == serial.after
        assert remote.rounds_to_zero == serial.rounds_to_zero


class TestExternalWorker:
    """A worker process started by hand (the multi-machine path)."""

    def test_run_worker_joins_listening_server(self):
        backend = SocketBackend(spawn_workers=0, timeout=SOCKET_TIMEOUT)
        executed = {}

        def join_when_listening():
            while backend.address is None:
                pass
            host, port = backend.address
            executed["chunks"] = run_worker(f"{host}:{port}")

        worker = threading.Thread(target=join_when_listening, daemon=True)
        worker.start()
        results = backend.map(_identity, list(range(5)), chunksize=2)
        worker.join(timeout=SOCKET_TIMEOUT)
        assert results == [v * 2 for v in range(5)]
        assert executed["chunks"] == (3, True)  # 3 chunks, clean session

    def test_unreachable_server_reports_not_reached(self):
        executed, reached = run_worker("127.0.0.1:9", linger=0.0)
        assert executed == 0
        assert reached is False

    def test_silent_probe_connection_does_not_stall_the_map(self):
        """A port scan / health check that connects and says nothing must
        neither hang its handler forever nor starve the real workers."""
        backend = SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT)
        probes = []

        def probe_when_listening():
            while backend.address is None:
                pass
            probe = socket.create_connection(backend.address)
            probes.append(probe)  # connect, send nothing, hold open

        threading.Thread(target=probe_when_listening, daemon=True).start()
        assert backend.map(_identity, list(range(4)), chunksize=1) == [
            v * 2 for v in range(4)
        ]
        for probe in probes:
            probe.close()

    def test_lingering_worker_serves_consecutive_maps(self):
        """Multi-sweep exhibits drain workers per sweep; linger rejoins.

        One fixed port, two separate maps (as ext-patterns or headline
        would run), one external worker with a linger window: it must
        execute chunks of both.
        """
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = threading.Thread(
            target=run_worker,
            args=(f"127.0.0.1:{port}",),
            kwargs={"linger": SOCKET_TIMEOUT / 2},
            daemon=True,
        )
        worker.start()
        first = SocketBackend(
            bind=f"127.0.0.1:{port}", spawn_workers=0, timeout=SOCKET_TIMEOUT
        ).map(_identity, [1, 2], chunksize=1)
        second = SocketBackend(
            bind=f"127.0.0.1:{port}", spawn_workers=0, timeout=SOCKET_TIMEOUT
        ).map(_identity, [3, 4], chunksize=1)
        assert first == [2, 4]
        assert second == [6, 8]
