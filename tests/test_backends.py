"""Tests of the pluggable execution backends.

Covers the backend contract (results in shard order, bit-identical
across serial / process-pool / socket execution), the socket protocol's
length-prefixed framing, the worker loop, remote-error propagation, and
the backend spec strings the CLI forwards.
"""

import socket
import threading

import pytest

from repro.experiments import fig10
from repro.experiments.backends import (
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    _recv_msg,
    _send_msg,
    parse_address,
    resolve_backend,
    resolve_jobs,
    run_worker,
)
from repro.experiments.config import CaseStudyConfig, SweepConfig
from repro.experiments.runner import run_sweep

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=2,
    num_rounds=16,
    error_counts=(2, 3),
    probabilities=(0.5, 1.0),
    profilers=("Naive", "HARP-U"),
)

#: Worker spawns are slow; keep the socket-backed sweeps on one grid.
SOCKET_TIMEOUT = 120.0


def _identity(value):
    return value * 2


def _boom(value):
    raise ValueError(f"cannot process {value}")


def _die_once_then_succeed(item):
    """Hard-kills the first worker process that sees a ``kill-once`` item.

    The marker file distinguishes the first attempt (die mid-chunk, no
    reply frame) from the requeued retry on a surviving worker.
    """
    import os

    kind, payload = item
    if kind == "kill-once":
        if not os.path.exists(payload):
            open(payload, "w").close()
            os._exit(1)
        return ("survived", payload)
    return ("ok", payload)


class TestFraming:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        with left, right:
            message = ("task", 3, _identity, [1, 2, 3])
            _send_msg(left, message)
            received = _recv_msg(right)
        assert received[0] == "task"
        assert received[1] == 3
        assert received[2] is _identity
        assert received[3] == [1, 2, 3]

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        right.close()
        with left:
            assert _recv_msg(left) is None

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        with left:
            left.sendall(b"\x00\x00\x00")  # partial length header
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(ConnectionError):
                _recv_msg(right)
        right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.1:7071") == ("10.0.0.1", 7071)
        assert parse_address(":9") == ("127.0.0.1", 9)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:seven")


class TestResolveBackend:
    def test_none_infers_from_jobs(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(None, jobs=1), SerialBackend)
        pool = resolve_backend(None, jobs=3)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.jobs == 3

    def test_spec_strings(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process", jobs=2), ProcessPoolBackend)
        sock = resolve_backend("socket", jobs=2)
        assert isinstance(sock, SocketBackend)
        assert sock.spawn_workers == 2

    def test_explicitly_parallel_specs_default_to_cpu_count(self):
        """--backend process/socket without --jobs must not run serial."""
        import os

        cpus = os.cpu_count() or 1
        assert resolve_backend("process").jobs == cpus
        assert resolve_backend("socket").spawn_workers == max(1, cpus)
        assert resolve_backend("socket://127.0.0.1:7071").spawn_workers == cpus

    def test_socket_url_binds_host(self):
        backend = resolve_backend("socket://0.0.0.0:7071", jobs=0)
        assert (backend.bind_host, backend.bind_port) == ("0.0.0.0", 7071)
        assert backend.spawn_workers == 0  # remote-only server

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("carrier-pigeon")

    def test_worker_hint_drives_chunking(self):
        assert SerialBackend().worker_hint() == 1
        assert ProcessPoolBackend(jobs=3).worker_hint() == 3
        # Loopback spawn-only pools have an exactly-known size.
        assert SocketBackend(spawn_workers=8).worker_hint() == 8
        assert SocketBackend(spawn_workers=2).worker_hint() == 2
        # Remote-capable servers can't know the fleet size; the estimate
        # must exceed typical error-count block counts or chunking would
        # never split blocks and larger fleets would starve.
        assert SocketBackend(spawn_workers=0).worker_hint() > 4
        assert SocketBackend(bind="0.0.0.0:7071", spawn_workers=2).worker_hint() > 4

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestBackendContract:
    """Each backend maps a plain function over items in order."""

    @pytest.mark.parametrize(
        "backend",
        [
            SerialBackend(),
            ProcessPoolBackend(jobs=2),
            SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT),
        ],
        ids=["serial", "process", "socket"],
    )
    def test_map_preserves_order(self, backend):
        values = list(range(7))
        assert backend.map(_identity, values, chunksize=2) == [v * 2 for v in values]

    def test_empty_shards(self):
        assert SerialBackend().map(_identity, []) == []
        assert SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT).map(_identity, []) == []

    @pytest.mark.parametrize(
        "backend",
        [
            SerialBackend(),
            ProcessPoolBackend(jobs=2),
            SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT),
        ],
        ids=["serial", "process", "socket"],
    )
    def test_imap_unordered_covers_every_shard_with_right_indices(self, backend):
        """Completion order is free; the (index, result) pairing is not."""
        values = list(range(7))
        pairs = list(backend.imap_unordered(_identity, values, chunksize=2))
        assert sorted(pairs) == [(i, v * 2) for i, v in enumerate(values)]

    def test_socket_error_propagates(self):
        backend = SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT)
        with pytest.raises(RuntimeError, match="cannot process"):
            backend.map(_boom, [1, 2])

    def test_worker_death_mid_chunk_requeues_to_survivor(self, tmp_path):
        """The module docstring's promise: a worker that dies mid-chunk
        has that chunk requeued for the surviving workers."""
        import os

        marker = str(tmp_path / "killed-once")
        items = [("plain", 1), ("kill-once", marker), ("plain", 2)]
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        results = backend.map(_die_once_then_succeed, items, chunksize=1)
        assert results == [("ok", 1), ("survived", marker), ("ok", 2)]
        assert os.path.exists(marker)  # the first attempt really died


class TestSweepBitIdentity:
    """Acceptance: serial, process-pool, and socket sweeps are bit-identical."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(CONFIG)

    @pytest.mark.parametrize("spec", ["serial", "process"], ids=["serial", "process"])
    def test_local_backends_match(self, serial, spec):
        result = run_sweep(CONFIG, jobs=2, backend=spec)
        assert result.cells.keys() == serial.cells.keys()
        for key in serial.cells:
            assert result.cells[key].words == serial.cells[key].words, key

    def test_socket_end_to_end_matches_serial(self, serial):
        """Spawn 2 local workers over the socket protocol (the CI smoke)."""
        backend = SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        result = run_sweep(CONFIG, backend=backend)
        assert result.cells.keys() == serial.cells.keys()
        for key in serial.cells:
            assert result.cells[key].words == serial.cells[key].words, key

    def test_seeded_variants_match(self):
        """Property-style spot check across config variations."""
        from dataclasses import replace

        for variant in (
            replace(CONFIG, seed=7),
            replace(CONFIG, pattern="charged"),
        ):
            reference = run_sweep(variant)
            parallel = run_sweep(variant, jobs=2)
            for key in reference.cells:
                assert parallel.cells[key].words == reference.cells[key].words, key


class TestFig10OverSocket:
    def test_case_study_matches_serial(self):
        config = CaseStudyConfig(
            num_codes=2,
            words_per_stratum=2,
            num_rounds=32,
            probabilities=(0.5,),
            rbers=(1e-4,),
            max_at_risk=3,
            profilers=("Naive", "HARP-U"),
        )
        serial = fig10.run(config)
        remote = fig10.run(
            config, backend=SocketBackend(spawn_workers=2, timeout=SOCKET_TIMEOUT)
        )
        assert remote.before == serial.before
        assert remote.after == serial.after
        assert remote.rounds_to_zero == serial.rounds_to_zero


class TestExternalWorker:
    """A worker process started by hand (the multi-machine path)."""

    def test_run_worker_joins_listening_server(self):
        backend = SocketBackend(spawn_workers=0, timeout=SOCKET_TIMEOUT)
        executed = {}

        def join_when_listening():
            while backend.address is None:
                pass
            host, port = backend.address
            executed["chunks"] = run_worker(f"{host}:{port}")

        worker = threading.Thread(target=join_when_listening, daemon=True)
        worker.start()
        results = backend.map(_identity, list(range(5)), chunksize=2)
        worker.join(timeout=SOCKET_TIMEOUT)
        assert results == [v * 2 for v in range(5)]
        assert executed["chunks"] == (3, True)  # 3 chunks, clean session

    def test_unreachable_server_reports_not_reached(self):
        executed, reached = run_worker("127.0.0.1:9", linger=0.0)
        assert executed == 0
        assert reached is False

    def test_silent_probe_connection_does_not_stall_the_map(self):
        """A port scan / health check that connects and says nothing must
        neither hang its handler forever nor starve the real workers."""
        backend = SocketBackend(spawn_workers=1, timeout=SOCKET_TIMEOUT)
        probes = []

        def probe_when_listening():
            while backend.address is None:
                pass
            probe = socket.create_connection(backend.address)
            probes.append(probe)  # connect, send nothing, hold open

        threading.Thread(target=probe_when_listening, daemon=True).start()
        assert backend.map(_identity, list(range(4)), chunksize=1) == [
            v * 2 for v in range(4)
        ]
        for probe in probes:
            probe.close()

    def test_lingering_worker_serves_consecutive_maps(self):
        """Multi-sweep exhibits drain workers per sweep; linger rejoins.

        One fixed port, two separate maps (as ext-patterns or headline
        would run), one external worker with a linger window: it must
        execute chunks of both.
        """
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = threading.Thread(
            target=run_worker,
            args=(f"127.0.0.1:{port}",),
            kwargs={"linger": SOCKET_TIMEOUT / 2},
            daemon=True,
        )
        worker.start()
        first = SocketBackend(
            bind=f"127.0.0.1:{port}", spawn_workers=0, timeout=SOCKET_TIMEOUT
        ).map(_identity, [1, 2], chunksize=1)
        second = SocketBackend(
            bind=f"127.0.0.1:{port}", spawn_workers=0, timeout=SOCKET_TIMEOUT
        ).map(_identity, [3, 4], chunksize=1)
        assert first == [2, 4]
        assert second == [6, 8]
