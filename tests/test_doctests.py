"""Run the doctest examples embedded in module docstrings.

Keeps the documentation honest: every ``>>>`` example in the public API
must execute and produce the documented output.
"""

import doctest

import pytest

import repro.ecc.bch
import repro.ecc.hamming
import repro.ecc.gf2m
import repro.repair.wasted_storage
import repro.sat.cnf
import repro.utils.bits
import repro.utils.rng
import repro.utils.tables

MODULES = [
    repro.utils.bits,
    repro.utils.rng,
    repro.utils.tables,
    repro.repair.wasted_storage,
    repro.ecc.hamming,
    repro.ecc.gf2m,
    repro.ecc.bch,
    repro.sat.cnf,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
