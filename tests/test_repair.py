"""Unit tests for the repair layer: profile store, mechanisms, Fig 2 model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair.mechanisms import (
    REPAIR_GRANULARITY_SURVEY,
    BlockGranularityRepair,
    IdealBitRepair,
)
from repro.repair.profile_store import ErrorProfile
from repro.repair.wasted_storage import (
    expected_wasted_ratio,
    monte_carlo_wasted_ratio,
    wasted_ratio_curve,
)


class TestErrorProfile:
    def test_mark_and_query(self):
        profile = ErrorProfile()
        profile.mark(3, 17)
        assert profile.is_marked(3, 17)
        assert not profile.is_marked(3, 18)
        assert profile.bits_for(3) == {17}
        assert profile.bits_for(4) == frozenset()

    def test_mark_many_and_totals(self):
        profile = ErrorProfile()
        profile.mark_many(0, {1, 2, 3})
        profile.mark_many(5, {9})
        assert profile.total_bits == 4
        assert profile.words == [0, 5]

    def test_duplicate_marks_idempotent(self):
        profile = ErrorProfile()
        profile.mark(0, 1)
        profile.mark(0, 1)
        assert profile.total_bits == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ErrorProfile().mark(-1, 0)

    def test_json_roundtrip(self):
        profile = ErrorProfile()
        profile.mark_many(2, {7, 9})
        profile.mark(11, 0)
        restored = ErrorProfile.from_json(profile.to_json())
        assert restored.bits_for(2) == {7, 9}
        assert restored.bits_for(11) == {0}
        assert restored.total_bits == 3


class TestIdealBitRepair:
    def test_repairs_exactly_profiled_bits(self):
        profile = ErrorProfile()
        profile.mark(0, 4)
        repair = IdealBitRepair(profile)
        assert repair.is_repaired(0, 4)
        assert not repair.is_repaired(0, 5)
        assert repair.unrepaired_errors(0, {4, 5}) == {5}

    def test_stats_waste_nothing(self):
        profile = ErrorProfile()
        profile.mark_many(0, {1, 2, 3})
        stats = IdealBitRepair(profile).stats(bits_per_word=64)
        assert stats.wasted_bits == 0
        assert stats.repaired_bits == 3


class TestBlockRepair:
    def test_block_granularity_masks_whole_block(self):
        profile = ErrorProfile()
        profile.mark(0, 9)  # block 1 for granularity 8
        repair = BlockGranularityRepair(profile, granularity=8)
        assert repair.is_repaired(0, 8)
        assert repair.is_repaired(0, 15)
        assert not repair.is_repaired(0, 7)

    def test_stats_account_for_fragmentation(self):
        profile = ErrorProfile()
        profile.mark(0, 0)
        profile.mark(0, 1)  # same block
        profile.mark(0, 9)  # second block
        stats = BlockGranularityRepair(profile, granularity=8).stats(bits_per_word=64)
        assert stats.repaired_blocks == 2
        assert stats.repaired_bits == 16
        assert stats.wasted_bits == 13

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            BlockGranularityRepair(ErrorProfile(), granularity=0)

    def test_survey_has_bit_granularity_entry(self):
        assert 1 in REPAIR_GRANULARITY_SURVEY.values()


class TestWastedStorage:
    def test_bit_granularity_never_wastes(self):
        for rber in (1e-6, 1e-3, 0.1):
            assert expected_wasted_ratio(rber, 1) == 0.0

    def test_paper_worst_case_1024(self):
        """Paper: >99% waste at RBER 6.8e-3 with 1024-bit granularity."""
        assert expected_wasted_ratio(6.8e-3, 1024) > 0.99

    def test_waste_decreases_at_very_high_rber(self):
        """Once most bits are truly erroneous, less capacity is 'wasted'."""
        peak = expected_wasted_ratio(6.8e-3, 1024)
        high = expected_wasted_ratio(0.5, 1024)
        assert high < peak

    def test_monotone_in_granularity(self):
        rber = 1e-4
        curve = [expected_wasted_ratio(rber, g) for g in (1, 32, 64, 512, 1024)]
        assert curve == sorted(curve)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            expected_wasted_ratio(1.5, 8)
        with pytest.raises(ValueError):
            expected_wasted_ratio(0.5, 0)

    def test_curve_helper(self):
        curve = wasted_ratio_curve([1e-4, 1e-3], 32)
        assert len(curve) == 2
        assert curve[0] < curve[1]

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from([1e-3, 5e-3, 2e-2]),
        st.sampled_from([8, 32, 128]),
    )
    def test_monte_carlo_agrees_with_closed_form(self, rber, granularity):
        estimate = monte_carlo_wasted_ratio(
            rber, granularity, num_blocks=20000, rng=np.random.default_rng(0)
        )
        exact = expected_wasted_ratio(rber, granularity)
        assert abs(estimate - exact) < 0.02
