"""Unit and property tests for error-pattern decode semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.hamming import paper_example_code, random_sec_code
from repro.ecc.syndrome import (
    DecodeOutcomeKind,
    analyze_error_pattern,
    syndrome_of_pattern,
)


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(21))


class TestSyndromeOfPattern:
    def test_empty_pattern(self, code):
        assert syndrome_of_pattern(code, frozenset()) == 0

    def test_single_matches_column(self, code):
        for position in (0, 10, 70):
            assert syndrome_of_pattern(code, {position}) == code.column_int(position)

    def test_xor_composition(self, code):
        expected = code.column_int(2) ^ code.column_int(5) ^ code.column_int(68)
        assert syndrome_of_pattern(code, {2, 5, 68}) == expected


class TestAnalyzeErrorPattern:
    def test_no_error(self, code):
        outcome = analyze_error_pattern(code, frozenset())
        assert outcome.kind is DecodeOutcomeKind.NO_ERROR
        assert not outcome.post_errors

    def test_single_error_corrected(self, code):
        outcome = analyze_error_pattern(code, {7})
        assert outcome.kind is DecodeOutcomeKind.CORRECTED
        assert not outcome.post_errors
        assert outcome.flipped == {7}

    def test_out_of_range_rejected(self, code):
        with pytest.raises(IndexError):
            analyze_error_pattern(code, {code.n})

    def test_double_error_consequences(self, code):
        outcome = analyze_error_pattern(code, {3, 11})
        if outcome.kind is DecodeOutcomeKind.MISCORRECTED:
            # SEC flips exactly one extra position, disjoint from the pattern.
            assert len(outcome.flipped) == 1
            assert not (outcome.flipped & outcome.pre_correction)
            assert outcome.post_errors == outcome.pre_correction | outcome.flipped
        else:
            assert outcome.kind is DecodeOutcomeKind.DETECTED_UNCORRECTABLE
            assert outcome.post_errors == outcome.pre_correction

    def test_direct_indirect_partition(self, code):
        outcome = analyze_error_pattern(code, {3, 11})
        assert outcome.direct_errors | outcome.indirect_errors == outcome.data_errors
        assert not (outcome.direct_errors & outcome.indirect_errors)
        assert outcome.direct_errors <= outcome.pre_correction

    def test_undetected_pattern(self):
        """A pattern equal to a codeword support has zero syndrome."""
        code = paper_example_code()
        # Data bit 0's codeword: positions {0} + parity footprint {4, 5, 6}.
        pattern = frozenset({0, 4, 5, 6})
        outcome = analyze_error_pattern(code, pattern)
        assert outcome.kind is DecodeOutcomeKind.UNDETECTED
        assert outcome.post_errors == pattern

    @settings(max_examples=60)
    @given(st.data())
    def test_post_errors_are_symmetric_difference(self, data):
        code = random_sec_code(16, np.random.default_rng(5))
        size = data.draw(st.integers(min_value=0, max_value=4))
        pattern = frozenset(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=code.n - 1),
                    min_size=size,
                    max_size=size,
                    unique=True,
                )
            )
        )
        outcome = analyze_error_pattern(code, pattern)
        assert outcome.post_errors == pattern ^ outcome.flipped
        assert outcome.data_errors == {p for p in outcome.post_errors if p < code.k}

    @settings(max_examples=60)
    @given(st.data())
    def test_matches_real_decoder(self, data):
        """analyze_error_pattern must agree with actually decoding."""
        code = random_sec_code(16, np.random.default_rng(6))
        pattern = frozenset(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=code.n - 1),
                    max_size=4,
                    unique=True,
                )
            )
        )
        message = np.ones(code.k, dtype=np.uint8)
        corrupted = code.encode(message).copy()
        for position in pattern:
            corrupted[position] ^= 1
        decoded = code.decode(corrupted)
        observed_data_errors = frozenset(int(i) for i in np.flatnonzero(decoded.data != message))
        outcome = analyze_error_pattern(code, pattern)
        assert outcome.data_errors == observed_data_errors
