"""Unit tests for the profiler implementations."""

import numpy as np
import pytest

from repro.ecc.hamming import random_sec_code
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.base import ReadMode
from repro.profiling.beep import BeepProfiler
from repro.profiling.combined import HarpABeepProfiler
from repro.profiling.harp import HarpAProfiler, HarpUProfiler
from repro.profiling.naive import NaiveProfiler


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(81))


class TestReadModes:
    def test_naive_uses_normal_path(self, code):
        assert NaiveProfiler(code, 0).read_mode_for(0) == ReadMode.NORMAL

    def test_beep_uses_normal_path(self, code):
        assert BeepProfiler(code, 0).read_mode_for(5) == ReadMode.NORMAL

    def test_harp_uses_bypass(self, code):
        assert HarpUProfiler(code, 0).read_mode_for(0) == ReadMode.BYPASS
        assert HarpAProfiler(code, 0).read_mode_for(7) == ReadMode.BYPASS

    def test_combined_switches_paths(self, code):
        profiler = HarpABeepProfiler(code, 0, switch_round=4)
        assert profiler.read_mode_for(3) == ReadMode.BYPASS
        assert profiler.read_mode_for(4) == ReadMode.NORMAL


class TestObservationAccumulation:
    def test_identified_accumulates_monotonically(self, code):
        profiler = NaiveProfiler(code, 0)
        written = np.ones(code.k, dtype=np.uint8)
        profiler.observe(0, written, frozenset({3}))
        profiler.observe(1, written, frozenset({9}))
        profiler.observe(2, written, frozenset())
        assert profiler.identified == {3, 9}

    def test_harp_u_predicts_nothing(self, code):
        profiler = HarpUProfiler(code, 0)
        profiler.observe(0, np.ones(code.k, dtype=np.uint8), frozenset({3, 9}))
        assert profiler.identified_predicted == frozenset()
        assert profiler.identified == {3, 9}

    def test_harp_a_prediction_channel(self, code):
        from repro.analysis.atrisk import predict_indirect_from_direct

        profiler = HarpAProfiler(code, 0)
        profiler.observe(0, np.ones(code.k, dtype=np.uint8), frozenset({3, 9}))
        expected = predict_indirect_from_direct(code, {3, 9})
        assert profiler.identified_predicted == expected
        assert profiler.identified == frozenset({3, 9}) | expected

    def test_harp_a_prediction_refreshes_on_new_direct_bits(self, code):
        profiler = HarpAProfiler(code, 0)
        written = np.ones(code.k, dtype=np.uint8)
        profiler.observe(0, written, frozenset({3}))
        first = profiler.identified_predicted
        profiler.observe(1, written, frozenset({9, 20}))
        second = profiler.identified_predicted
        assert first == frozenset()  # one bit predicts nothing
        assert second != frozenset() or len(second) == 0  # refreshed (may be empty)
        assert profiler.identified_observed == {3, 9, 20}


class TestBeepCrafting:
    def test_random_pattern_before_first_anchor(self, code):
        profiler = BeepProfiler(code, seed=5)
        baseline = NaiveProfiler(code, seed=5)
        assert (
            profiler.pattern_for_round(0) == baseline.pattern_for_round(0)
        ).all()

    def test_crafted_pattern_charges_hypothesis_cells(self, code):
        profiler = BeepProfiler(code, seed=5)
        profiler.observe(0, np.ones(code.k, dtype=np.uint8), frozenset({12}))
        pattern = profiler.pattern_for_round(1)
        codeword = code.encode(pattern)
        # The anchor cell must be charged by every crafted pattern.
        assert codeword[12] == 1

    def test_crafted_patterns_cycle_hypotheses(self, code):
        profiler = BeepProfiler(code, seed=5)
        profiler.observe(0, np.ones(code.k, dtype=np.uint8), frozenset({12}))
        patterns = {profiler.pattern_for_round(r).tobytes() for r in range(1, 9)}
        assert len(patterns) > 1  # explores different hypotheses

    def test_hypotheses_deduplicated_per_target(self, code):
        profiler = BeepProfiler(code, seed=5)
        written = np.ones(code.k, dtype=np.uint8)
        profiler.observe(0, written, frozenset({12}))
        count = len(profiler._hypotheses)
        profiler.observe(1, written, frozenset({12}))
        assert len(profiler._hypotheses) == count


class TestCombined:
    def test_seeds_beep_with_harp_findings(self, code):
        profiler = HarpABeepProfiler(code, 0, switch_round=2)
        written = np.ones(code.k, dtype=np.uint8)
        profiler.observe(0, written, frozenset({4}))
        profiler.observe(1, written, frozenset({13}))
        profiler.pattern_for_round(2)  # triggers the hand-off
        assert {4, 13} <= profiler._beep.identified_observed

    def test_invalid_switch_round(self, code):
        with pytest.raises(ValueError):
            HarpABeepProfiler(code, 0, switch_round=0)

    def test_identified_merges_phases(self, code):
        profiler = HarpABeepProfiler(code, 0, switch_round=1)
        written = np.ones(code.k, dtype=np.uint8)
        profiler.observe(0, written, frozenset({4}))
        profiler.pattern_for_round(1)
        profiler.observe(1, written, frozenset({30}))
        assert {4, 30} <= profiler.identified


class TestRegistry:
    def test_all_profilers_constructible(self, code):
        for name, cls in PROFILER_REGISTRY.items():
            profiler = cls(code, seed=1)
            assert profiler.name == name
            assert profiler.pattern_for_round(0).shape == (code.k,)
