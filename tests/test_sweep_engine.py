"""Tests of the parallel, cache-aware sweep execution engine.

Covers the engine's three guarantees:

* **Determinism** — ``run_sweep(config, jobs=N)`` is bit-identical to the
  serial path for every cell (shards are pure functions of their content);
* **Hoisting** — ground truth is enumerated exactly once per
  (error count, word) across all probability levels (verified through the
  analysis-layer cache counters);
* **Memoization** — the process-local caches return results identical to
  the uncached functions, count hits/misses, and evict LRU-first.

Plus the satellite fixes: uniform profile-position validation in both
simulation engines and the vectorized batch probability matrix.
"""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth, predict_indirect_from_direct
from repro.analysis.memo import (
    Memo,
    cached_ground_truth,
    cached_predict_indirect,
    clear_analysis_caches,
    ground_truth_cache,
    indirect_prediction_cache,
)
from repro.ecc.hamming import random_sec_code
from repro.experiments.config import SweepConfig
from repro.experiments.reporting import timing_table
from repro.experiments.runner import (
    SweepShard,
    clear_engine_caches,
    run_shard,
    run_sweep,
    shard_grid,
)
from repro.memory.batch_engine import BatchInjectionEngine
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import WordArtifacts, simulate_word

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=2,
    num_rounds=16,
    error_counts=(2, 3),
    probabilities=(0.5, 1.0),
    profilers=("Naive", "HARP-U", "HARP-A"),
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_engine_caches()
    clear_analysis_caches()
    yield
    clear_engine_caches()
    clear_analysis_caches()


class TestParallelBitIdentity:
    def test_parallel_matches_serial(self):
        serial = run_sweep(CONFIG)
        parallel = run_sweep(CONFIG, jobs=2)
        assert serial.cells.keys() == parallel.cells.keys()
        for key in serial.cells:
            assert serial.cells[key].words == parallel.cells[key].words, key

    def test_parallel_result_keeps_grid_order(self):
        """Cells arrive in completion order but the result must present
        them in grid order, exactly like a serial run."""
        from repro.experiments.runner import shard_grid

        result = run_sweep(CONFIG, jobs=2)
        assert list(result.cells) == [shard.key for shard in shard_grid(CONFIG)]

    def test_jobs_zero_means_per_cpu(self):
        result = run_sweep(CONFIG, jobs=0)
        reference = run_sweep(CONFIG)
        for key in reference.cells:
            assert result.cells[key].words == reference.cells[key].words

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(CONFIG, jobs=-1)

    def test_shard_execution_is_order_independent(self):
        """A shard recomputed in isolation equals its cell from a full run."""
        full = run_sweep(CONFIG)
        shard = SweepShard(
            config=CONFIG, error_count=3, probability=1.0, profiler="HARP-A"
        )
        clear_engine_caches()
        clear_analysis_caches()
        cell, _elapsed = run_shard(shard)
        assert cell.words == full.cells[shard.key].words


class TestShardGrid:
    def test_covers_full_grid_error_count_major(self):
        shards = shard_grid(CONFIG)
        expected = [
            (e, p, name)
            for e in CONFIG.error_counts
            for p in CONFIG.probabilities
            for name in CONFIG.profilers
        ]
        assert [s.key for s in shards] == expected

    def test_shards_are_picklable(self):
        import pickle

        shards = shard_grid(CONFIG)
        assert pickle.loads(pickle.dumps(shards[0])) == shards[0]


class TestGroundTruthHoisting:
    def test_enumerated_exactly_once_per_error_count_and_word(self):
        """The exponential enumeration must not repeat per probability."""
        run_sweep(CONFIG)
        expected = len(CONFIG.error_counts) * CONFIG.num_codes * CONFIG.words_per_code
        assert ground_truth_cache.stats.misses == expected
        # Sampling is hoisted out of the probability loop entirely, so the
        # cache is not even *consulted* more than once per word.
        assert ground_truth_cache.stats.hits == 0

    def test_repeat_sweep_reuses_engine_cache(self):
        run_sweep(CONFIG)
        misses = ground_truth_cache.stats.misses
        run_sweep(CONFIG)
        assert ground_truth_cache.stats.misses == misses

    def test_words_shared_across_probabilities(self):
        """Every probability level sees identical sampled words."""
        sweep = run_sweep(CONFIG)
        for error_count in CONFIG.error_counts:
            reference = [
                w.direct_total
                for w in sweep.cell(error_count, CONFIG.probabilities[0], "Naive").words
            ]
            for probability in CONFIG.probabilities[1:]:
                totals = [
                    w.direct_total
                    for w in sweep.cell(error_count, probability, "Naive").words
                ]
                assert totals == reference


class TestTimings:
    def test_per_cell_timings_recorded(self):
        sweep = run_sweep(CONFIG)
        assert sweep.timings.keys() == sweep.cells.keys()
        assert all(seconds >= 0.0 for seconds in sweep.timings.values())
        assert sweep.total_cell_seconds() == pytest.approx(sum(sweep.timings.values()))

    def test_timing_table_renders(self):
        sweep = run_sweep(CONFIG)
        text = timing_table(sweep)
        assert "Sweep timings" in text
        assert "HARP-U" in text

    def test_timing_table_handles_missing_timings(self):
        sweep = run_sweep(CONFIG)
        sweep.timings = {}
        assert "not recorded" in timing_table(sweep)


class TestAnalysisMemo:
    def test_cached_ground_truth_matches_uncached(self):
        code = random_sec_code(16, np.random.default_rng(5))
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(6))
        cached = cached_ground_truth(code, profile.positions)
        direct = compute_ground_truth(code, profile.positions)
        assert cached.at_risk == direct.at_risk
        assert cached.realizable_outcomes == direct.realizable_outcomes
        assert cached.direct_at_risk == direct.direct_at_risk
        assert cached.post_correction_at_risk == direct.post_correction_at_risk

    def test_ground_truth_cache_hits(self):
        code = random_sec_code(16, np.random.default_rng(5))
        positions = (1, 5, 9)
        first = cached_ground_truth(code, positions)
        second = cached_ground_truth(code, positions)
        assert first is second
        assert ground_truth_cache.stats.hits == 1
        assert ground_truth_cache.stats.misses == 1

    def test_ground_truth_key_includes_code(self):
        rng = np.random.default_rng(7)
        code_a = random_sec_code(16, rng)
        code_b = random_sec_code(16, rng)
        positions = (0, 3)
        cached_ground_truth(code_a, positions)
        cached_ground_truth(code_b, positions)
        assert ground_truth_cache.stats.misses == 2

    def test_cached_predict_indirect_matches_uncached(self):
        code = random_sec_code(16, np.random.default_rng(8))
        direct = frozenset({1, 4, 7})
        assert cached_predict_indirect(code, direct) == predict_indirect_from_direct(
            code, direct
        )
        # Set spelling must not matter for the key.
        cached_predict_indirect(code, {7, 4, 1})
        assert indirect_prediction_cache.stats.hits == 1

    def test_cached_predict_indirect_rejects_non_data_bits(self):
        code = random_sec_code(16, np.random.default_rng(9))
        with pytest.raises(IndexError):
            cached_predict_indirect(code, {code.k})

    def test_memo_lru_eviction(self):
        memo = Memo(max_entries=2)
        memo.get("a", lambda: 1)
        memo.get("b", lambda: 2)
        memo.get("a", lambda: 1)  # refresh "a"; "b" is now LRU
        memo.get("c", lambda: 3)  # evicts "b"
        assert memo.get("a", lambda: -1) == 1
        assert memo.get("b", lambda: -2) == -2  # recomputed after eviction

    def test_memo_clear_resets_stats(self):
        memo = Memo()
        memo.get("a", lambda: 1)
        memo.get("a", lambda: 1)
        memo.clear()
        assert len(memo) == 0
        assert memo.stats.hits == 0 and memo.stats.misses == 0


def _reference_simulate(profiler, profile, num_rounds, word_seed):
    """Straight-line reference of the per-word loop (no fast paths).

    Pins the observable trace semantics: failures from the word-seed
    stream, pattern from the profiler round by round, and the cumulative
    sets re-read after every observe call.
    """
    from repro.profiling.base import ReadMode
    from repro.profiling.runner import post_correction_data_errors
    from repro.utils.rng import derive_rng

    code = profiler.code
    draws = derive_rng(word_seed, "failure-draws").random((num_rounds, profile.count))
    probabilities = np.asarray(profile.probabilities, dtype=float)
    positions = np.asarray(profile.positions, dtype=np.intp)
    identified, observed, failures = [], [], []
    for round_index in range(num_rounds):
        written = profiler.pattern_for_round(round_index)
        codeword = code.encode(written)
        failed_mask = codeword[positions].astype(bool) & (draws[round_index] < probabilities)
        failed = tuple(int(p) for p in positions[failed_mask])
        failures.append(failed)
        if profiler.read_mode_for(round_index) == ReadMode.BYPASS:
            mismatches = frozenset(p for p in failed if p < code.k)
        else:
            mismatches = post_correction_data_errors(code, failed)
        profiler.observe(round_index, written, mismatches)
        identified.append(profiler.identified)
        observed.append(profiler.identified_observed)
    return identified, observed, failures


class TestTraceSemantics:
    """simulate_word's fast paths must match the straight-line reference."""

    @pytest.mark.parametrize("profiler_name", sorted(PROFILER_REGISTRY))
    def test_matches_reference_loop(self, profiler_name):
        code = random_sec_code(32, np.random.default_rng(21))
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(22))
        profiler_cls = PROFILER_REGISTRY[profiler_name]
        fast = simulate_word(profiler_cls(code, seed=77), profile, 48, 77)
        identified, observed, failures = _reference_simulate(
            profiler_cls(code, seed=77), profile, 48, 77
        )
        assert fast.failures_per_round == failures
        assert fast.identified_per_round == identified
        assert fast.observed_per_round == observed


class TestWordArtifacts:
    """Precomputed inputs must never change simulation results."""

    @pytest.mark.parametrize("profiler_name", sorted(PROFILER_REGISTRY))
    def test_artifacts_are_bit_identical(self, profiler_name):
        from repro.experiments.runner import _artifacts_for, _words_for

        words = _words_for(CONFIG, 3)
        profiler_cls = PROFILER_REGISTRY[profiler_name]
        for ctx in words[:2]:
            profile = WordErrorProfile(ctx.positions, tuple(0.5 for _ in ctx.positions))
            plain = simulate_word(
                profiler_cls(ctx.code, seed=ctx.word_seed), profile, 16, ctx.word_seed
            )
            cached = simulate_word(
                profiler_cls(ctx.code, seed=ctx.word_seed),
                profile,
                16,
                ctx.word_seed,
                artifacts=_artifacts_for(ctx, CONFIG),
            )
            assert plain.identified_per_round == cached.identified_per_round
            assert plain.observed_per_round == cached.observed_per_round
            assert plain.failures_per_round == cached.failures_per_round

    def test_mismatched_draw_shape_rejected(self):
        code = random_sec_code(16, np.random.default_rng(3))
        profile = WordErrorProfile((2, 5), (0.5, 0.5))
        bad = WordArtifacts(draws=np.zeros((4, 1)))
        with pytest.raises(ValueError):
            simulate_word(
                PROFILER_REGISTRY["Naive"](code, seed=1), profile, 4, 1, artifacts=bad
            )


class TestUniformPositionValidation:
    """Both engines reject out-of-range positions with one message."""

    @pytest.fixture()
    def code(self):
        return random_sec_code(16, np.random.default_rng(11))

    def test_simulate_word_rejects_negative_positions(self, code):
        profile = WordErrorProfile((-1, 3), (0.5, 0.5))
        with pytest.raises(IndexError, match=r"out of codeword range \[0, "):
            simulate_word(PROFILER_REGISTRY["Naive"](code, seed=1), profile, 4, 1)

    def test_simulate_word_rejects_overlarge_positions(self, code):
        profile = WordErrorProfile((3, code.n), (0.5, 0.5))
        with pytest.raises(IndexError, match=r"out of codeword range \[0, "):
            simulate_word(PROFILER_REGISTRY["Naive"](code, seed=1), profile, 4, 1)

    def test_batch_engine_rejects_negative_positions(self, code):
        profile = WordErrorProfile((-2, 1), (1.0, 1.0))
        with pytest.raises(IndexError, match=r"out of codeword range \[0, "):
            BatchInjectionEngine(code, [profile])

    def test_batch_engine_rejects_overlarge_positions(self, code):
        profile = WordErrorProfile((1, code.n + 3), (1.0, 1.0))
        with pytest.raises(IndexError, match=r"out of codeword range \[0, "):
            BatchInjectionEngine(code, [profile])


class TestVectorizedProbabilityMatrix:
    def test_matches_profiles(self):
        code = random_sec_code(16, np.random.default_rng(12))
        profiles = [
            WordErrorProfile((0, 5, code.n - 1), (0.25, 0.5, 0.75)),
            WordErrorProfile((), ()),
            WordErrorProfile((2,), (1.0,)),
        ]
        engine = BatchInjectionEngine(code, profiles)
        expected = np.zeros((3, code.n))
        expected[0, 0], expected[0, 5], expected[0, code.n - 1] = 0.25, 0.5, 0.75
        expected[2, 2] = 1.0
        assert np.array_equal(engine._probability, expected)

    def test_all_empty_profiles(self):
        code = random_sec_code(16, np.random.default_rng(13))
        engine = BatchInjectionEngine(code, [WordErrorProfile((), ())] * 2)
        assert not engine._probability.any()


class TestVectorizedMetricsReduction:
    """Batched ``metrics_for_words`` is bit-identical to the per-word loop.

    The reference below is the single-word per-round reduction, pinned
    verbatim; every profiler's cell of traces must reduce to the exact
    same records through the batched numpy set-op path (the speedup is
    pinned in ``benchmarks/bench_engine.py``).
    """

    @staticmethod
    def _reference(run, ground_truth, num_rounds):
        from repro.analysis.atrisk import max_simultaneous_post_errors
        from repro.experiments.runner import WordMetrics

        direct = ground_truth.direct_at_risk
        indirect = ground_truth.indirect_at_risk
        post = ground_truth.post_correction_at_risk
        direct_identified, indirect_missed = [], []
        post_identified, capability = [], []
        first_direct = num_rounds
        previous = None
        previous_capability = 0
        for round_index, identified in enumerate(run.identified_per_round):
            if previous is None or identified != previous:
                missed = post - identified
                previous_capability = max_simultaneous_post_errors(ground_truth, missed)
                previous = identified
            direct_hits = len(identified & direct)
            direct_identified.append(direct_hits)
            indirect_missed.append(len(indirect - identified))
            post_identified.append(len(identified & post))
            capability.append(previous_capability)
            if direct_hits and first_direct == num_rounds:
                first_direct = round_index + 1
        return WordMetrics(
            direct_total=len(direct),
            direct_identified=tuple(direct_identified),
            indirect_total=len(indirect),
            indirect_missed=tuple(indirect_missed),
            post_total=len(post),
            post_identified=tuple(post_identified),
            capability=tuple(capability),
            first_direct_round=first_direct,
        )

    def _cell(self, profiler_name, num_words=6, num_rounds=24):
        from repro.experiments.runner import metrics_for_words

        rng = np.random.default_rng(29)
        code = random_sec_code(16, rng)
        runs, truths = [], []
        for trial in range(num_words):
            profile = sample_word_profile(code, 3, 0.5, rng)
            truths.append(cached_ground_truth(code, profile.positions))
            profiler = PROFILER_REGISTRY[profiler_name](code, seed=trial)
            runs.append(simulate_word(profiler, profile, num_rounds, word_seed=trial))
        return runs, truths, metrics_for_words(runs, truths, num_rounds)

    @pytest.mark.parametrize("profiler_name", sorted(PROFILER_REGISTRY))
    def test_matches_reference_loop(self, profiler_name):
        runs, truths, batched = self._cell(profiler_name)
        assert len(batched) == len(runs)
        for run, truth, metrics in zip(runs, truths, batched):
            assert metrics == self._reference(run, truth, 24)

    @pytest.mark.parametrize("profiler_name", sorted(PROFILER_REGISTRY))
    def test_matches_metrics_for_run(self, profiler_name):
        from repro.experiments.runner import metrics_for_run

        runs, truths, batched = self._cell(profiler_name)
        for run, truth, metrics in zip(runs, truths, batched):
            assert metrics == metrics_for_run(run, truth, 24)

    def test_python_ints_in_output(self):
        """JSON serialization requires plain ints, not numpy scalars."""
        import json

        _, _, batched = self._cell("HARP-U", num_words=2, num_rounds=8)
        for metrics in batched:
            json.dumps(
                [
                    list(metrics.direct_identified),
                    list(metrics.indirect_missed),
                    list(metrics.post_identified),
                    list(metrics.capability),
                    metrics.first_direct_round,
                ]
            )

    def test_shard_batching_is_invisible(self, monkeypatch):
        """run_shard reduces words in fixed-size groups (memory bound);
        a tiny forced batch size must not change any cell."""
        import repro.experiments.runner as runner_module
        from repro.experiments.runner import run_shard, shard_grid

        shard = shard_grid(CONFIG)[0]
        reference, _ = run_shard(shard)
        monkeypatch.setattr(runner_module, "_METRICS_BATCH", 3)
        batched, _ = run_shard(shard)
        assert batched.words == reference.words

    def test_empty_inputs(self):
        from repro.experiments.runner import metrics_for_words
        from repro.profiling.runner import WordRunResult

        assert metrics_for_words([], [], 4) == []
        rng = np.random.default_rng(37)
        code = random_sec_code(16, rng)
        profile = sample_word_profile(code, 2, 1.0, rng)
        truth = cached_ground_truth(code, profile.positions)
        empty = WordRunResult(
            identified_per_round=[], observed_per_round=[], failures_per_round=[]
        )
        real = simulate_word(PROFILER_REGISTRY["Naive"](code, seed=1), profile, 8, word_seed=1)
        batched = metrics_for_words([empty, real], [truth, truth], 8)
        assert batched[0].direct_identified == ()
        assert batched[0].first_direct_round == 8
        assert batched[1] == self._reference(real, truth, 8)
