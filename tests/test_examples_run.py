"""Smoke tests: every example script must run cleanly end to end.

Keeps `examples/` from rotting as the library evolves — each script is
executed in-process (via runpy) and key output markers are checked.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": "direct coverage",
    "profiler_comparison.py": "Headline",
    "data_retention_case_study.py": "escapes",
    "ecc_design_exploration.py": "miscorrection",
    "secondary_ecc_sizing.py": "required secondary ECC",
    "reactive_scrubbing.py": "scrubbing after HARP active phase",
    "reverse_engineer_then_profile.py": "predictions match the true code's: True",
}


def test_all_examples_are_covered():
    """Every script in examples/ must have a smoke test marker."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert EXPECTED_MARKERS[script] in output
    assert len(output.strip()) > 0
