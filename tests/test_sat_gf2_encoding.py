"""Cross-validation: SAT encoding vs GF(2) elimination (the Z3 substitution).

The paper decides charge-realizability with Z3; this repository decides it
with Gaussian elimination and keeps a CNF encoding as an independent oracle.
These property tests assert the two decision procedures agree on random
instances, which is the correctness argument for the substitution
(DESIGN.md §3).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.atrisk import is_charge_realizable, solve_charge_assignment
from repro.ecc.hamming import random_sec_code
from repro.sat.gf2_encoding import sat_charge_assignment, sat_is_charge_realizable


def make_instance(seed, k, num_ones, num_zeros):
    rng = np.random.default_rng(seed)
    code = random_sec_code(k, rng)
    positions = rng.choice(code.n, size=min(num_ones + num_zeros, code.n), replace=False)
    ones = frozenset(int(p) for p in positions[:num_ones])
    zeros = frozenset(int(p) for p in positions[num_ones:])
    return code, ones, zeros


instance = st.builds(
    make_instance,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.sampled_from([8, 16, 26]),
    num_ones=st.integers(min_value=0, max_value=5),
    num_zeros=st.integers(min_value=0, max_value=3),
)


class TestAgreement:
    @settings(max_examples=60, deadline=None)
    @given(instance)
    def test_decisions_agree(self, case):
        code, ones, zeros = case
        linear = is_charge_realizable(code, ones, zeros)
        sat = sat_is_charge_realizable(code, ones, zeros)
        assert linear == sat

    @settings(max_examples=40, deadline=None)
    @given(instance)
    def test_both_solutions_satisfy_constraints(self, case):
        code, ones, zeros = case
        for solver in (solve_charge_assignment, sat_charge_assignment):
            solution = solver(code, ones, zeros)
            if solution is None:
                continue
            codeword = code.encode(solution)
            for position in ones:
                assert codeword[position] == 1
            for position in zeros:
                assert codeword[position] == 0


class TestKnownCases:
    def test_data_only_constraints_always_feasible(self):
        code, _, _ = make_instance(0, 16, 0, 0)
        assert sat_is_charge_realizable(code, {0, 1, 2})
        assert is_charge_realizable(code, {0, 1, 2})

    def test_conflicting_position_infeasible(self):
        code, _, _ = make_instance(0, 16, 0, 0)
        assert not sat_is_charge_realizable(code, {3}, {3})
        assert not is_charge_realizable(code, {3}, {3})

    def test_parity_constraint_binds_data(self):
        code, _, _ = make_instance(1, 8, 0, 0)
        parity_position = code.k  # first parity bit
        solution = sat_charge_assignment(code, {parity_position})
        assert solution is not None
        assert code.encode(solution)[parity_position] == 1
