"""Tests for Fig 2, Table 2, Fig 4, Fig 10, and the headline stats."""

import pytest

from repro.experiments import fig2, fig4, fig10, headline, table2
from repro.experiments.config import CaseStudyConfig, SweepConfig
from repro.experiments.fig10 import binomial_weight
from repro.experiments.runner import run_sweep


class TestFig2:
    def test_run_shape(self):
        result = fig2.run(num_points=9)
        assert len(result.rbers) == 9
        assert set(result.series) == {1024, 512, 64, 32, 1}

    def test_bit_granularity_is_zero_everywhere(self):
        result = fig2.run(num_points=9)
        assert all(value == 0.0 for value in result.series[1])

    def test_paper_peak_claim(self):
        """>99% waste somewhere on the 1024-bit curve (paper: at 6.8e-3)."""
        result = fig2.run(num_points=60)
        _, peak = result.peak_waste(1024)
        assert peak > 0.99

    def test_render(self):
        assert "wasted storage" in fig2.render(fig2.run(num_points=9))


class TestTable2:
    def test_closed_form_columns(self):
        result = table2.run(num_words=4, seed=1)
        by_n = {row.pre_correction_at_risk: row for row in result.rows}
        assert by_n[8].worst_case_post_correction_at_risk == 255

    def test_empirical_bounded_by_worst_case(self):
        result = table2.run(num_words=6, seed=2)
        for row in result.rows:
            mean, largest = result.empirical[row.pre_correction_at_risk]
            assert largest <= row.worst_case_post_correction_at_risk
            assert mean <= largest

    def test_render(self):
        assert "Table 2" in table2.render(table2.run(num_words=3))


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(fig4.Fig4Config(num_codes=3, words_per_code=6, error_counts=(2, 3, 5)))

    def test_probabilities_bounded(self, result):
        for samples in result.samples.values():
            assert all(0.0 <= value <= 1.0 for value in samples)

    def test_post_correction_harder_to_identify(self, result):
        """Paper Fig 4: the post-correction medians sit well below the 0.5
        pre-correction probability and shift lower as errors increase."""
        median_2 = result.summary(2)["median"]
        median_5 = result.summary(5)["median"]
        assert median_2 < 0.5
        assert median_5 <= median_2

    def test_render(self, result):
        assert "Fig 4" in fig4.render(result)


class TestBinomialWeight:
    def test_sums_to_one(self):
        total = sum(binomial_weight(71, c, 0.01) for c in range(72))
        assert abs(total - 1.0) < 1e-9

    def test_zero_rate(self):
        assert binomial_weight(71, 0, 0.0) == 1.0
        assert binomial_weight(71, 3, 0.0) == 0.0

    def test_bounds(self):
        with pytest.raises(ValueError):
            binomial_weight(71, 1, 1.5)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        config = CaseStudyConfig(
            num_codes=2,
            words_per_stratum=3,
            num_rounds=64,
            probabilities=(0.5,),
            rbers=(1e-4, 1e-6),
            max_at_risk=4,
        )
        return fig10.run(config)

    def test_harp_after_reaches_zero(self, result):
        """HARP + SEC secondary: BER hits exactly zero within the run."""
        series = result.after[(0.5, 1e-4, "HARP-U")]
        assert series[-1] == 0.0

    def test_beep_after_stays_positive(self, result):
        """BEEP misses direct-risk bits, so escapes persist (paper §7.4)."""
        series = result.after[(0.5, 1e-4, "BEEP")]
        assert series[-1] > 0.0

    def test_ber_scales_with_rber(self, result):
        """Lower RBER -> fewer at-risk words -> proportionally lower BER."""
        high = result.before[(0.5, 1e-4, "Naive")][0]
        low = result.before[(0.5, 1e-6, "Naive")][0]
        assert low < high

    def test_before_curves_non_increasing(self, result):
        for series in result.before.values():
            assert list(series) == sorted(series, reverse=True)

    def test_harp_rounds_to_zero_not_slower_than_naive(self, result):
        harp = result.rounds_to_zero[(0.5, "HARP-U")]
        naive = result.rounds_to_zero[(0.5, "Naive")]
        assert harp is not None
        if naive is not None:
            assert harp <= naive

    def test_render(self, result):
        text = fig10.render(result)
        assert "before secondary ECC" in text
        assert "after secondary ECC" in text


class TestHeadline:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep(
            SweepConfig(
                num_codes=3,
                words_per_code=5,
                num_rounds=64,
                error_counts=(2, 3),
                probabilities=(0.5,),
            )
        )

    def test_active_speedups_favor_harp(self, sweep):
        speedups = headline.active_speedups(sweep)
        for speedup in speedups:
            if speedup.fraction is not None:
                assert speedup.fraction <= 1.0

    def test_render_includes_paper_reference(self, sweep):
        text = headline.render(active=headline.active_speedups(sweep))
        assert "20.6%" in text or "Headline" in text
