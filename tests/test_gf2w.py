"""Property tests: the packed tier is bit-identical to the unpacked tier.

Every ``gf2w`` op must agree with its ``gf2`` reference on arbitrary
matrices — rectangular, rank-deficient, and wider than one 64-bit word —
because the facade dispatches between the tiers freely and the repo's
exhibits must not depend on which tier ran.  The strategies here bias
toward low-rank inputs (sparse entries, duplicated rows) and straddle
the 64-column word boundary on purpose.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import gf2, gf2w


def _reference_row_reduce(matrix):
    """The unpacked reference, independent of facade dispatch."""
    return gf2._row_reduce_unpacked(gf2._validated(matrix, 2))


def random_matrix(rows, cols, seed, density):
    rng = np.random.default_rng(seed)
    matrix = (rng.random((rows, cols)) < density).astype(np.uint8)
    # Duplicate a row now and then so rank-deficient systems are common.
    if rows >= 2 and rng.random() < 0.5:
        matrix[int(rng.integers(rows))] = matrix[int(rng.integers(rows))]
    return matrix


# Row/column ranges deliberately cross the 64-column word boundary.
matrix_strategy = st.builds(
    random_matrix,
    rows=st.integers(min_value=1, max_value=40),
    cols=st.integers(min_value=1, max_value=150),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    density=st.sampled_from([0.1, 0.3, 0.5, 0.9]),
)


class TestPackRoundTrip:
    @settings(max_examples=60)
    @given(matrix_strategy)
    def test_pack_unpack_round_trip(self, matrix):
        packed = gf2w.pack_rows(matrix)
        assert packed.dtype == np.uint64
        assert packed.shape == (matrix.shape[0], gf2w.words_for(matrix.shape[1]))
        assert np.array_equal(gf2w.unpack_rows(packed, matrix.shape[1]), matrix)

    def test_vector_round_trip(self):
        rng = np.random.default_rng(5)
        for cols in (1, 63, 64, 65, 128, 130):
            vector = rng.integers(0, 2, size=cols, dtype=np.uint8)
            assert np.array_equal(
                gf2w.unpack_vector(gf2w.pack_vector(vector), cols), vector
            )

    def test_pack_matches_int_packing(self):
        matrix = random_matrix(6, 130, seed=9, density=0.5)
        ints = gf2._pack_rows(matrix)
        words = gf2w.pack_rows(matrix)
        for row_int, row_words in zip(ints, words):
            assert row_int == int.from_bytes(
                np.ascontiguousarray(row_words, dtype=np.dtype("<u8")).tobytes(),
                "little",
            )


class TestEliminationEquivalence:
    @settings(max_examples=80)
    @given(matrix_strategy)
    def test_row_reduce_identical(self, matrix):
        ref_rref, ref_pivots = _reference_row_reduce(matrix)
        packed_rref, packed_pivots = gf2w.row_reduce(matrix)
        assert packed_pivots == ref_pivots
        assert np.array_equal(packed_rref, ref_rref)

    @settings(max_examples=60)
    @given(matrix_strategy)
    def test_rank_identical(self, matrix):
        assert gf2w.rank(matrix) == len(_reference_row_reduce(matrix)[1])

    @settings(max_examples=60)
    @given(matrix_strategy, st.integers(min_value=0, max_value=2**32 - 1))
    def test_solve_identical(self, matrix, seed):
        rng = np.random.default_rng(seed)
        if rng.random() < 0.5:
            # Consistent by construction.
            x_true = rng.integers(0, 2, size=matrix.shape[1], dtype=np.uint8)
            b = gf2w.matvec(matrix, x_true)
        else:
            # Arbitrary right-hand side; often inconsistent.
            b = rng.integers(0, 2, size=matrix.shape[0], dtype=np.uint8)
        reduced, pivots, num_cols = gf2._reduced_augmented(matrix, b)
        if num_cols in pivots:
            reference = None
        else:
            reference = np.zeros(num_cols, dtype=np.uint8)
            for row_index, col in enumerate(pivots):
                reference[col] = reduced[row_index, num_cols]
        packed = gf2w.solve(matrix, b)
        if reference is None:
            assert packed is None
            assert not gf2w.is_consistent(matrix, b)
        else:
            assert packed is not None
            assert np.array_equal(packed, reference)
            assert gf2w.is_consistent(matrix, b)

    @settings(max_examples=50)
    @given(matrix_strategy)
    def test_nullspace_identical(self, matrix):
        reference = gf2.nullspace(matrix)
        packed = gf2w.nullspace(matrix)
        assert np.array_equal(packed, reference)

    def test_solve_many_matches_per_plane_solve(self):
        rng = np.random.default_rng(21)
        for trial in range(30):
            rows = int(rng.integers(1, 30))
            cols = int(rng.integers(1, 140))
            planes = int(rng.integers(1, 9))
            a = (rng.random((rows, cols)) < 0.4).astype(np.uint8)
            rhs = rng.integers(0, 2, size=(rows, planes), dtype=np.uint8)
            per_plane = [gf2w.solve(a, rhs[:, p]) for p in range(planes)]
            batched = gf2w.solve_many(a, rhs)
            if any(x is None for x in per_plane):
                assert batched is None
            else:
                assert batched is not None
                assert np.array_equal(batched, np.stack(per_plane))


class TestPackedProducts:
    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=140),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matmul_matches_int64_reference(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, size=(m, k), dtype=np.uint8)
        b = rng.integers(0, 2, size=(k, n), dtype=np.uint8)
        reference = (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)
        assert np.array_equal(gf2w.matmul(a, b), reference)

    @settings(max_examples=60)
    @given(matrix_strategy, st.integers(min_value=0, max_value=2**32 - 1))
    def test_matvec_matches_int64_reference(self, matrix, seed):
        rng = np.random.default_rng(seed)
        v = rng.integers(0, 2, size=matrix.shape[1], dtype=np.uint8)
        reference = (matrix.astype(np.int64) @ v.astype(np.int64) % 2).astype(np.uint8)
        assert np.array_equal(gf2w.matvec(matrix, v), reference)


class TestFacadeDispatch:
    def test_env_forces_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF2_TIER", "packed")
        assert gf2.active_tier(1) == "packed"
        monkeypatch.setenv("REPRO_GF2_TIER", "unpacked")
        assert gf2.active_tier(10**9) == "unpacked"
        monkeypatch.setenv("REPRO_GF2_TIER", "auto")
        assert gf2.active_tier(1) == "unpacked"
        assert gf2.active_tier(10**9) == "packed"

    def test_invalid_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GF2_TIER", "bogus")
        with pytest.raises(ValueError):
            gf2.active_tier(1)

    @pytest.mark.parametrize("tier", ["packed", "unpacked"])
    def test_facade_output_identical_under_both_tiers(self, monkeypatch, tier):
        matrix = random_matrix(24, 100, seed=33, density=0.3)
        rng = np.random.default_rng(34)
        b = rng.integers(0, 2, size=24, dtype=np.uint8)
        baseline_rref, baseline_pivots = gf2._row_reduce_unpacked(matrix)
        monkeypatch.setenv("REPRO_GF2_TIER", tier)
        rref, pivots = gf2.row_reduce(matrix)
        assert pivots == baseline_pivots
        assert np.array_equal(rref, baseline_rref)
        solved = gf2.solve(matrix, b)
        monkeypatch.setenv("REPRO_GF2_TIER", "unpacked")
        reference = gf2.solve(matrix, b)
        if reference is None:
            assert solved is None
        else:
            assert np.array_equal(solved, reference)


class TestValidationFastPaths:
    def test_is_bit_matrix_still_rejects_nonbinary(self):
        assert gf2.is_bit_matrix(np.array([[0, 1]], dtype=np.uint8))
        assert not gf2.is_bit_matrix(np.array([[2]], dtype=np.uint8))
        assert not gf2.is_bit_matrix(np.array([[0.5]]))
        assert gf2.is_bit_matrix(np.array([], dtype=np.uint8))
        assert gf2.is_bit_matrix(np.array([[True, False]]))

    def test_validated_returns_same_object_for_uint8(self):
        arr = np.zeros((3, 4), dtype=np.uint8)
        assert gf2._validated(arr, 2) is arr
        with pytest.raises(ValueError):
            gf2._validated(arr, 1)

    def test_validated_converts_other_dtypes(self):
        arr = np.zeros((3, 4), dtype=np.int64)
        out = gf2._validated(arr, 2)
        assert out.dtype == np.uint8


class TestPackedBasis:
    def test_matches_reference_gaussian_solution(self):
        rng = np.random.default_rng(77)
        for trial in range(25):
            cols = int(rng.integers(1, 150))
            rows = int(rng.integers(1, 40))
            basis = gf2w.PackedBasis(cols)
            a = (rng.random((rows, cols)) < 0.3).astype(np.uint8)
            x_true = rng.integers(0, 2, size=cols, dtype=np.uint8)
            b = gf2w.matvec(a, x_true)
            packed_rows = gf2w.pack_rows(a)
            for i in range(rows):
                basis.insert(packed_rows[i], int(b[i]))
            solution = basis.solution_words()
            assert solution is not None
            solved = gf2w.unpack_vector(solution, cols)
            assert np.array_equal(gf2w.matvec(a, solved), b)

    def test_infeasible_system_detected(self):
        basis = gf2w.PackedBasis(70)
        basis.insert_bit(65, 1)
        basis.insert_bit(65, 0)
        assert basis.infeasible
        assert basis.solution_words() is None
        assert basis.solution_int() is None

    def test_copy_is_independent(self):
        basis = gf2w.PackedBasis(130)
        basis.insert_bit(100, 1)
        fork = basis.copy()
        fork.insert_bit(3, 1)
        assert basis.count == 1
        assert fork.count == 2
        assert basis.solution_int() == 1 << 100
        assert fork.solution_int() == (1 << 100) | (1 << 3)
