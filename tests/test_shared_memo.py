"""Tests of the zero-copy shared cache tier.

Three layers are pinned here:

1. The block format round-trips: publishing entries and re-attaching in
   a simulated cold process yields the same values, with numpy payloads
   mapped as read-only zero-copy views and object payloads unpickling
   lazily on first lookup.
2. The memo layer consults the overlay on a local miss and accounts the
   resolution as a ``shared_hit`` (not a miss), so exactly-once-compute
   assertions elsewhere keep their meaning.
3. The engine contract: ``run_sweep(shared_cache=True)`` is bit-identical
   to the plain run, serial and pooled — the overlay stores exactly the
   values the caches would have computed.
"""

import pickle

import numpy as np
import pytest

from repro.analysis import shared_memo
from repro.analysis.memo import Memo, clear_analysis_caches
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep


@pytest.fixture(autouse=True)
def _clean_overlay():
    shared_memo.clear_shared_overlay()
    clear_analysis_caches()
    yield
    shared_memo.clear_shared_overlay()
    clear_analysis_caches()


def _publish_sample(install=True):
    arr = np.arange(24, dtype=np.uint64).reshape(4, 6)
    bits = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
    obj = {"nested": [1, 2, (3, 4)], "label": "ground-truth-ish"}
    entries = {
        ("arr", 1): ("array", arr),
        ("bits", "x"): ("array", bits),
        ("obj", 7): ("pickle", obj),
    }
    return shared_memo.publish_entries(entries, install=install), arr, bits, obj


class TestPublishAttachRoundTrip:
    def test_publisher_overlay_holds_originals(self):
        block, arr, bits, obj = _publish_sample()
        try:
            assert shared_memo.overlay_lookup(("arr", 1)) is arr
            assert shared_memo.overlay_lookup(("obj", 7)) is obj
            assert shared_memo.overlay_size() == 3
        finally:
            block.destroy()

    def test_cold_attach_round_trips_every_entry(self):
        block, arr, bits, obj = _publish_sample()
        try:
            # Simulate a spawn-started worker: no inherited overlay.
            shared_memo.clear_shared_overlay()
            assert shared_memo.overlay_lookup(("arr", 1)) is shared_memo.MISS
            shared_memo.attach_worker(block.name)
            assert np.array_equal(shared_memo.overlay_lookup(("arr", 1)), arr)
            assert np.array_equal(shared_memo.overlay_lookup(("bits", "x")), bits)
            assert shared_memo.overlay_lookup(("obj", 7)) == obj
        finally:
            shared_memo.clear_shared_overlay()
            block.destroy()

    def test_attached_arrays_are_readonly_zero_copy_views(self):
        block, arr, _, _ = _publish_sample()
        try:
            shared_memo.clear_shared_overlay()
            shared_memo.attach_worker(block.name)
            view = shared_memo.overlay_lookup(("arr", 1))
            assert view.dtype == arr.dtype and view.shape == arr.shape
            assert not view.flags.owndata  # view over the shared buffer
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 99
            del view  # views pin the mapping; release before closing it
        finally:
            shared_memo.clear_shared_overlay()
            block.destroy()

    def test_pickle_entries_materialize_lazily_once(self):
        block, _, _, obj = _publish_sample()
        try:
            shared_memo.clear_shared_overlay()
            shared_memo.attach_worker(block.name)
            first = shared_memo.overlay_lookup(("obj", 7))
            assert first == obj and first is not obj
            # Second lookup returns the cached materialization.
            assert shared_memo.overlay_lookup(("obj", 7)) is first
        finally:
            shared_memo.clear_shared_overlay()
            block.destroy()

    def test_fork_inherited_attach_is_a_noop(self):
        block, arr, _, _ = _publish_sample()
        try:
            # The publisher installed the originals and recorded the block
            # name; attaching to the same name must keep the originals.
            shared_memo.attach_worker(block.name)
            assert shared_memo.overlay_lookup(("arr", 1)) is arr
        finally:
            block.destroy()

    def test_destroy_is_idempotent_and_blocks_new_attaches(self):
        block, _, _, _ = _publish_sample()
        shared_memo.clear_shared_overlay()
        block.destroy()
        block.destroy()
        with pytest.raises(FileNotFoundError):
            shared_memo.attach_worker(block.name)

    def test_alignment_of_array_payloads(self):
        # A leading odd-length pickle must not misalign the uint64 view.
        entries = {
            "odd": ("pickle", b"x" * 13),
            "words": ("array", np.arange(8, dtype=np.uint64)),
        }
        block = shared_memo.publish_entries(entries, install=False)
        try:
            shared_memo.attach_worker(block.name)
            view = shared_memo.overlay_lookup("words")
            assert np.array_equal(view, np.arange(8, dtype=np.uint64))
            assert pickle.loads(pickle.dumps(shared_memo.overlay_lookup("odd")))
            del view  # views pin the mapping; release before closing it
        finally:
            shared_memo.clear_shared_overlay()
            block.destroy()


class TestMemoOverlayIntegration:
    def test_local_miss_resolves_from_overlay_as_shared_hit(self):
        shared_memo.overlay_install({("k", 1): "shared-value"})
        memo = Memo(max_entries=4)
        calls = []
        value = memo.get(("k", 1), lambda: calls.append(1) or "computed")
        assert value == "shared-value"
        assert calls == []
        assert memo.stats.shared_hits == 1
        assert memo.stats.misses == 0
        # Now resident locally: the next get is an ordinary hit.
        assert memo.get(("k", 1), lambda: "computed") == "shared-value"
        assert memo.stats.hits == 1

    def test_absent_key_still_computes_exactly_once(self):
        memo = Memo(max_entries=4)
        calls = []
        memo.get("absent", lambda: calls.append(1) or 42)
        memo.get("absent", lambda: calls.append(1) or 42)
        assert calls == [1]
        assert memo.stats.misses == 1 and memo.stats.hits == 1


class TestSweepBitIdentity:
    CONFIG = SweepConfig(
        num_codes=2,
        words_per_code=3,
        num_rounds=48,
        error_counts=(2,),
        probabilities=(0.5, 1.0),
    )

    def test_shared_cache_is_bit_identical_serial_and_pooled(self):
        plain = run_sweep(self.CONFIG)
        serial = run_sweep(self.CONFIG, shared_cache=True)
        pooled = run_sweep(self.CONFIG, jobs=2, shared_cache=True)
        assert serial.cells == plain.cells
        assert pooled.cells == plain.cells
        assert serial.quarantined == plain.quarantined == pooled.quarantined

    def test_block_is_destroyed_after_the_sweep(self):
        run_sweep(self.CONFIG, shared_cache=True)
        # The overlay may stay warm in-process, but the block itself is
        # unlinked: publishing again must mint a fresh block.
        block = shared_memo.publish_sweep_artifacts(self.CONFIG)
        assert block.entries > 0
        block.destroy()

    def test_sweep_entries_match_engine_computations(self):
        entries = shared_memo.sweep_entries(self.CONFIG)
        kinds = {key[0] for key in entries}
        assert kinds == {"swords", "sched", "enc", "draws", "pairs", "bstack"}
        # The published batch stacks are exactly what the engine builds.
        from repro.experiments.runner import _build_batch_stacks

        for error_count in self.CONFIG.error_counts:
            stacks = _build_batch_stacks(self.CONFIG, error_count)
            for part in ("codewords", "draws", "positions"):
                kind, value = entries[("bstack", self.CONFIG, error_count, part)]
                assert kind == "array"
                np.testing.assert_array_equal(value, getattr(stacks, part))
