"""Unit tests for the degenerate/toy codes."""

import numpy as np
import pytest

from repro.ecc.simple import NoEccCode, repetition_extension_code, single_parity_code


class TestNoEccCode:
    def test_geometry(self):
        code = NoEccCode(8)
        assert (code.n, code.k, code.p, code.t) == (8, 8, 0, 0)

    def test_identity_transparency(self):
        code = NoEccCode(8)
        data = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        assert (code.encode(data) == data).all()
        assert (code.decode(data).data == data).all()

    def test_errors_pass_through(self):
        """Without on-die ECC, post-correction errors == pre-correction."""
        code = NoEccCode(8)
        data = np.zeros(8, dtype=np.uint8)
        corrupted = code.encode(data).copy()
        corrupted[3] ^= 1
        result = code.decode(corrupted)
        assert result.data[3] == 1
        assert not result.corrected


class TestSingleParityCode:
    def test_detects_single_error_without_correcting(self):
        code = single_parity_code(4)
        data = np.array([1, 1, 0, 0], dtype=np.uint8)
        corrupted = code.encode(data).copy()
        corrupted[0] ^= 1
        result = code.decode(corrupted)
        assert result.detected_uncorrectable
        assert (result.data == corrupted[:4]).all()

    def test_even_weight_parity(self):
        code = single_parity_code(4)
        codeword = code.encode(np.array([1, 0, 1, 0], dtype=np.uint8))
        assert codeword.sum() % 2 == 0


class TestRepetitionCode:
    def test_corrects_one_error(self):
        code = repetition_extension_code(3)
        codeword = code.encode(np.array([1], dtype=np.uint8))
        assert codeword.tolist() == [1, 1, 1]
        corrupted = codeword.copy()
        corrupted[2] ^= 1
        assert code.decode(corrupted).data.tolist() == [1]

    def test_rejects_two_copies(self):
        with pytest.raises(ValueError):
            repetition_extension_code(2)
