"""End-to-end integration tests of the Fig 5 system model.

Chip + active profiler + ideal bit repair + secondary ECC, exercised
through the object-level read/write paths (not the fast analytic path),
verifying the paper's end-to-end claim: HARP's active phase plus a SEC
secondary ECC eliminates all escapes, while skipping active profiling
leaves multi-bit escapes.
"""

import numpy as np
import pytest

from repro.controller.secondary_ecc import SecondaryEcc
from repro.controller.system import MemorySystem
from repro.ecc.hamming import random_sec_code
from repro.memory.chip import OnDieEccChip
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.profiling.harp import HarpUProfiler
from repro.profiling.naive import NaiveProfiler


def build_chip(seed: int, num_words: int = 6, at_risk: int = 4, probability: float = 0.75):
    rng = np.random.default_rng(seed)
    code = random_sec_code(64, rng)
    chip = OnDieEccChip(code, num_words=num_words, rng=rng)
    for word_index in range(num_words):
        chip.set_error_profile(
            word_index, sample_word_profile(code, at_risk, probability, rng)
        )
    return chip


class TestActiveProfiling:
    def test_harp_populates_profile(self):
        chip = build_chip(seed=1)
        system = MemorySystem(chip, HarpUProfiler, seed=1)
        report = system.run_active_profiling(num_rounds=48)
        assert report.words_profiled == chip.num_words
        assert report.bits_identified > 0
        assert system.profile.total_bits == report.bits_identified

    def test_harp_identifies_all_direct_risk_bits(self):
        """With p=0.75 and 48 rounds, every charged at-risk data bit fails
        at least once with overwhelming probability."""
        chip = build_chip(seed=2)
        system = MemorySystem(chip, HarpUProfiler, seed=2)
        system.run_active_profiling(num_rounds=48)
        for word_index in range(chip.num_words):
            direct = {
                p for p in chip.error_profile(word_index).positions if p < chip.code.k
            }
            assert direct <= set(system.profile.bits_for(word_index))


class TestOperation:
    def test_harp_system_never_escapes(self):
        """The paper's headline guarantee, end to end: after full active
        profiling, at most one (indirect) error reaches the secondary SEC
        at a time, so nothing escapes."""
        chip = build_chip(seed=3)
        system = MemorySystem(chip, HarpUProfiler, secondary=SecondaryEcc(1), seed=3)
        system.run_active_profiling(num_rounds=64)
        report = system.operate(reads_per_word=50)
        assert report.escaped_reads == 0
        assert report.escape_ber == 0.0

    def test_unprofiled_system_escapes(self):
        """Without active profiling, multi-bit patterns hit the SEC."""
        chip = build_chip(seed=4, probability=1.0)
        system = MemorySystem(chip, HarpUProfiler, secondary=SecondaryEcc(1), seed=4)
        report = system.operate(reads_per_word=20)
        assert report.escaped_reads > 0

    def test_reactive_profiling_identifies_indirect_bits(self):
        chip = build_chip(seed=5)
        system = MemorySystem(chip, HarpUProfiler, seed=5)
        system.run_active_profiling(num_rounds=64)
        before = system.profile.total_bits
        report = system.operate(reads_per_word=100)
        # Any reactive corrections must have been recorded in the profile.
        assert system.profile.total_bits == before + report.reactively_identified_bits

    def test_reactive_identification_is_permanent(self):
        """Once the secondary ECC identifies a bit, later reads of the same
        pattern are repaired (clean), not re-corrected."""
        chip = build_chip(seed=6, probability=1.0, at_risk=2)
        system = MemorySystem(chip, HarpUProfiler, seed=6)
        system.run_active_profiling(num_rounds=8)
        first = system.operate(reads_per_word=1)
        second = system.operate(reads_per_word=1)
        assert second.reactively_identified_bits <= first.reactively_identified_bits

    def test_operate_with_custom_data(self):
        chip = build_chip(seed=7)
        system = MemorySystem(chip, NaiveProfiler, seed=7)
        report = system.operate(reads_per_word=5, data=np.zeros(chip.code.k, dtype=np.uint8))
        # All-zero data on true cells holds no charge: nothing can fail.
        assert report.clean_reads == report.reads


class TestSingleWordScenario:
    def test_known_two_bit_word(self):
        """Deterministic scenario: two always-failing data bits."""
        rng = np.random.default_rng(8)
        code = random_sec_code(64, rng)
        chip = OnDieEccChip(code, num_words=1, rng=rng)
        chip.set_error_profile(0, WordErrorProfile((3, 9), (1.0, 1.0)))
        system = MemorySystem(chip, HarpUProfiler, seed=8)
        system.run_active_profiling(num_rounds=4)
        assert {3, 9} <= set(system.profile.bits_for(0))
        report = system.operate(reads_per_word=10)
        assert report.escaped_reads == 0
