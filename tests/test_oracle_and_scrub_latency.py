"""Tests for the oracle profiler and the scrubbing-latency extension."""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.hamming import random_sec_code
from repro.experiments import ext_scrubbing
from repro.experiments.runner import metrics_for_run
from repro.memory.error_model import sample_word_profile
from repro.profiling.harp import HarpUProfiler
from repro.profiling.oracle import OracleProfiler
from repro.profiling.runner import simulate_word


@pytest.fixture(scope="module")
def word():
    code = random_sec_code(64, np.random.default_rng(141))
    profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(1))
    truth = compute_ground_truth(code, profile)
    return code, profile, truth


class TestOracleProfiler:
    def test_requires_ground_truth(self, word):
        code, _, _ = word
        with pytest.raises(ValueError):
            OracleProfiler(code, seed=1)

    def test_identifies_everything_in_round_one(self, word):
        code, profile, truth = word
        oracle = OracleProfiler(code, seed=1, ground_truth=truth)
        result = simulate_word(oracle, profile, 4, word_seed=1)
        expected = truth.post_correction_at_risk | truth.direct_at_risk
        assert result.identified_per_round[0] == expected

    def test_oracle_metrics_are_perfect(self, word):
        code, profile, truth = word
        oracle = OracleProfiler(code, seed=1, ground_truth=truth)
        result = simulate_word(oracle, profile, 4, word_seed=1)
        metrics = metrics_for_run(result, truth, 4)
        assert metrics.capability[-1] == 0
        assert metrics.indirect_missed[-1] == 0
        assert metrics.direct_identified[-1] == metrics.direct_total

    def test_oracle_dominates_harp(self, word):
        """Upper bound sanity: the oracle is never behind HARP."""
        code, profile, truth = word
        oracle_run = simulate_word(
            OracleProfiler(code, 1, ground_truth=truth), profile, 16, word_seed=1
        )
        harp_run = simulate_word(HarpUProfiler(code, 1), profile, 16, word_seed=1)
        for oracle_set, harp_set in zip(
            oracle_run.identified_per_round, harp_run.identified_per_round
        ):
            assert harp_set & truth.direct_at_risk <= oracle_set


class TestScrubLatencyExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_scrubbing.run(
            probabilities=(0.75, 0.25),
            num_words=6,
            at_risk_per_word=4,
            max_passes=64,
            seed=4,
        )

    def test_no_escapes_after_harp_active_phase(self, result):
        """With direct bits repaired, SEC scrubbing never escapes."""
        for _, (_, _, escaped) in result.rows.items():
            assert escaped == 0

    def test_latency_grows_as_probability_drops(self, result):
        high_fraction, _, _ = result.rows[0.75]
        low_fraction, _, _ = result.rows[0.25]
        assert high_fraction >= low_fraction

    def test_fractions_valid(self, result):
        for fraction, _, _ in result.rows.values():
            assert 0.0 <= fraction <= 1.0

    def test_render(self, result):
        assert "Scrubbing-latency" in ext_scrubbing.render(result)
