"""Tests for the word-layout analysis and the scrubbing reactive profiler."""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.controller.layout import (
    SecondaryWord,
    aligned_layout,
    interleaved_layout,
    required_secondary_capability,
    split_layout,
    worst_case_concurrent_errors,
)
from repro.controller.scrubber import Scrubber
from repro.controller.secondary_ecc import SecondaryEcc
from repro.ecc.hamming import random_sec_code
from repro.memory.chip import OnDieEccChip
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.repair.profile_store import ErrorProfile


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(131))


@pytest.fixture(scope="module")
def word_truths(code):
    rng = np.random.default_rng(0)
    truths = {}
    missed_after_harp = {}
    for word_index in range(4):
        profile = sample_word_profile(code, 5, 0.5, rng)
        truth = compute_ground_truth(code, profile)
        truths[word_index] = truth
        missed_after_harp[word_index] = (
            truth.post_correction_at_risk - truth.direct_at_risk
        )
    return truths, missed_after_harp


class TestLayoutConstruction:
    def test_aligned_covers_everything_once(self, code):
        layout = aligned_layout(3, code.k)
        assert len(layout) == 3
        assert layout[0].total_bits == code.k

    def test_split_fragments_disjoint_and_complete(self, code):
        layout = split_layout(1, code.k, 2)
        assert len(layout) == 2
        union = set()
        for word in layout:
            union |= set(word.coverage[0])
        assert union == set(range(code.k))

    def test_interleaved_spans_multiple_words(self, code):
        layout = interleaved_layout(4, code.k, 2)
        assert len(layout) == 4
        assert set(layout[0].coverage) == {0, 1}

    def test_invalid_geometry_rejected(self, code):
        with pytest.raises(ValueError):
            split_layout(1, code.k, 3)  # 64 % 3 != 0
        with pytest.raises(ValueError):
            interleaved_layout(3, code.k, 2)  # 3 % 2 != 0
        with pytest.raises(ValueError):
            SecondaryWord(coverage={-1: frozenset({0})})

    def test_empty_layout_rejected(self, word_truths):
        truths, missed = word_truths
        with pytest.raises(ValueError):
            required_secondary_capability([], truths, missed)


class TestCapabilityRequirements:
    def test_aligned_bounded_by_on_die_capability(self, code, word_truths):
        """Paper §6.3: the paper's aligned assumption needs SEC only."""
        truths, missed = word_truths
        layout = aligned_layout(len(truths), code.k)
        assert required_secondary_capability(layout, truths, missed) <= 1

    def test_split_also_bounded(self, code, word_truths):
        truths, missed = word_truths
        layout = split_layout(len(truths), code.k, 2)
        assert required_secondary_capability(layout, truths, missed) <= 1

    def test_interleaving_scales_requirement(self, code, word_truths):
        """Interleaving w on-die words can require up to w x t capability."""
        truths, missed = word_truths
        layout = interleaved_layout(len(truths), code.k, 2)
        capability = required_secondary_capability(layout, truths, missed)
        assert capability <= 2
        aligned = required_secondary_capability(
            aligned_layout(len(truths), code.k), truths, missed
        )
        assert capability >= aligned

    def test_unprofiled_words_use_full_risk_set(self, code, word_truths):
        truths, _ = word_truths
        word = SecondaryWord(coverage={0: frozenset(range(code.k))})
        full = worst_case_concurrent_errors(word, truths, {})
        profiled = worst_case_concurrent_errors(
            word, truths, {0: frozenset()}
        )
        assert full >= profiled
        assert profiled == 0


class TestScrubber:
    def make_chip(self, code, profiles, seed=0):
        chip = OnDieEccChip(code, num_words=len(profiles), rng=np.random.default_rng(seed))
        for index, profile in enumerate(profiles):
            chip.set_error_profile(index, profile)
        return chip

    @staticmethod
    def find_miscorrecting_pair(code):
        """A pair of data positions whose co-failure miscorrects onto a
        third *data* position (needed so the event is controller-visible)."""
        from itertools import combinations

        from repro.ecc.syndrome import analyze_error_pattern

        for a, b in combinations(range(code.k), 2):
            outcome = analyze_error_pattern(code, frozenset({a, b}))
            if outcome.indirect_errors:
                target = next(iter(outcome.indirect_errors))
                return a, b, target
        raise AssertionError("code has no data-to-data miscorrecting pair")

    def test_single_at_risk_bit_is_invisible_to_scrubbing(self, code):
        """On-die ECC corrects lone failures internally, so reactive
        profiling can never see them — the paper's core obfuscation."""
        chip = self.make_chip(code, [WordErrorProfile((5,), (1.0,))])
        report = Scrubber(chip).run(num_passes=5)
        assert report.identified_bits == 0
        assert report.clean

    def test_scrubbing_identifies_miscorrection_target(self, code):
        """With the direct-risk bits already repaired (HARP active phase),
        the indirect error surfaces as a single correctable error and is
        identified on its first occurrence."""
        a, b, target = self.find_miscorrecting_pair(code)
        profile_store = ErrorProfile()
        profile_store.mark_many(0, {a, b})  # active phase found the pair
        chip = self.make_chip(code, [WordErrorProfile((a, b), (1.0, 1.0))])
        report = Scrubber(chip, profile=profile_store).run(num_passes=3)
        assert report.clean
        assert report.identification_pass[(0, target)] == 1
        assert profile_store.is_marked(0, target)

    def test_multi_bit_words_escape_sec_scrubbing(self, code):
        """Unprofiled multi-bit words are exactly what scrubbing alone
        cannot handle — the reason HARP's active phase must come first."""
        chip = self.make_chip(code, [WordErrorProfile((5, 9), (1.0, 1.0))])
        report = Scrubber(chip).run(num_passes=2)
        assert report.escaped_reads > 0

    def test_dec_secondary_handles_double_errors(self, code):
        chip = self.make_chip(code, [WordErrorProfile((5, 9), (1.0, 1.0))])
        report = Scrubber(chip, secondary=SecondaryEcc(2)).run(num_passes=2)
        assert report.clean
        assert report.identified_bits >= 2

    def test_low_probability_bits_take_more_passes(self, code):
        """Identification latency grows as per-bit probability shrinks —
        the paper's argument for why low-probability errors are left to
        long-running reactive profiling (§2.4).  The indirect error only
        surfaces when both direct bits co-fail (probability p^2)."""
        a, b, target = self.find_miscorrecting_pair(code)

        def passes_to_identify(probability, seed):
            store = ErrorProfile()
            store.mark_many(0, {a, b})
            chip = self.make_chip(
                code, [WordErrorProfile((a, b), (probability, probability))], seed=seed
            )
            report = Scrubber(chip, profile=store).run(num_passes=400)
            return report.identification_pass.get((0, target), 401)

        fast = passes_to_identify(0.9, seed=7)
        slow = passes_to_identify(0.15, seed=7)
        assert fast <= slow

    def test_zero_passes(self, code):
        chip = self.make_chip(code, [WordErrorProfile((5,), (1.0,))])
        report = Scrubber(chip).run(num_passes=0)
        assert report.reads == 0

    def test_negative_passes_rejected(self, code):
        chip = self.make_chip(code, [WordErrorProfile((), ())])
        with pytest.raises(ValueError):
            Scrubber(chip).run(num_passes=-1)
