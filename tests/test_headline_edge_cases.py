"""Edge-case tests for the headline derivations and system seed plumbing."""

import numpy as np
import pytest

from repro.controller.system import derive_seed_for
from repro.experiments.headline import (
    ActiveSpeedup,
    CaseStudySpeedup,
    render,
)


class TestSpeedupDataclasses:
    def test_fraction_none_when_unreached(self):
        speedup = ActiveSpeedup(
            error_count=2, harp_rounds=None, baseline_rounds=10, baseline_name="Naive"
        )
        assert speedup.fraction is None
        speedup = ActiveSpeedup(
            error_count=2, harp_rounds=5, baseline_rounds=None, baseline_name="(none)"
        )
        assert speedup.fraction is None

    def test_fraction_value(self):
        speedup = ActiveSpeedup(
            error_count=3, harp_rounds=5, baseline_rounds=20, baseline_name="Naive"
        )
        assert speedup.fraction == 0.25

    def test_case_study_factor(self):
        speedup = CaseStudySpeedup(probability=0.75, harp_rounds=10, naive_rounds=37)
        assert speedup.factor == 3.7

    def test_case_study_factor_none(self):
        assert CaseStudySpeedup(0.75, None, 10).factor is None
        assert CaseStudySpeedup(0.75, 10, None).factor is None


class TestRenderEdgeCases:
    def test_render_handles_none_values(self):
        active = [
            ActiveSpeedup(
                error_count=2,
                harp_rounds=None,
                baseline_rounds=None,
                baseline_name="(none reached bound)",
            )
        ]
        case = [CaseStudySpeedup(probability=0.5, harp_rounds=None, naive_rounds=None)]
        text = render(active=active, case_study=case)
        assert "n/a" in text

    def test_render_nothing(self):
        assert render() == ""

    def test_render_active_only(self):
        active = [
            ActiveSpeedup(error_count=2, harp_rounds=4, baseline_rounds=8, baseline_name="Naive")
        ]
        text = render(active=active)
        assert "50.0%" in text
        assert "zero post-secondary BER" not in text


class TestSystemSeedDerivation:
    def test_deterministic(self):
        assert derive_seed_for(1, 5) == derive_seed_for(1, 5)

    def test_distinct_per_word(self):
        seeds = {derive_seed_for(1, word) for word in range(20)}
        assert len(seeds) == 20

    def test_non_negative(self):
        assert derive_seed_for(123, 456) >= 0
