"""Unit tests for cell orientation."""

import numpy as np
import pytest

from repro.memory.cells import CellOrientation, all_true_cells, alternating_cells, random_cells


class TestChargeSemantics:
    def test_true_cell_charged_when_one(self):
        orientation = all_true_cells(4)
        charged = orientation.charged_mask(np.array([1, 0, 1, 0], dtype=np.uint8))
        assert charged.tolist() == [1, 0, 1, 0]

    def test_anti_cell_charged_when_zero(self):
        orientation = CellOrientation(np.zeros(4, dtype=np.uint8))
        charged = orientation.charged_mask(np.array([1, 0, 1, 0], dtype=np.uint8))
        assert charged.tolist() == [0, 1, 0, 1]

    def test_alternating(self):
        orientation = alternating_cells(4)
        charged = orientation.charged_mask(np.ones(4, dtype=np.uint8))
        assert charged.tolist() == [1, 0, 1, 0]

    def test_batch_axis(self):
        orientation = all_true_cells(3)
        stored = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        assert orientation.charged_mask(stored).shape == (2, 3)

    def test_is_charged_single(self):
        orientation = alternating_cells(2)
        assert orientation.is_charged(0, 1)
        assert orientation.is_charged(1, 0)
        assert not orientation.is_charged(1, 1)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            all_true_cells(4).charged_mask(np.ones(5, dtype=np.uint8))

    def test_non_binary_mask(self):
        with pytest.raises(ValueError):
            CellOrientation(np.array([2, 0], dtype=np.int64))

    def test_random_cells_reproducible(self):
        a = random_cells(16, np.random.default_rng(0))
        b = random_cells(16, np.random.default_rng(0))
        assert (a.true_cell_mask == b.true_cell_mask).all()
