"""Unit tests for the on-die-ECC memory chip model."""

import numpy as np
import pytest

from repro.ecc.hamming import random_sec_code
from repro.memory.chip import OnDieEccChip
from repro.memory.error_model import WordErrorProfile


@pytest.fixture
def code():
    return random_sec_code(64, np.random.default_rng(41))


def make_chip(code, seed=0):
    return OnDieEccChip(code, num_words=4, rng=np.random.default_rng(seed))


class TestBasicOperation:
    def test_clean_read_returns_written_data(self, code):
        chip = make_chip(code)
        data = np.ones(code.k, dtype=np.uint8)
        chip.write(1, data)
        outcome = chip.read(1)
        assert (outcome.data == data).all()
        assert outcome.injected_positions == ()

    def test_write_validates_shape(self, code):
        chip = make_chip(code)
        with pytest.raises(ValueError):
            chip.write(0, np.ones(code.k + 1, dtype=np.uint8))

    def test_profile_bounds_checked(self, code):
        chip = make_chip(code)
        with pytest.raises(IndexError):
            chip.set_error_profile(0, WordErrorProfile((code.n,), (0.5,)))

    def test_default_profile_is_empty(self, code):
        chip = make_chip(code)
        assert chip.error_profile(3).count == 0


class TestErrorInjectionAndCorrection:
    def test_single_at_risk_bit_is_always_corrected(self, code):
        """On-die ECC hides single-bit errors from the normal read path."""
        chip = make_chip(code)
        chip.set_error_profile(0, WordErrorProfile((5,), (1.0,)))
        data = np.ones(code.k, dtype=np.uint8)
        chip.write(0, data)
        outcome = chip.read(0)
        assert outcome.injected_positions == (5,)
        assert outcome.corrected_positions == (5,)
        assert (outcome.data == data).all()

    def test_bypass_read_exposes_raw_error(self, code):
        """The decode-bypass path shows the pre-correction data error."""
        chip = make_chip(code)
        chip.set_error_profile(0, WordErrorProfile((5,), (1.0,)))
        data = np.ones(code.k, dtype=np.uint8)
        chip.write(0, data)
        outcome = chip.read_raw(0)
        assert outcome.corrected_positions == ()
        assert outcome.data[5] == 0  # the raw flipped bit is visible
        assert (np.flatnonzero(outcome.data != data) == [5]).all()

    def test_bypass_read_never_returns_parity(self, code):
        chip = make_chip(code)
        chip.write(0, np.ones(code.k, dtype=np.uint8))
        assert chip.read_raw(0).data.shape == (code.k,)

    def test_discharged_at_risk_cell_cannot_fail(self, code):
        """True cell storing 0 holds no charge: no error, even at p=1."""
        chip = make_chip(code)
        chip.set_error_profile(0, WordErrorProfile((5,), (1.0,)))
        data = np.ones(code.k, dtype=np.uint8)
        data[5] = 0
        chip.write(0, data)
        outcome = chip.read(0)
        assert outcome.injected_positions == ()
        assert (outcome.data == data).all()

    def test_multi_bit_errors_can_escape_or_miscorrect(self, code):
        """Two simultaneous raw errors defeat SEC correction."""
        chip = make_chip(code)
        chip.set_error_profile(0, WordErrorProfile((5, 9), (1.0, 1.0)))
        data = np.ones(code.k, dtype=np.uint8)
        chip.write(0, data)
        outcome = chip.read(0)
        mismatches = set(np.flatnonzero(outcome.data != data).tolist())
        assert {5, 9} <= mismatches or len(mismatches) >= 2

    def test_parity_at_risk_bit_invisible_on_clean_data_path(self, code):
        """A failing parity cell alone is corrected; reads stay clean."""
        chip = make_chip(code)
        parity_position = code.k + 2
        chip.set_error_profile(0, WordErrorProfile((parity_position,), (1.0,)))
        data = np.ones(code.k, dtype=np.uint8)
        chip.write(0, data)
        for _ in range(3):
            assert (chip.read(0).data == data).all()
