"""Tests for the multi-chip rank model and layout-driven secondary ECC."""

from itertools import combinations

import numpy as np
import pytest

from repro.controller.layout import aligned_layout, interleaved_layout
from repro.controller.rank import MemoryRank, RankController
from repro.controller.secondary_ecc import SecondaryEcc
from repro.ecc.hamming import random_sec_code
from repro.ecc.syndrome import analyze_error_pattern
from repro.memory.chip import OnDieEccChip
from repro.memory.error_model import WordErrorProfile
from repro.repair.profile_store import ErrorProfile


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(151))


def find_pair_with_target_in(code, half):
    """A data pair miscorrecting onto a data bit inside the given range."""
    for a, b in combinations(range(code.k), 2):
        outcome = analyze_error_pattern(code, frozenset({a, b}))
        for target in outcome.indirect_errors:
            if target in half:
                return a, b, target
    raise AssertionError("no suitable pair found")


def build_rank(code, chip_profiles, seed=0):
    chips = []
    for chip_index, profile in enumerate(chip_profiles):
        chip = OnDieEccChip(code, num_words=1, rng=np.random.default_rng(seed + chip_index))
        chip.set_error_profile(0, profile)
        chips.append(chip)
    return MemoryRank(chips)


class TestRankBasics:
    def test_geometry_validation(self, code):
        other = random_sec_code(32, np.random.default_rng(1))
        with pytest.raises(ValueError):
            MemoryRank(
                [
                    OnDieEccChip(code, num_words=1),
                    OnDieEccChip(other, num_words=1),
                ]
            )
        with pytest.raises(ValueError):
            MemoryRank([])

    def test_write_read_roundtrip(self, code):
        rank = build_rank(code, [WordErrorProfile((), ())] * 2)
        block = np.ones((2, code.k), dtype=np.uint8)
        block[1, ::2] = 0
        rank.write_row(0, block)
        observed = rank.read_row(0)
        assert (observed[0] == block[0]).all()
        assert (observed[1] == block[1]).all()

    def test_layout_validation(self, code):
        rank = build_rank(code, [WordErrorProfile((), ())] * 2)
        with pytest.raises(ValueError):
            RankController(rank, [])
        with pytest.raises(ValueError):
            # Layout references a chip beyond the rank.
            RankController(rank, aligned_layout(3, code.k))
        with pytest.raises(ValueError):
            # Double coverage of the same bits.
            RankController(rank, aligned_layout(2, code.k) + aligned_layout(2, code.k))


class TestLayoutEscapes:
    def make_scenario(self, code):
        """Two chips, each with a deterministic miscorrecting pair whose
        indirect target lands in the low half; direct bits pre-profiled."""
        half = range(code.k // 2)
        a, b, target = find_pair_with_target_in(code, half)
        profiles = [WordErrorProfile((a, b), (1.0, 1.0))] * 2
        rank = build_rank(code, profiles)
        stores = [ErrorProfile(), ErrorProfile()]
        for store in stores:
            store.mark_many(0, {a, b})  # HARP active phase done
        return rank, stores, target

    def test_aligned_layout_clean_with_sec(self, code):
        """One secondary word per chip: each sees at most one indirect
        error — SEC suffices (paper's working assumption)."""
        rank, stores, target = self.make_scenario(code)
        controller = RankController(
            rank, aligned_layout(2, code.k), SecondaryEcc(1), profiles=stores
        )
        report = controller.operate(reads_per_row=3)
        assert report.clean
        assert stores[0].is_marked(0, target)
        assert stores[1].is_marked(0, target)

    def test_interleaved_layout_escapes_sec(self, code):
        """One secondary word spanning both chips' low halves sees both
        indirect errors at once — SEC escapes, exactly the §6.3 hazard."""
        rank, stores, _ = self.make_scenario(code)
        controller = RankController(
            rank, interleaved_layout(2, code.k, 2), SecondaryEcc(1), profiles=stores
        )
        report = controller.operate(reads_per_row=1)
        assert max(report.worst_concurrent.values()) == 2
        assert report.escaped_secondary_words > 0

    def test_interleaved_layout_clean_with_dec(self, code):
        """Scaling the secondary capability to ways x t restores safety."""
        rank, stores, _ = self.make_scenario(code)
        controller = RankController(
            rank, interleaved_layout(2, code.k, 2), SecondaryEcc(2), profiles=stores
        )
        report = controller.operate(reads_per_row=3)
        assert report.clean
        assert report.identified_bits >= 2
