"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_known_commands_parse(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name
            assert args.scale == "unit"

    def test_all_command(self):
        args = build_parser().parse_args(["all", "--scale", "unit", "--seed", "3"])
        assert args.command == "all"
        assert args.seed == 3

    def test_jobs_and_timings_flags(self):
        args = build_parser().parse_args(["fig6", "--jobs", "2", "--timings"])
        assert args.jobs == 2
        assert args.timings is True
        defaults = build_parser().parse_args(["fig6"])
        # Unset jobs lets the backend decide: serial by default, one
        # worker per CPU for the explicitly parallel backends.
        assert defaults.jobs is None
        assert defaults.timings is False

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "galactic"])


class TestExecution:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        output = capsys.readouterr().out
        assert "wasted storage" in output

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig6_unit_scale(self, capsys):
        assert main(["fig6", "--scale", "unit"]) == 0
        output = capsys.readouterr().out
        assert "Fig 6 panel" in output
        assert "HARP-U" in output

    def test_fig6_parallel_matches_serial(self, capsys):
        assert main(["fig6", "--scale", "unit"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig6", "--scale", "unit", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_fig10_parallel_matches_serial(self, capsys):
        assert main(["fig10", "--scale", "unit"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig10", "--scale", "unit", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_timings_flag_appends_table(self, capsys):
        assert main(["fig6", "--scale", "unit", "--timings"]) == 0
        assert "Sweep timings" in capsys.readouterr().out

    def test_seed_changes_nothing_for_closed_form(self, capsys):
        main(["fig2", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig2", "--seed", "2"])
        second = capsys.readouterr().out
        assert first == second

    def test_deterministic_given_seed(self, capsys):
        main(["table2", "--seed", "5"])
        first = capsys.readouterr().out
        main(["table2", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_ext_interleaving(self, capsys):
        assert main(["ext-interleaving"]) == 0
        assert "Layout extension" in capsys.readouterr().out

    def test_ext_dec(self, capsys):
        assert main(["ext-dec"]) == 0
        assert "DEC extension" in capsys.readouterr().out


class TestBackendAndResumeFlags:
    def test_backend_and_resume_parse(self):
        args = build_parser().parse_args(
            ["fig6", "--backend", "socket://0.0.0.0:7071", "--resume", "cells.jsonl"]
        )
        assert args.backend == "socket://0.0.0.0:7071"
        assert args.resume == "cells.jsonl"
        defaults = build_parser().parse_args(["fig6"])
        assert defaults.backend is None
        assert defaults.resume is None

    def test_worker_subcommand_parses(self):
        args = build_parser().parse_args(["worker", "--connect", "10.0.0.2:7071"])
        assert args.command == "worker"
        assert args.connect == "10.0.0.2:7071"
        assert args.linger == 10.0
        args = build_parser().parse_args(
            ["worker", "--connect", ":7071", "--linger", "0"]
        )
        assert args.linger == 0.0

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            main(["worker"])

    def test_paper_scale_parses(self):
        args = build_parser().parse_args(["fig6", "--scale", "paper"])
        assert args.scale == "paper"

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(ValueError, match="unknown backend"):
            main(["fig6", "--scale", "unit", "--backend", "carrier-pigeon"])
        capsys.readouterr()

    def test_fig6_socket_backend_matches_serial(self, capsys):
        """End-to-end: 2 spawned worker processes, bit-identical exhibit."""
        assert main(["fig6", "--scale", "unit", "--backend", "serial"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig6", "--scale", "unit", "--backend", "socket", "--jobs", "2"]) == 0
        socket_run = capsys.readouterr().out
        assert serial == socket_run

    def test_fig6_resume_roundtrip(self, capsys, tmp_path):
        """A resumed rerun reads the store and renders identically."""
        store = tmp_path / "fig6.jsonl"
        assert main(["fig6", "--scale", "unit"]) == 0
        fresh = capsys.readouterr().out
        assert main(["fig6", "--scale", "unit", "--resume", str(store)]) == 0
        first = capsys.readouterr().out
        size_after_first = store.stat().st_size
        assert main(["fig6", "--scale", "unit", "--resume", str(store)]) == 0
        second = capsys.readouterr().out
        assert fresh == first == second
        assert store.stat().st_size == size_after_first  # all cells reused

    def test_all_with_resume_gives_fig10_its_own_store(self, capsys, tmp_path):
        """`all --resume PATH` shares the sweep store across the sweep
        exhibits but must route fig10's different record family to the
        PATH.fig10 sibling instead of crashing on the sweep header."""
        store = tmp_path / "all.jsonl"
        assert main(["all", "--scale", "unit"]) == 0
        fresh = capsys.readouterr().out
        assert main(["all", "--scale", "unit", "--resume", str(store)]) == 0
        resumed = capsys.readouterr().out
        assert resumed == fresh
        assert store.exists()  # sweep cells
        assert (tmp_path / "all.jsonl.fig10").exists()  # case-study shards
        # And a rerun resumes everything without recomputation errors.
        assert main(["all", "--scale", "unit", "--resume", str(store)]) == 0
        assert capsys.readouterr().out == fresh

    def test_fig10_resume_roundtrip(self, capsys, tmp_path):
        """The case study persists and resumes through --resume too."""
        store = tmp_path / "fig10.jsonl"
        assert main(["fig10", "--scale", "unit"]) == 0
        fresh = capsys.readouterr().out
        assert main(["fig10", "--scale", "unit", "--resume", str(store)]) == 0
        first = capsys.readouterr().out
        size_after_first = store.stat().st_size
        assert main(["fig10", "--scale", "unit", "--resume", str(store)]) == 0
        second = capsys.readouterr().out
        assert fresh == first == second
        assert store.stat().st_size == size_after_first  # all shards reused


class TestHardeningFlags:
    """Socket-fleet hardening knobs: parsing and misuse errors."""

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig6",
                "--backend",
                "socket://0.0.0.0:7071",
                "--auth-token",
                "s3cret",
                "--workers-expected",
                "8",
                "--heartbeat-timeout",
                "30",
            ]
        )
        assert args.auth_token == "s3cret"
        assert args.workers_expected == 8
        assert args.heartbeat_timeout == 30.0

    def test_auth_token_falls_back_to_environment_for_socket(self, monkeypatch):
        """The env var arms a socket backend without any explicit flag."""
        from repro.cli import _execution_backend
        from repro.experiments.backends import SocketBackend

        monkeypatch.setenv("REPRO_AUTH_TOKEN", "from-env")
        args = build_parser().parse_args(["fig6", "--backend", "socket", "--jobs", "2"])
        backend = _execution_backend(args)
        assert isinstance(backend, SocketBackend)
        assert backend.auth_token == "from-env"

    def test_spec_classification_matches_resolver_normalization(self, monkeypatch):
        """A capitalized socket spec must still be recognized as socket,
        or the ambient env token would silently not be applied."""
        from repro.cli import _execution_backend
        from repro.experiments.backends import SocketBackend

        monkeypatch.setenv("REPRO_AUTH_TOKEN", "from-env")
        args = build_parser().parse_args(
            ["fig6", "--backend", " Socket://127.0.0.1:7071 ", "--jobs", "0"]
        )
        backend = _execution_backend(args)
        assert isinstance(backend, SocketBackend)
        assert backend.auth_token == "from-env"

    def test_ambient_env_token_does_not_break_serial_runs(self, monkeypatch, capsys):
        """Exporting REPRO_AUTH_TOKEN for a campaign must leave ordinary
        non-socket runs in the same shell untouched."""
        monkeypatch.setenv("REPRO_AUTH_TOKEN", "campaign-secret")
        assert main(["fig2"]) == 0
        assert "wasted storage" in capsys.readouterr().out

    def test_empty_auth_token_refused(self, monkeypatch, capsys):
        """An empty secret is a failed shell substitution, never a
        silently-open fleet."""
        monkeypatch.delenv("REPRO_AUTH_TOKEN", raising=False)
        with pytest.raises(SystemExit, match="empty"):
            main(["fig6", "--scale", "unit", "--backend", "socket", "--auth-token", ""])
        monkeypatch.setenv("REPRO_AUTH_TOKEN", "")
        with pytest.raises(SystemExit, match="empty"):
            main(["fig6", "--scale", "unit", "--backend", "socket", "--jobs", "2"])
        capsys.readouterr()

    def test_hardening_without_socket_backend_rejected(self, capsys):
        with pytest.raises(SystemExit, match="socket"):
            main(["fig6", "--scale", "unit", "--auth-token", "x"])
        with pytest.raises(SystemExit, match="socket"):
            main(
                ["fig6", "--scale", "unit", "--backend", "process", "--workers-expected", "2"]
            )
        capsys.readouterr()

    def test_worker_flags_parse(self):
        args = build_parser().parse_args(
            ["worker", "--connect", ":7071", "--auth-token", "s3cret"]
        )
        assert args.auth_token == "s3cret"

    def test_fig6_hardened_socket_matches_serial(self, capsys, monkeypatch):
        """End-to-end: auth + barrier + heartbeats on, bit-identical."""
        monkeypatch.delenv("REPRO_AUTH_TOKEN", raising=False)
        assert main(["fig6", "--scale", "unit", "--backend", "serial"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                [
                    "fig6",
                    "--scale",
                    "unit",
                    "--backend",
                    "socket",
                    "--jobs",
                    "2",
                    "--auth-token",
                    "ci-secret",
                    "--workers-expected",
                    "2",
                    "--heartbeat-timeout",
                    "30",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == serial


class TestStoreDispatch:
    def test_store_command_listed(self):
        args = build_parser().parse_args(["store"])
        assert args.command == "store"

    def test_store_requires_arguments(self):
        with pytest.raises(SystemExit):
            main(["store"])

    def test_store_after_options_gets_usage_error_not_crash(self, capsys):
        """'store' anywhere but first is a clean usage error, never a
        KeyError from the exhibit loop."""
        with pytest.raises(SystemExit, match="store"):
            main(["--scale", "unit", "store"])
        capsys.readouterr()
