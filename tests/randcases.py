"""Seeded random-case streams shared by the property-style suites.

The batched-kernel and charge-system suites both grew ad-hoc
``_random_cell`` / ``_random_case`` helpers: draw a randomized fixture
from a ``numpy`` generator, unpack it, assert a property.  This module
is their shared home.  Every generator takes an explicit integer seed
(or an already-seeded ``Generator``) and returns a small frozen case
object whose ``label`` names the generating parameters — so a failing
parametrized test identifies its exact case from the pytest id alone,
and re-running it needs nothing but the same seed.  The case also
carries the advanced ``rng``, letting a test keep drawing follow-on
values (shuffles, extra constraint positions) deterministically from
where the case generator left off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.ecc.hamming import canonical_sec_code, random_sec_code
from repro.memory.error_model import WordErrorProfile

__all__ = [
    "CellCase",
    "ChargeCase",
    "charge_case",
    "charge_cases",
    "random_cell",
]


def _as_rng(seed) -> tuple[np.random.Generator, str]:
    """Accept an int seed or a live ``Generator``; label the source."""
    if isinstance(seed, np.random.Generator):
        return seed, "rng"
    return np.random.default_rng(seed), str(seed)


@dataclass(frozen=True)
class CellCase:
    """A rectangular profiling cell: parallel codes/profiles/seeds.

    Unpacks like the old ad-hoc 3-tuple (``codes, profiles, seeds``),
    so ported call sites keep their shape.
    """

    label: str
    codes: tuple
    profiles: tuple[WordErrorProfile, ...]
    seeds: tuple[int, ...]
    rng: np.random.Generator = field(repr=False, compare=False)

    def __iter__(self) -> Iterator:
        return iter((list(self.codes), list(self.profiles), list(self.seeds)))

    def __str__(self) -> str:  # pytest id for parametrized streams
        return self.label


def random_cell(seed, num_words: int, max_count: int = 6) -> CellCase:
    """A cell of ``num_words`` words over two codes, some words empty.

    Each word gets 0 to ``max_count - 1`` at-risk positions on its code
    with per-bit probabilities in [0.05, 1.0), plus a word seed — the
    exact distribution the batched-kernel suite always pinned its
    scalar-equivalence property over.
    """
    rng, source = _as_rng(seed)
    codes = [canonical_sec_code(16), random_sec_code(32, np.random.default_rng(5))]
    profiles, cell_codes = [], []
    for index in range(num_words):
        code = codes[index % len(codes)]
        count = int(rng.integers(0, max_count))
        positions = tuple(
            sorted(rng.choice(code.n, size=count, replace=False).tolist())
        )
        probabilities = tuple(float(p) for p in rng.uniform(0.05, 1.0, size=count))
        profiles.append(WordErrorProfile(positions, probabilities))
        cell_codes.append(code)
    seeds = [int(s) for s in rng.integers(0, 2**31, size=num_words)]
    return CellCase(
        label=f"cell-seed{source}-w{num_words}-c{max_count}",
        codes=tuple(cell_codes),
        profiles=tuple(profiles),
        seeds=tuple(seeds),
        rng=rng,
    )


@dataclass(frozen=True)
class ChargeCase:
    """A random SEC code with anchor constraints and a candidate pair.

    Unpacks like the old ad-hoc 3-tuple (``code, anchors, pair``).
    """

    label: str
    code: object
    anchors: frozenset
    pair: tuple
    rng: np.random.Generator = field(repr=False, compare=False)

    def __iter__(self) -> Iterator:
        return iter((self.code, self.anchors, self.pair))

    def __str__(self) -> str:  # pytest id for parametrized streams
        return self.label


def charge_case(seed) -> ChargeCase:
    """A random (8-63 data bits) SEC code, 0-5 anchors, one test pair."""
    rng, source = _as_rng(seed)
    code = random_sec_code(int(rng.integers(8, 64)), rng)
    anchors = frozenset(
        int(x) for x in rng.choice(code.k, size=int(rng.integers(0, 6)), replace=False)
    )
    pair = tuple(int(x) for x in rng.choice(code.n, size=2, replace=False))
    return ChargeCase(
        label=f"charge-seed{source}-k{code.k}-a{len(anchors)}",
        code=code,
        anchors=anchors,
        pair=pair,
        rng=rng,
    )


def charge_cases(seeds) -> list[ChargeCase]:
    """One labeled :func:`charge_case` per seed, for ``parametrize``."""
    return [charge_case(seed) for seed in seeds]
