"""End-to-end tests of the ``repro serve`` campaign daemon.

Every test runs the real daemon as a subprocess (via
:class:`serviceharness.ServiceDaemon`) and talks to it over the actual
HTTP/JSON API — the same surface curl sees.  Coverage:

* the job lifecycle for all three kinds (sweep, fig10, fleet) through
  to persisted results;
* spec validation: bad submissions get a 400 with a reason, never a
  traceback; auth scoping on mutating calls;
* cancellation of queued vs running jobs;
* bit-identity: a service-submitted sweep equals the serial run and
  the CLI's own stdout rendition;
* two concurrent campaigns multiplexed over one shared fleet, both
  observably mid-flight at once, both bit-identical to serial;
* the crash drill: SIGKILL the daemon mid-job, restart it on the same
  state dir, and watch the job heal and complete bit-identically —
  with the worker fleet riding through the restart via a retargeted
  :class:`chaos.ChaosProxy` front.
"""

import json

from chaos import ChaosProxy
from repro.cli import main
from repro.experiments.runner import run_sweep
from repro.experiments.scheduler import job_config, parse_job_spec
from repro.experiments.store import sweep_to_json
from serviceharness import (
    ServiceDaemon,
    spawn_worker,
    terminate_procs,
    wait_until,
)

#: Overrides that slow the unit sweep from milliseconds to seconds per
#: campaign, so tests can observe (and interrupt) jobs mid-flight.
SLOW_SWEEP = {"num_rounds": 512, "words_per_code": 8}
SLOWER_SWEEP = {"num_rounds": 2048, "words_per_code": 8}


def _strip_timing(payload: dict) -> dict:
    """Drop the per-cell wall-clock ``seconds`` field — the only part
    of a sweep payload that legitimately differs between runs."""
    return {
        **payload,
        "cells": [
            {key: value for key, value in cell.items() if key != "seconds"}
            for cell in payload["cells"]
        ],
    }


def _serial_sweep_payload(spec: dict) -> dict:
    """The exact ``sweep`` payload the service must persist for ``spec``,
    recomputed serially in this process (the bit-identity reference)."""
    config = job_config(parse_job_spec(spec))
    return _strip_timing(json.loads(sweep_to_json(run_sweep(config))))


class TestJobLifecycle:
    """Submit → run → done → result, for every job kind."""

    def test_all_three_job_kinds_run_to_done(self, tmp_path):
        specs = [
            {"kind": "sweep", "exhibit": "fig6"},
            {"kind": "fig10"},
            {"kind": "fleet"},
        ]
        with ServiceDaemon(tmp_path / "state", workers=2) as daemon:
            ids = [daemon.submit(spec) for spec in specs]
            _, listing = daemon.get("/jobs", expect=200)
            assert [job["id"] for job in listing["jobs"]] == ids
            records = [daemon.wait_job(job_id) for job_id in ids]
            assert [record["state"] for record in records] == ["done"] * 3
            for record in records:
                assert record["started"] is not None
                assert record["finished"] is not None
                assert record["error"] is None
            sweep_result = daemon.result(ids[0])
            assert sweep_result["kind"] == "sweep"
            assert sweep_result["healed"] is False
            assert sweep_result["exhibit"] == "fig6"
            assert sweep_result["rendition"]
            assert _strip_timing(sweep_result["sweep"]) == _serial_sweep_payload(specs[0])
            for job_id, kind in zip(ids[1:], ("fig10", "fleet")):
                result = daemon.result(job_id)
                assert result["kind"] == kind
                assert result["rendition"]
            _, status = daemon.get("/status", expect=200)
            assert status["format"] == "repro-status-v2"
            assert status["jobs"]["done"] == 3
            assert status["maps"]["opened"] >= 3
            assert isinstance(status["history"], list)

    def test_service_sweep_rendition_matches_the_cli(self, tmp_path, capsys):
        """Acceptance: a service-submitted exhibit equals the CLI's own
        output byte for byte (same presets, same seed derivation)."""
        spec = {"kind": "sweep", "exhibit": "fig6"}
        with ServiceDaemon(tmp_path / "state", workers=2) as daemon:
            job_id = daemon.submit(spec)
            assert daemon.wait_job(job_id)["state"] == "done"
            result = daemon.result(job_id)
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("== ")
        assert out.endswith(result["rendition"] + "\n\n")


class TestValidationAndAuth:
    """Bad submissions: a 400 with the reason, never a traceback."""

    def test_bad_specs_rejected_with_reasons(self, tmp_path):
        with ServiceDaemon(
            tmp_path / "state", workers=0, auth_token="hunter2"
        ) as daemon:
            cases = [
                ({"kind": "nope"}, "kind must be one of"),
                ({"kind": "sweep", "bogus": 1}, "bogus"),
                ({"kind": "sweep", "scale": "galactic"}, "scale must be one of"),
                ({"kind": "sweep", "config": {"no_such_field": 3}}, "no_such_field"),
                ({"kind": "sweep", "config": [1, 2]}, "config must be"),
                ({"kind": "sweep", "exhibit": "fig10"}, "exhibit must be one of"),
                ({"kind": "fig10", "exhibit": "fig6"}, "exhibit only applies"),
                ([1, 2, 3], "JSON object"),
            ]
            for spec, needle in cases:
                code, body = daemon.post("/jobs", spec)
                assert code == 400, (spec, code, body)
                assert needle in body["error"], (spec, body)
                assert "Traceback" not in body["error"]
            code, body = daemon.post("/jobs")  # empty body
            assert code == 400 and "JSON" in body["error"]
            assert daemon.get("/jobs/job-deadbeef")[0] == 404
            assert daemon.post("/jobs/job-deadbeef/cancel")[0] == 404
            assert daemon.get("/definitely/not/an/endpoint")[0] == 404
            # A job that exists but is not done: result is a 409 state
            # report, not an error page.
            job_id = daemon.submit({"kind": "sweep"})  # no workers: never done
            code, body = daemon.get(f"/jobs/{job_id}/result")
            assert code == 409
            assert body["state"] in ("queued", "running")

    def test_mutating_calls_need_the_token_reads_stay_open(self, tmp_path):
        with ServiceDaemon(
            tmp_path / "state", workers=0, auth_token="hunter2"
        ) as daemon:
            saved = daemon.auth_token
            daemon.auth_token = None  # harness stops sending the header
            try:
                code, body = daemon.post("/jobs", {"kind": "sweep"})
                assert code == 401
                assert "X-Auth-Token" in body["error"]
                daemon.get("/jobs", expect=200)
                daemon.get("/status", expect=200)
            finally:
                daemon.auth_token = saved
            daemon.post("/jobs", {"kind": "sweep"}, expect=201)


class TestCancel:
    """Queued jobs cancel instantly; running jobs abort their map."""

    def test_cancel_queued_and_running(self, tmp_path):
        with ServiceDaemon(
            tmp_path / "state", workers=0, args=("--max-concurrent", "1")
        ) as daemon:
            # No workers: the first job runs (and stalls) forever, the
            # second queues behind --max-concurrent 1.
            first = daemon.submit({"kind": "sweep", "config": SLOW_SWEEP})
            second = daemon.submit({"kind": "sweep"})
            wait_until(
                lambda: daemon.get(f"/jobs/{first}")[1]["state"] == "running",
                message="first job never started running",
            )
            assert daemon.get(f"/jobs/{second}")[1]["state"] == "queued"
            daemon.post(f"/jobs/{second}/cancel", expect=200)
            record = daemon.wait_job(second)
            assert record["state"] == "cancelled"
            assert record["started"] is None  # cancelled before dispatch
            daemon.post(f"/jobs/{first}/cancel", expect=200)
            record = daemon.wait_job(first)
            assert record["state"] == "cancelled"
            assert record["started"] is not None  # was genuinely running
            # Terminal jobs: cancel is a conflict, result reports state.
            code, body = daemon.post(f"/jobs/{first}/cancel")
            assert code == 409 and body["state"] == "cancelled"
            code, body = daemon.get(f"/jobs/{first}/result")
            assert code == 409 and body["state"] == "cancelled"


class TestConcurrentCampaigns:
    """Two campaigns share one fleet and interleave chunk dispatch."""

    def test_two_campaigns_interleave_and_finish_bit_identically(self, tmp_path):
        spec = {"kind": "sweep", "config": SLOWER_SWEEP}
        with ServiceDaemon(tmp_path / "state", workers=2) as daemon:
            first = daemon.submit(spec)
            second = daemon.submit(spec)

            def both_mid_flight() -> bool:
                _, a = daemon.get(f"/jobs/{first}")
                _, b = daemon.get(f"/jobs/{second}")
                # Round-robin fairness means neither campaign may drain
                # to completion while the other has not even started.
                assert a["state"] in ("queued", "running"), a
                assert b["state"] in ("queued", "running"), b
                if a["state"] == b["state"] == "running":
                    done_a = (a.get("coverage") or {}).get("done", 0)
                    done_b = (b.get("coverage") or {}).get("done", 0)
                    return done_a >= 1 and done_b >= 1
                return False

            wait_until(
                both_mid_flight,
                deadline=120.0,
                interval=0.05,
                message="never observed both campaigns advancing at once",
            )
            assert daemon.wait_job(first)["state"] == "done"
            assert daemon.wait_job(second)["state"] == "done"
            reference = _serial_sweep_payload(spec)
            assert _strip_timing(daemon.result(first)["sweep"]) == reference
            assert _strip_timing(daemon.result(second)["sweep"]) == reference
            _, status = daemon.get("/status", expect=200)
            assert status["maps"]["opened"] >= 2


class TestDaemonRestart:
    """The crash drill: SIGKILL mid-job, restart, heal, complete."""

    def test_sigkill_and_restart_heals_and_completes(self, tmp_path):
        spec = {"kind": "sweep", "config": SLOWER_SWEEP}
        state = tmp_path / "state"
        workers = []
        daemon_a = ServiceDaemon(state, workers=0).start()
        try:
            # The fleet connects through a proxy front whose address
            # outlives the daemon — the restarted daemon binds a fresh
            # ephemeral work port and the proxy is retargeted at it.
            with ChaosProxy(tuple(daemon_a.work)) as proxy:
                host, port = proxy.address
                workers = [
                    spawn_worker(f"{host}:{port}", linger=120.0)
                    for _ in range(2)
                ]
                job_id = daemon_a.submit(spec)

                def mid_flight() -> bool:
                    _, record = daemon_a.get(f"/jobs/{job_id}")
                    assert record["state"] in ("queued", "running"), record
                    done = (record.get("coverage") or {}).get("done", 0)
                    return record["state"] == "running" and done >= 2
                wait_until(
                    mid_flight,
                    deadline=120.0,
                    interval=0.05,
                    message="job never got mid-flight before the kill",
                )
                daemon_a.sigkill()  # hard node loss: no cleanup runs
                with ServiceDaemon(state, workers=0) as daemon_b:
                    # The restart re-attached the state dir and said so.
                    assert job_id in daemon_b.healed
                    assert any(
                        "healed 1 interrupted job(s)" in line
                        for line in daemon_b.lines
                    )
                    proxy.retarget(daemon_b.work)
                    record = daemon_b.wait_job(job_id)
                    assert record["state"] == "done", record
                    assert record["healed"] is True
                    result = daemon_b.result(job_id)
                    assert result["healed"] is True
                    # Healing re-ran only the missing cells over the
                    # resume store — and the merged sweep is still
                    # bit-identical to a serial run.
                    assert _strip_timing(result["sweep"]) == _serial_sweep_payload(spec)
        finally:
            terminate_procs(workers)
            daemon_a.sigkill()
