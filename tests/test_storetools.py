"""Tests of the ``repro store`` toolbox: summary, compact, merge.

The toolbox must agree exactly with what the stores themselves would
load — compaction keeps the winning (last-appended) record per key,
torn tails never survive a rewrite, and merging refuses to mix
campaigns — while streaming record by record.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import fig10
from repro.experiments.config import CaseStudyConfig, SweepConfig
from repro.experiments.runner import run_sweep
from repro.experiments.store import Fig10Store, ShardStore
from repro.experiments.storetools import (
    compact,
    merge,
    render_summary,
    store_main,
    summarize,
)

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=2,
    num_rounds=16,
    error_counts=(2,),
    probabilities=(0.5, 1.0),
    profilers=("Naive", "HARP-U"),
)

CASE_CONFIG = CaseStudyConfig(
    num_codes=2,
    words_per_stratum=2,
    num_rounds=32,
    probabilities=(0.5,),
    rbers=(1e-4,),
    max_at_risk=3,
    profilers=("Naive", "HARP-U"),
)


@pytest.fixture()
def sweep_store(tmp_path):
    path = tmp_path / "sweep.jsonl"
    run_sweep(CONFIG, resume=str(path))
    return path


@pytest.fixture()
def fig10_store(tmp_path):
    path = tmp_path / "fig10.jsonl"
    fig10.run(CASE_CONFIG, resume=str(path))
    return path


def _duplicate_last_cell(path):
    """Append a stale copy of an existing cell (superseded on load)."""
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines) + "\n" + lines[-1] + "\n")


class TestSummary:
    def test_counts_cells_and_config(self, sweep_store):
        summary = summarize(sweep_store)
        assert summary.format == "repro-sweep-v2"
        assert summary.distinct == {"cell": 4}
        assert summary.superseded == 0
        assert summary.torn_tail is False
        assert summary.words == 4 * CONFIG.num_codes * CONFIG.words_per_code
        assert summary.config["seed"] == CONFIG.seed
        text = render_summary(summary)
        assert "4 sweep cells" in text
        assert "repro-sweep-v2" in text

    def test_flags_superseded_and_torn_tail(self, sweep_store):
        _duplicate_last_cell(sweep_store)
        with open(sweep_store, "a") as handle:
            handle.write('{"kind": "cell", "error_coun')
        summary = summarize(sweep_store)
        assert summary.superseded == 1
        assert summary.torn_tail is True
        assert summary.distinct == {"cell": 4}
        text = render_summary(summary)
        assert "superseded" in text
        assert "torn final line" in text

    def test_fig10_store_summarizes(self, fig10_store):
        summary = summarize(fig10_store)
        assert summary.format == "repro-fig10-v1"
        assert summary.distinct == {"fig10": len(fig10.shard_case_study(CASE_CONFIG))}
        assert "fig10 shards" in render_summary(summary)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            summarize(tmp_path / "nope.jsonl")

    def test_sweep_document_rejected(self, tmp_path):
        from repro.experiments.store import sweep_to_json

        path = tmp_path / "doc.json"
        path.write_text(sweep_to_json(run_sweep(CONFIG)) + "\n")
        with pytest.raises(ValueError, match="sweep_to_json document"):
            summarize(path)


class TestGridCoverage:
    """`store summary` derives the full grid from the embedded config."""

    def test_complete_sweep_store(self, sweep_store):
        summary = summarize(sweep_store)
        assert summary.cells_total == 4  # 1 error count x 2 probs x 2 profilers
        assert summary.cells_done == 4
        assert summary.eta_seconds == 0.0
        assert summary.grid == "1 error counts × 2 probabilities × 2 profilers = 4 cells"
        text = render_summary(summary)
        assert "grid     1 error counts × 2 probabilities × 2 profilers = 4 cells" in text
        assert "progress 4/4 cells done (100.0%)" in text

    def test_partial_store_reports_coverage_and_eta(self, sweep_store):
        """An interrupted run (header + a prefix of cells) reports
        cells-done/cells-total and extrapolates an ETA."""
        lines = sweep_store.read_text().splitlines()
        sweep_store.write_text("\n".join(lines[:3]) + "\n")  # header + 2 cells
        summary = summarize(sweep_store)
        assert summary.cells_done == 2
        assert summary.cells_total == 4
        assert summary.eta_seconds is not None and summary.eta_seconds > 0.0
        # Remaining = done's average per-cell seconds x 2 missing cells.
        assert summary.eta_seconds == pytest.approx(summary.total_seconds)
        text = render_summary(summary)
        assert "progress 2/4 cells done (50.0%)" in text
        assert "eta ~" in text

    def test_resumed_store_converges_to_full_coverage(self, sweep_store):
        """Truncate, resume, summarize: coverage goes back to done."""
        lines = sweep_store.read_text().splitlines()
        sweep_store.write_text("\n".join(lines[:2]) + "\n")
        assert summarize(sweep_store).cells_done == 1
        run_sweep(CONFIG, resume=str(sweep_store))
        resumed = summarize(sweep_store)
        assert resumed.cells_done == resumed.cells_total == 4
        assert resumed.eta_seconds == 0.0

    def test_fig10_store_grid(self, fig10_store):
        summary = summarize(fig10_store)
        assert summary.grid == "1 probabilities × 2 codes × 2 strata = 4 cells"
        assert summary.cells_done == summary.cells_total == 4
        # Fig 10 shards record their compute seconds for the ETA math.
        assert summary.total_seconds > 0.0

    def test_mismatched_grids_visible_in_summaries(self, sweep_store, tmp_path):
        """Satellite: mismatched merges are diagnosable from the summary
        alone — the two grid lines differ."""
        other = tmp_path / "other.jsonl"
        run_sweep(
            SweepConfig(
                num_codes=2,
                words_per_code=2,
                num_rounds=16,
                error_counts=(2, 3),
                probabilities=(0.5,),
                profilers=("Naive",),
            ),
            resume=str(other),
        )
        with pytest.raises(ValueError, match="different config"):
            merge([sweep_store, other], tmp_path / "merged.jsonl")
        assert summarize(sweep_store).grid != summarize(other).grid

    def test_healed_quarantine_marker_reported_resolved(self, sweep_store):
        """A quarantine marker whose cell later completed (the auto-retry
        pass, or a targeted re-run) is reported as healed — not listed
        as quarantined, and never double-counted against coverage."""
        key = (2, 0.5, "Naive")
        with ShardStore(sweep_store) as store:
            store.append_quarantine(key)
        summary = summarize(sweep_store)
        assert summary.quarantined == []  # the completed cell resolves it
        assert summary.healed == [key]
        assert summary.cells_done == summary.cells_total == 4  # no double count
        text = render_summary(summary)
        assert "healed   1 shard(s) resolved" in text
        assert "progress 4/4 cells done (100.0%)" in text
        assert "quarantine " not in text

    def test_unresolved_marker_still_listed_quarantined(self, sweep_store):
        """A marker with no completed record of its key stays in the
        awaiting-re-run list and is not claimed healed."""
        lines = sweep_store.read_text().splitlines()
        sweep_store.write_text("\n".join(lines[:3]) + "\n")  # drop 2 cells
        missing = (2, 1.0, "HARP-U")
        with ShardStore(sweep_store) as store:
            store.append_quarantine(missing)
        summary = summarize(sweep_store)
        assert summary.quarantined == [missing]
        assert summary.healed == []
        text = render_summary(summary)
        assert "awaiting a targeted" in text
        assert "healed" not in text

    def test_headerless_store_has_no_coverage(self, sweep_store):
        lines = sweep_store.read_text().splitlines()
        sweep_store.write_text("\n".join(lines[1:]) + "\n")
        summary = summarize(sweep_store)
        assert summary.cells_total is None
        assert summary.grid is None
        assert "progress" not in render_summary(summary)


class TestCompact:
    def test_drops_superseded_and_torn_tail(self, sweep_store):
        before = ShardStore(sweep_store).load()
        _duplicate_last_cell(sweep_store)
        with open(sweep_store, "a") as handle:
            handle.write('{"kind": "cell", "error_coun')
        stats = compact(sweep_store)
        assert stats.superseded == 1
        assert stats.torn_tail is True
        after = ShardStore(sweep_store).load()
        assert after.cells.keys() == before.cells.keys()
        for key in before.cells:
            assert after.cells[key].words == before.cells[key].words
        assert summarize(sweep_store).superseded == 0
        assert summarize(sweep_store).torn_tail is False

    def test_idempotent_byte_identical(self, sweep_store):
        _duplicate_last_cell(sweep_store)
        compact(sweep_store)
        first = sweep_store.read_bytes()
        stats = compact(sweep_store)
        assert stats.superseded == 0
        assert sweep_store.read_bytes() == first

    def test_compact_to_separate_output(self, sweep_store, tmp_path):
        output = tmp_path / "out.jsonl"
        original = sweep_store.read_bytes()
        compact(sweep_store, output=output)
        assert output.exists()
        assert sweep_store.read_bytes() == original  # source untouched

    def test_compacted_store_still_resumes(self, sweep_store):
        """A compacted store is a valid --resume target."""
        _duplicate_last_cell(sweep_store)
        compact(sweep_store)
        reference = run_sweep(CONFIG)
        resumed = run_sweep(CONFIG, resume=str(sweep_store))
        for key in reference.cells:
            assert resumed.cells[key].words == reference.cells[key].words

    def test_fig10_store_compacts(self, fig10_store):
        lines = fig10_store.read_text().splitlines()
        fig10_store.write_text("\n".join(lines + [lines[-1]]) + "\n")
        stats = compact(fig10_store)
        assert stats.superseded == 1
        reference = fig10.run(CASE_CONFIG)
        assert fig10.run(CASE_CONFIG, resume=str(fig10_store)) == reference


class TestMerge:
    def test_two_machine_stores_merge_to_full_sweep(self, tmp_path):
        """Each 'machine' persists a disjoint half; the merge resumes as
        a complete store (the §A.7 aggregate-raw-files workflow)."""
        full = tmp_path / "full.jsonl"
        run_sweep(CONFIG, resume=str(full))
        lines = full.read_text().splitlines()
        header, cells = lines[0], lines[1:]
        left = tmp_path / "left.jsonl"
        right = tmp_path / "right.jsonl"
        left.write_text("\n".join([header] + cells[: len(cells) // 2]) + "\n")
        right.write_text("\n".join([header] + cells[len(cells) // 2 :]) + "\n")
        merged = tmp_path / "merged.jsonl"
        stats = merge([left, right], merged)
        assert stats.kept == len(cells)
        assert stats.superseded == 0
        reference = run_sweep(CONFIG)
        resumed = run_sweep(CONFIG, resume=str(merged))
        for key in reference.cells:
            assert resumed.cells[key].words == reference.cells[key].words

    def test_duplicate_keys_last_input_wins(self, sweep_store, tmp_path):
        merged = tmp_path / "merged.jsonl"
        stats = merge([sweep_store, sweep_store], merged)
        assert stats.superseded == 4
        assert summarize(merged).distinct == {"cell": 4}

    def test_output_may_be_an_input(self, sweep_store, tmp_path):
        other = tmp_path / "other.jsonl"
        other.write_bytes(sweep_store.read_bytes())
        merge([sweep_store, other], sweep_store)
        assert summarize(sweep_store).distinct == {"cell": 4}

    def test_refuses_mixed_formats(self, sweep_store, fig10_store, tmp_path):
        with pytest.raises(ValueError, match="cannot merge"):
            merge([sweep_store, fig10_store], tmp_path / "out.jsonl")

    def test_refuses_mixed_configs(self, sweep_store, tmp_path):
        other = tmp_path / "other.jsonl"
        run_sweep(
            SweepConfig(
                num_codes=2,
                words_per_code=2,
                num_rounds=16,
                error_counts=(2,),
                probabilities=(0.5, 1.0),
                profilers=("Naive", "HARP-U"),
                seed=7,
            ),
            resume=str(other),
        )
        with pytest.raises(ValueError, match="different config"):
            merge([sweep_store, other], tmp_path / "out.jsonl")

    def test_needs_two_inputs(self, sweep_store, tmp_path):
        with pytest.raises(ValueError, match="at least two"):
            merge([sweep_store], tmp_path / "out.jsonl")


class TestStoreCli:
    """The ``python -m repro store`` surface."""

    def test_summary_via_main(self, sweep_store, capsys):
        assert main(["store", str(sweep_store), "summary"]) == 0
        assert "sweep cells" in capsys.readouterr().out

    def test_compact_via_main(self, sweep_store, capsys):
        _duplicate_last_cell(sweep_store)
        assert main(["store", str(sweep_store), "compact"]) == 0
        assert "dropped 1 superseded" in capsys.readouterr().out

    def test_merge_via_main(self, sweep_store, tmp_path, capsys):
        out = tmp_path / "merged.jsonl"
        assert (
            main(["store", str(sweep_store), "merge", str(sweep_store), "-o", str(out)])
            == 0
        )
        assert "merged 2 store(s)" in capsys.readouterr().out
        assert out.exists()

    def test_merge_without_output_fails(self, sweep_store, capsys):
        assert main(["store", str(sweep_store), "merge", str(sweep_store)]) == 1
        assert "--output" in capsys.readouterr().err

    def test_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert main(["store", str(tmp_path / "nope.jsonl"), "summary"]) == 1
        assert "no shard store" in capsys.readouterr().err

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            store_main(["--help"])
        assert excinfo.value.code == 0
