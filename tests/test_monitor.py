"""Tests of the campaign control plane (``repro.experiments.monitor``).

Covers the coverage/ETA math shared by ``--progress`` and ``store
summary``, the ``repro-status-v1`` snapshot protocol (server, client,
renderer, CLI), live status served from a running socket map, and the
continue-past-quarantine mode end-to-end: the poison chunk is set
aside, the rest of the grid completes bit-identically, and the
quarantined shard keys are reported by the drivers, the stores, and the
store toolbox.
"""

import io
import json
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.experiments import fig10
from repro.experiments.backends import (
    ExecutionBackend,
    SocketBackend,
    run_worker,
)
from repro.experiments.config import CaseStudyConfig, SweepConfig
from repro.experiments.monitor import (
    STATUS_FORMAT,
    STATUS_FORMAT_V1,
    ThroughputHistory,
    ProgressReporter,
    StatusServer,
    estimate_eta,
    format_eta,
    format_grid,
    grid_shape,
    quarantine_report,
    read_status,
    render_status,
    status_main,
)
from repro.experiments.runner import run_sweep, shard_grid
from repro.experiments.store import Fig10Store, ShardStore
from repro.experiments.storetools import compact, summarize
from serviceharness import wait_for_address

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=2,
    num_rounds=16,
    error_counts=(2, 3),
    probabilities=(0.5, 1.0),
    profilers=("Naive", "HARP-U"),
)

CASE_CONFIG = CaseStudyConfig(
    num_codes=2,
    words_per_stratum=2,
    num_rounds=32,
    probabilities=(0.5,),
    rbers=(1e-4,),
    max_at_risk=3,
    profilers=("Naive", "HARP-U"),
)

SOCKET_TIMEOUT = 120.0


# ----------------------------------------------------------------------
# Coverage and ETA math
# ----------------------------------------------------------------------


class TestGridShape:
    def test_sweep_config_object_and_header_dict_agree(self):
        from repro.experiments.store import config_to_dict

        from_object = grid_shape(CONFIG)
        from_dict = grid_shape(config_to_dict(CONFIG))
        assert from_object == from_dict
        dims, total = from_object
        assert total == 2 * 2 * 2
        assert dims == [
            ("error counts", 2),
            ("probabilities", 2),
            ("profilers", 2),
        ]

    def test_case_config_strata(self):
        dims, total = grid_shape(CASE_CONFIG)
        assert dims == [("probabilities", 1), ("codes", 2), ("strata", 2)]
        assert total == 1 * 2 * 2

    def test_unrecognized_shapes(self):
        assert grid_shape(None) is None
        assert grid_shape({"unrelated": 1}) is None
        assert grid_shape(object()) is None

    def test_format_grid(self):
        dims, total = grid_shape(CONFIG)
        text = format_grid(dims, total)
        assert "2 error counts" in text
        assert "2 profilers" in text
        assert text.endswith("= 8 cells")


class TestEta:
    def test_no_rate_yet(self):
        assert estimate_eta(0, 10, 0.0) is None
        assert estimate_eta(0, 10, 5.0) is None
        assert estimate_eta(4, 10, 0.0) is None

    def test_complete_grid_is_zero(self):
        assert estimate_eta(10, 10, 100.0) == 0.0
        assert estimate_eta(12, 10, 100.0) == 0.0

    def test_linear_extrapolation(self):
        # 4 cells in 8 seconds -> 2 s/cell -> 6 remaining = 12 s.
        assert estimate_eta(4, 10, 8.0) == pytest.approx(12.0)

    def test_format_eta(self):
        assert format_eta(None) == "unknown"
        assert format_eta(12.4) == "12s"
        assert format_eta(200) == "3m20s"
        assert format_eta(7500) == "2h05m"


class TestProgressReporter:
    def test_lines_show_coverage_and_eta(self):
        clock = iter([0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]).__next__
        stream = io.StringIO()
        reporter = ProgressReporter(4, interval=0.0, stream=stream, clock=clock)
        reporter.start(done=1, cell_seconds=5.0)
        reporter.completed(2.0)
        reporter.completed(2.0)
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("progress 1/4 cells (25.0%)")
        assert "5.0 cell-seconds recorded" in lines[0]
        assert "progress 3/4 cells (75.0%)" in lines[2]
        # Wall-clock rate: 2 fresh cells over the elapsed window, 1 left.
        assert "eta ~" in lines[2]

    def test_interval_suppresses_intermediate_lines(self):
        ticks = iter([float(i) for i in range(100)]).__next__
        stream = io.StringIO()
        reporter = ProgressReporter(50, interval=1000.0, stream=stream, clock=ticks)
        reporter.start()
        for _ in range(49):
            reporter.completed(0.1)
        lines = stream.getvalue().splitlines()
        # Opening line plus nothing until... not the final cell yet.
        assert len(lines) == 1
        reporter.completed(0.1)  # the last cell always reports
        assert stream.getvalue().splitlines()[-1].startswith("progress 50/50")

    def test_finish_prints_closing_line_despite_interval_gate(self):
        ticks = iter([float(i) for i in range(20)]).__next__
        stream = io.StringIO()
        reporter = ProgressReporter(4, interval=1000.0, stream=stream, clock=ticks)
        reporter.start()
        for _ in range(3):
            reporter.completed(0.1)
        reporter.finish(quarantined=1)
        last = stream.getvalue().splitlines()[-1]
        assert last.startswith("progress 3/4 cells (75.0%)")
        assert "1 shard(s) quarantined" in last

    def test_finish_is_noop_after_a_complete_grid(self):
        ticks = iter([float(i) for i in range(20)]).__next__
        stream = io.StringIO()
        reporter = ProgressReporter(2, interval=0.0, stream=stream, clock=ticks)
        reporter.start()
        reporter.completed()
        reporter.completed()
        before = stream.getvalue()
        reporter.finish()
        assert stream.getvalue() == before

    def test_run_sweep_progress_lines_on_stderr(self, capsys):
        run_sweep(CONFIG, progress=0.0)
        err = capsys.readouterr().err
        assert "progress 0/8 cells (0.0%)" in err
        assert "progress 8/8 cells (100.0%)" in err

    def test_progress_off_is_silent(self, capsys):
        run_sweep(CONFIG)
        assert capsys.readouterr().err == ""


# ----------------------------------------------------------------------
# Status protocol
# ----------------------------------------------------------------------


def _serve_snapshot(snapshot: dict) -> StatusServer:
    return StatusServer(("127.0.0.1", 0), lambda: snapshot).start()


class TestStatusProtocol:
    SNAPSHOT = {
        "format": STATUS_FORMAT,
        "elapsed": 3.5,
        "fleet": {"size": 2, "joined_total": 3, "expected": 2},
        "workers": [
            {"pid": 11, "heartbeat_age": 0.25, "chunk": 4},
            {"pid": 12, "heartbeat_age": 1.5, "chunk": None},
        ],
        "chunks": {"total": 9, "done": 5, "pending": 2, "in_flight": 2},
        "retries": 1,
        "quarantined": [3],
    }

    def test_roundtrip(self):
        server = _serve_snapshot(self.SNAPSHOT)
        try:
            assert read_status(server.address) == self.SNAPSHOT
            host, port = server.address
            assert read_status(f"{host}:{port}") == self.SNAPSHOT
        finally:
            server.close()

    def test_snapshot_is_one_json_line_for_any_client(self):
        """The promise to curl/nc: one line, valid JSON, then EOF."""
        server = _serve_snapshot(self.SNAPSHOT)
        try:
            with socket.create_connection(server.address, timeout=5) as sock:
                raw = b""
                while not raw.endswith(b"\n"):
                    data = sock.recv(1 << 16)
                    if not data:
                        break
                    raw += data
                assert sock.recv(1024) == b""  # server closes after the line
        finally:
            server.close()
        assert raw.count(b"\n") == 1
        assert json.loads(raw) == self.SNAPSHOT

    def test_wrong_format_rejected(self):
        server = _serve_snapshot({"format": "not-a-status"})
        try:
            with pytest.raises(ValueError, match="unknown status format"):
                read_status(server.address)
        finally:
            server.close()

    def test_nothing_listening_raises_oserror(self):
        with pytest.raises(OSError):
            read_status("127.0.0.1:9", timeout=1.0)

    def test_render_mentions_every_operational_signal(self):
        text = render_status(self.SNAPSHOT)
        assert "2 worker(s) connected" in text
        assert "3 joined in total" in text
        assert "2 expected" in text
        assert "pid 11 · chunk 4 in flight" in text
        assert "pid 12 · idle" in text
        assert "5/9 done · 2 queued · 2 in flight" in text
        assert "1 chunk requeue(s)" in text
        assert "quarantine chunk(s) 3" in text

    def test_render_shows_elastic_churn_and_auto_retry_fields(self):
        """The elastic-transport snapshot fields render; their absence
        (a pre-elastic server) must not break rendering either — the
        schema is additive."""
        snapshot = {
            **self.SNAPSHOT,
            "wire": "v1",
            "fleet": {**self.SNAPSHOT["fleet"], "left_total": 1},
            "chunks": {**self.SNAPSHOT["chunks"], "deferred": 2},
            "healed": 3,
        }
        text = render_status(snapshot)
        assert "wire v1" in text
        assert "1 drained out" in text
        assert "2 deferred for auto-retry" in text
        assert "3 shard(s) recovered" in text
        # The legacy snapshot (no churn fields) stays renderable.
        legacy = render_status(self.SNAPSHOT)
        assert "drained out" not in legacy
        assert "auto-retry" not in legacy

    def test_status_cli_renders_and_exits_zero(self, capsys):
        server = _serve_snapshot(self.SNAPSHOT)
        try:
            host, port = server.address
            assert status_main([f"{host}:{port}"]) == 0
            out = capsys.readouterr().out
            assert "fleet    2 worker(s)" in out
            assert main(["status", f"{host}:{port}", "--json"]) == 0
            assert json.loads(capsys.readouterr().out) == self.SNAPSHOT
        finally:
            server.close()

    def test_status_cli_fails_cleanly_when_unreachable(self, capsys):
        assert status_main(["127.0.0.1:9", "--timeout", "1"]) == 1
        assert "repro status:" in capsys.readouterr().err


class TestStatusV2:
    """The repro-status-v2 bump: additive fields, v1 stays readable."""

    def test_v1_snapshot_still_reads_and_renders(self, capsys):
        """Compat promise of the format bump: ``python -m repro status``
        pointed at a pre-history server keeps working unchanged."""
        v1 = {**TestStatusProtocol.SNAPSHOT, "format": STATUS_FORMAT_V1}
        server = _serve_snapshot(v1)
        try:
            assert read_status(server.address) == v1
            host, port = server.address
            assert status_main([f"{host}:{port}"]) == 0
            out = capsys.readouterr().out
            assert "fleet    2 worker(s)" in out
            assert "5/9 done" in out
        finally:
            server.close()

    def test_v2_maps_and_history_render(self):
        snapshot = {
            **TestStatusProtocol.SNAPSHOT,
            "maps": {"active": 2, "opened": 5},
            "history": [{"t": 1.0, "done": 2}, {"t": 31.0, "done": 8}],
        }
        text = render_status(snapshot)
        assert "maps     2 campaign(s) active · 5 opened since start" in text
        assert "history  +6 chunk(s)" in text
        assert "(~12.0/min)" in text
        assert "2 sample(s)" in text
        # v1 snapshots simply lack the new lines — nothing breaks.
        legacy = render_status(TestStatusProtocol.SNAPSHOT)
        assert "maps" not in legacy
        assert "history" not in legacy

    def test_throughput_history_coalesces_and_caps(self):
        history = ThroughputHistory(maxlen=3, min_interval=1.0)
        history.record(0.0, 1)
        history.record(0.4, 2)  # within min_interval: folded into the last
        assert history.sample() == [{"t": 0.0, "done": 2}]
        for tick in (2.0, 4.0, 6.0, 8.0):
            history.record(tick, int(tick))
        assert len(history) == 3  # ring buffer, oldest samples dropped
        assert history.sample()[-1] == {"t": 8.0, "done": 8}
        assert history.sample()[0] == {"t": 4.0, "done": 4}


def _sleepy_item(value):
    time.sleep(0.25)
    return value * 2


class TestLiveStatus:
    """A running socket map serves real snapshots on --status-port."""

    def test_snapshot_during_live_map(self):
        backend = SocketBackend(spawn_workers=0, status_port=0, timeout=SOCKET_TIMEOUT)

        def worker():
            host, port = wait_for_address(backend)
            run_worker(f"{host}:{port}")

        threading.Thread(target=worker, daemon=True).start()
        iterator = backend.imap_unordered(_sleepy_item, list(range(4)), chunksize=1)
        first = next(iterator)  # map is live, at least one chunk done
        snapshot = read_status(backend.status_address)
        rest = list(iterator)
        assert snapshot["format"] == STATUS_FORMAT
        assert snapshot["chunks"]["total"] == 4
        assert snapshot["chunks"]["done"] >= 1
        assert snapshot["fleet"]["size"] == 1
        assert snapshot["fleet"]["joined_total"] == 1
        (worker_entry,) = snapshot["workers"]
        assert worker_entry["heartbeat_age"] >= 0.0
        assert snapshot["elapsed"] > 0.0
        assert snapshot["retries"] == 0
        assert snapshot["quarantined"] == []
        assert sorted([first] + rest) == [(i, i * 2) for i in range(4)]
        # The status listener dies with the map.
        assert backend.status_address is None

    def test_status_port_closed_between_maps(self):
        backend = SocketBackend(
            spawn_workers=1, status_port=0, timeout=SOCKET_TIMEOUT
        )
        assert backend.map(_sleepy_item, [1], chunksize=1) == [2]
        assert backend.status_address is None


# ----------------------------------------------------------------------
# Continue-past-quarantine
# ----------------------------------------------------------------------


def _exit_on_poison_item(item):
    """Hard-kills the worker process on the poison item (never returns)."""
    import os

    if item == "poison":
        os._exit(1)
    return item


class TestContinuePastQuarantine:
    def test_poison_chunk_skipped_rest_completes_keys_reported(self):
        """The acceptance scenario at the backend level: 3 workers, one
        poison chunk, budget 1 — the map must finish everything else and
        name the quarantined shard index."""
        backend = SocketBackend(
            spawn_workers=3,
            max_chunk_retries=1,
            continue_past_quarantine=True,
            timeout=SOCKET_TIMEOUT,
        )
        pairs = list(
            backend.imap_unordered(
                _exit_on_poison_item, ["ok", "poison", "fine"], chunksize=1
            )
        )
        assert sorted(pairs) == [(0, "ok"), (2, "fine")]
        assert backend.quarantined_shards == (1,)

    def test_next_map_resets_quarantine(self):
        backend = SocketBackend(
            spawn_workers=2,
            max_chunk_retries=0,
            continue_past_quarantine=True,
            timeout=SOCKET_TIMEOUT,
        )
        list(backend.imap_unordered(_exit_on_poison_item, ["poison", "a"], chunksize=1))
        assert backend.quarantined_shards == (0,)
        assert backend.map(_exit_on_poison_item, ["b", "c"], chunksize=1) == ["b", "c"]
        assert backend.quarantined_shards == ()

    def test_ordered_map_refuses_to_misalign_past_a_quarantine(self):
        """map()/imap() pair results with shards positionally; a skipped
        chunk must raise, never silently shift later results."""
        backend = SocketBackend(
            spawn_workers=2,
            max_chunk_retries=0,
            continue_past_quarantine=True,
            timeout=SOCKET_TIMEOUT,
        )
        with pytest.raises(RuntimeError, match="imap_unordered"):
            backend.map(_exit_on_poison_item, ["poison", "a", "b"], chunksize=1)

    def test_default_mode_still_aborts(self):
        backend = SocketBackend(
            spawn_workers=3, max_chunk_retries=1, timeout=SOCKET_TIMEOUT
        )
        with pytest.raises(RuntimeError, match="retry budget|poison"):
            backend.map(_exit_on_poison_item, ["ok", "poison"], chunksize=1)


class _QuarantiningBackend(ExecutionBackend):
    """Serial backend that sets one fixed shard index aside.

    Stands in for a socket fleet whose poison chunk exhausted its
    budget, so the *driver-level* quarantine contract (keys reported,
    markers stored, everything else bit-identical) is testable without
    spawning processes.
    """

    name = "quarantining-stub"

    def __init__(self, skip_index: int) -> None:
        self.skip_index = skip_index

    def imap(self, worker, shards, chunksize=1):
        for index, result in self.imap_unordered(worker, shards, chunksize):
            yield result

    def imap_unordered(self, worker, shards, chunksize=1):
        self.quarantined_shards = ()
        for index, shard in enumerate(shards):
            if index == self.skip_index:
                self.quarantined_shards = (index,)
                continue
            yield index, worker(shard)


class TestRunSweepQuarantine:
    """run_sweep end-to-end: grid completes minus the poison cell."""

    def test_keys_reported_rest_bit_identical_and_rerun_heals(self, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        reference = run_sweep(CONFIG)
        skipped_key = shard_grid(CONFIG)[3].key

        result = run_sweep(
            CONFIG, backend=_QuarantiningBackend(3), resume=str(store_path)
        )
        assert result.quarantined == (skipped_key,)
        assert skipped_key not in result.cells
        assert set(result.cells) == set(reference.cells) - {skipped_key}
        for key in result.cells:
            assert result.cells[key].words == reference.cells[key].words, key

        # The store remembers: summary names the pending key, load skips it.
        summary = summarize(store_path)
        assert summary.quarantined == [skipped_key]
        assert summary.cells_done == len(reference.cells) - 1
        assert ShardStore(store_path).keys() == set(result.cells)

        # Targeted re-run: only the quarantined cell computes, and the
        # merged result is bit-identical to the uninterrupted reference.
        healed = run_sweep(CONFIG, resume=str(store_path))
        assert healed.quarantined == ()
        assert healed.cells.keys() == reference.cells.keys()
        for key in reference.cells:
            assert healed.cells[key].words == reference.cells[key].words, key

        # The marker is resolved: summary drops it now, compact prunes it.
        assert summarize(store_path).quarantined == []
        raw = store_path.read_text()
        assert '"quarantine"' in raw
        compact(store_path)
        assert '"quarantine"' not in store_path.read_text()
        assert summarize(store_path).cells_done == len(reference.cells)

    def test_progress_closing_line_counts_quarantined(self, capsys):
        run_sweep(CONFIG, backend=_QuarantiningBackend(0), progress=0.0)
        last = capsys.readouterr().err.splitlines()[-1]
        assert "progress 7/8 cells (87.5%)" in last
        assert "1 shard(s) quarantined" in last

    def test_quarantine_marker_survives_unresolved_compact(self, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        run_sweep(CONFIG, backend=_QuarantiningBackend(0), resume=str(store_path))
        compact(store_path)
        assert '"quarantine"' in store_path.read_text()
        assert len(summarize(store_path).quarantined) == 1

    def test_merge_resolves_marker_against_other_machines_cells(self, tmp_path):
        """The cross-machine recovery recipe: machine A quarantined a
        cell, machine B computed it; the merged store has no marker."""
        from repro.experiments.storetools import merge

        left = tmp_path / "left.jsonl"
        right = tmp_path / "right.jsonl"
        run_sweep(CONFIG, backend=_QuarantiningBackend(0), resume=str(left))
        run_sweep(CONFIG, resume=str(right))  # the healthy machine
        merged = tmp_path / "campaign.jsonl"
        merge([left, right], merged)
        summary = summarize(merged)
        assert summary.quarantined == []
        assert summary.cells_done == summary.cells_total
        assert '"quarantine"' not in merged.read_text()


class TestFig10Quarantine:
    def test_aggregation_survives_and_rerun_heals(self, tmp_path):
        store_path = tmp_path / "fig10.jsonl"
        reference = fig10.run(CASE_CONFIG)
        skipped = fig10.shard_case_study(CASE_CONFIG)[1]
        skipped_key = (skipped.probability, skipped.code_index, skipped.count)

        result = fig10.run(
            CASE_CONFIG, backend=_QuarantiningBackend(1), resume=str(store_path)
        )
        assert result.quarantined == (skipped_key,)
        # Every panel still renders (averaged over the completed words).
        assert result.before.keys() == reference.before.keys()
        fig10.render(result)

        summary = summarize(store_path)
        assert summary.quarantined == [skipped_key]

        healed = fig10.run(CASE_CONFIG, resume=str(store_path))
        assert healed == reference
        assert summarize(store_path).quarantined == []

    def test_fig10_progress_lines(self, capsys):
        fig10.run(CASE_CONFIG, progress=0.0)
        err = capsys.readouterr().err
        assert "progress 0/4 shards (0.0%)" in err
        assert "progress 4/4 shards (100.0%)" in err


class TestQuarantineReport:
    def test_names_every_key_and_the_recipe(self):
        text = quarantine_report([(2, 0.5, "Naive"), (3, 1.0, "BEEP")], unit="sweep cell")
        assert "QUARANTINED 2 sweep cell(s)" in text
        assert "(2, 0.5, 'Naive')" in text
        assert "(3, 1.0, 'BEEP')" in text
        assert "--resume" in text
        assert "docs/operations.md" in text


class TestCliFlags:
    """The new hardening flags follow the socket-only misuse rules."""

    def test_status_port_requires_socket_backend(self, capsys):
        with pytest.raises(SystemExit, match="socket"):
            main(["fig6", "--scale", "unit", "--status-port", "7072"])
        capsys.readouterr()

    def test_continue_past_quarantine_requires_socket_backend(self, capsys):
        with pytest.raises(SystemExit, match="socket"):
            main(
                [
                    "fig6",
                    "--scale",
                    "unit",
                    "--backend",
                    "process",
                    "--continue-past-quarantine",
                ]
            )
        capsys.readouterr()

    def test_flags_reach_the_socket_backend(self):
        from repro.cli import _execution_backend, build_parser

        args = build_parser().parse_args(
            [
                "fig6",
                "--backend",
                "socket",
                "--jobs",
                "2",
                "--status-port",
                "7072",
                "--continue-past-quarantine",
            ]
        )
        backend = _execution_backend(args)
        assert isinstance(backend, SocketBackend)
        assert backend.status_port == 7072
        assert backend.continue_past_quarantine is True

    def test_incomplete_grid_exits_3(self, monkeypatch, capsys):
        """A quarantining run must not exit 0: scripts chained on && would
        publish the partial exhibit as success."""
        import repro.cli as cli
        from repro.experiments.runner import SweepResult

        def quarantining_run_sweep(config, **kwargs):
            full = run_sweep(config)
            key = next(iter(full.cells))
            cells = {k: v for k, v in full.cells.items() if k != key}
            return SweepResult(
                config=config, cells=cells, timings=full.timings, quarantined=(key,)
            )

        monkeypatch.setattr(cli, "run_sweep", quarantining_run_sweep)
        assert cli.main(["fig6", "--scale", "unit"]) == cli.EXIT_INCOMPLETE_GRID
        out = capsys.readouterr().out
        assert "QUARANTINED 1 sweep cell(s)" in out
        assert "rendition skipped" in out

    def test_progress_flag_is_backend_agnostic(self, capsys):
        assert main(["fig6", "--scale", "unit", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "Fig 6 panel" in captured.out
        assert "progress 20/20 cells (100.0%)" in captured.err
        assert "progress" not in captured.out  # stdout stays the rendition
