"""Unit and property tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import gf2


def random_matrix(rows, cols, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)


matrix_strategy = st.builds(
    random_matrix,
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestBasicOps:
    def test_identity(self):
        eye = gf2.identity(3)
        assert (gf2.matmul(eye, eye) == eye).all()

    def test_matmul_mod2(self):
        a = np.array([[1, 1]], dtype=np.uint8)
        b = np.array([[1], [1]], dtype=np.uint8)
        assert gf2.matmul(a, b)[0, 0] == 0  # 1 + 1 == 0 in GF(2)

    def test_add_is_xor(self):
        a = np.array([1, 0, 1], dtype=np.uint8)
        b = np.array([1, 1, 0], dtype=np.uint8)
        assert gf2.add(a, b).tolist() == [0, 1, 1]

    def test_matvec(self):
        a = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        v = np.array([1, 1], dtype=np.uint8)
        assert gf2.matvec(a, v).tolist() == [1, 0]

    def test_is_bit_matrix(self):
        assert gf2.is_bit_matrix(np.array([[0, 1]]))
        assert not gf2.is_bit_matrix(np.array([[2]]))


class TestRowReduce:
    def test_identity_is_fixed_point(self):
        eye = gf2.identity(4)
        reduced, pivots = gf2.row_reduce(eye)
        assert (reduced == eye).all()
        assert pivots == [0, 1, 2, 3]

    def test_input_not_mutated(self):
        a = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        original = a.copy()
        gf2.row_reduce(a)
        assert (a == original).all()

    @settings(max_examples=50)
    @given(matrix_strategy)
    def test_rref_pivot_columns_are_unit(self, matrix):
        reduced, pivots = gf2.row_reduce(matrix)
        for row_index, col in enumerate(pivots):
            column = reduced[:, col]
            assert column[row_index] == 1
            assert column.sum() == 1

    @settings(max_examples=50)
    @given(matrix_strategy)
    def test_rank_bounds(self, matrix):
        r = gf2.rank(matrix)
        assert 0 <= r <= min(matrix.shape)


class TestSolve:
    def test_solves_consistent_system(self):
        a = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        b = np.array([1, 0], dtype=np.uint8)
        x = gf2.solve(a, b)
        assert x is not None
        assert (gf2.matvec(a, x) == b).all()

    def test_detects_inconsistency(self):
        a = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        b = np.array([0, 1], dtype=np.uint8)
        assert gf2.solve(a, b) is None
        assert not gf2.is_consistent(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf2.solve(np.zeros((2, 2), dtype=np.uint8), np.zeros(3, dtype=np.uint8))

    @settings(max_examples=60)
    @given(matrix_strategy, st.integers(min_value=0, max_value=2**32 - 1))
    def test_solution_satisfies_system(self, matrix, seed):
        rng = np.random.default_rng(seed)
        x_true = rng.integers(0, 2, size=matrix.shape[1], dtype=np.uint8)
        b = gf2.matvec(matrix, x_true)
        x = gf2.solve(matrix, b)
        assert x is not None, "system constructed from a solution must be consistent"
        assert (gf2.matvec(matrix, x) == b).all()


class TestNullspace:
    @settings(max_examples=50)
    @given(matrix_strategy)
    def test_nullspace_vectors_map_to_zero(self, matrix):
        basis = gf2.nullspace(matrix)
        for vector in basis:
            assert not gf2.matvec(matrix, vector).any()

    @settings(max_examples=50)
    @given(matrix_strategy)
    def test_rank_nullity(self, matrix):
        assert gf2.rank(matrix) + gf2.nullspace(matrix).shape[0] == matrix.shape[1]

    def test_full_rank_matrix_has_trivial_nullspace(self):
        assert gf2.nullspace(gf2.identity(5)).shape[0] == 0
