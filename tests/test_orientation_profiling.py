"""End-to-end tests of anti-cell orientation through analysis + profiling.

The paper assumes all true cells; real DRAM mixes true and anti cells, so
the library supports arbitrary orientations.  The invariant under test:
data-dependence flips with orientation — with anti cells the all-zeros
pattern is the vulnerable state — but the profiling story (HARP covers the
direct-risk set; ground truth bounds everything) is orientation-invariant.
"""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.hamming import random_sec_code
from repro.memory.cells import CellOrientation, all_true_cells, alternating_cells
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.profiling.harp import HarpUProfiler
from repro.profiling.naive import NaiveProfiler
from repro.profiling.runner import simulate_word


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(111))


def all_anti(n):
    return CellOrientation(np.zeros(n, dtype=np.uint8))


class TestGroundTruthWithOrientation:
    def test_default_matches_all_true(self, code):
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(0))
        default = compute_ground_truth(code, profile)
        explicit = compute_ground_truth(code, profile, all_true_cells(code.n))
        assert default.realizable_outcomes == explicit.realizable_outcomes

    def test_anti_data_cells_still_fully_realizable(self, code):
        """Anti data cells need stored 0 — data bits are free, so data-only
        patterns stay realizable under any orientation."""
        profile = WordErrorProfile((3, 9, 20), (0.5, 0.5, 0.5))
        truth = compute_ground_truth(code, profile, all_anti(code.n))
        assert len(truth.realizable_outcomes) == 7  # all nonempty subsets

    def test_mixed_orientation_constrains_parity_patterns(self, code):
        """A pattern needing c=1 and c=0 on parity cells simultaneously is
        a different linear system than all-true; both must be decided
        without error (smoke: no exception, outcome count bounded)."""
        parity = (code.k, code.k + 1, code.k + 2)
        profile = WordErrorProfile(parity, (0.5, 0.5, 0.5))
        for orientation in (all_true_cells(code.n), all_anti(code.n), alternating_cells(code.n)):
            truth = compute_ground_truth(code, profile, orientation)
            assert len(truth.realizable_outcomes) <= 7


class TestProfilingWithOrientation:
    def test_anti_cells_fail_under_zero_pattern(self, code):
        """With anti cells and p=1, the zero pattern charges every cell."""
        profile = WordErrorProfile((3, 9), (1.0, 1.0))
        profiler = NaiveProfiler(code, 1, pattern="zero")
        result = simulate_word(
            profiler, profile, 4, word_seed=1, orientation=all_anti(code.n)
        )
        for failed in result.failures_per_round:
            assert failed == (3, 9)

    def test_anti_cells_never_fail_under_ones_pattern(self, code):
        profile = WordErrorProfile((3, 9), (1.0, 1.0))
        profiler = NaiveProfiler(code, 1, pattern="charged")
        result = simulate_word(
            profiler, profile, 4, word_seed=1, orientation=all_anti(code.n)
        )
        assert all(failed == () for failed in result.failures_per_round)

    def test_harp_covers_direct_bits_under_any_orientation(self, code):
        """The random-with-inversion schedule charges every cell within two
        rounds regardless of orientation, so HARP still covers everything."""
        rng = np.random.default_rng(5)
        profile = sample_word_profile(code, 5, 1.0, rng)
        for orientation in (all_true_cells(code.n), all_anti(code.n), alternating_cells(code.n)):
            truth = compute_ground_truth(code, profile, orientation)
            profiler = HarpUProfiler(code, 9)
            result = simulate_word(
                profiler, profile, 8, word_seed=9, orientation=orientation
            )
            assert result.final_identified() == truth.direct_at_risk

    def test_identifications_sound_under_mixed_orientation(self, code):
        rng = np.random.default_rng(6)
        profile = sample_word_profile(code, 4, 0.5, rng)
        orientation = alternating_cells(code.n)
        truth = compute_ground_truth(code, profile, orientation)
        result = simulate_word(
            NaiveProfiler(code, 2), profile, 64, word_seed=2, orientation=orientation
        )
        assert result.final_identified() <= truth.post_correction_at_risk
