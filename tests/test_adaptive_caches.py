"""Tests of the adaptive-profiler cache layers.

Covers the PR's acceptance guarantee: the code-level caches
(crafted-pattern epochs, aliasing-pair tables, cross-run charge masks)
must never change a trace — hot and cold runs are bit-identical for BEEP
and the hybrid — and the memoized artifacts must actually be shared
across words that use the same code.
"""

import numpy as np
import pytest

from repro.analysis.atrisk import solve_charge_assignment
from repro.analysis.memo import (
    CraftedEpoch,
    beep_expansion_cache,
    cached_aliasing_pairs,
    cached_crafted_assignment,
    clear_analysis_caches,
    code_caches,
    crafted_pattern_cache,
)
from repro.ecc.code_analysis import aliasing_pairs_for_target
from repro.ecc.hamming import random_sec_code
from repro.experiments.runner import clear_engine_caches
from repro.memory.error_model import sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import simulate_word

ADAPTIVE = ("BEEP", "HARP-A+BEEP")


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_engine_caches()
    clear_analysis_caches()
    yield
    clear_engine_caches()
    clear_analysis_caches()


def _trace(profiler_name, code, profile, rounds=64, seed=17):
    profiler = PROFILER_REGISTRY[profiler_name](code, seed=seed)
    return simulate_word(profiler, profile, rounds, seed)


class TestHotColdBitIdentity:
    @pytest.mark.parametrize("profiler_name", ADAPTIVE)
    def test_trace_identical_with_warm_caches(self, profiler_name):
        code = random_sec_code(32, np.random.default_rng(3))
        profile = sample_word_profile(code, 5, 0.75, np.random.default_rng(4))
        cold = _trace(profiler_name, code, profile)
        assert crafted_pattern_cache.stats.misses > 0
        hot = _trace(profiler_name, code, profile)
        assert cold.identified_per_round == hot.identified_per_round
        assert cold.observed_per_round == hot.observed_per_round
        assert cold.failures_per_round == hot.failures_per_round

    @pytest.mark.parametrize("profiler_name", ADAPTIVE)
    def test_trace_survives_cache_flush_between_runs(self, profiler_name):
        """Clearing every cache between runs must not change results."""
        code = random_sec_code(32, np.random.default_rng(5))
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(6))
        first = _trace(profiler_name, code, profile)
        clear_engine_caches()
        clear_analysis_caches()
        second = _trace(profiler_name, code, profile)
        assert first.identified_per_round == second.identified_per_round
        assert first.failures_per_round == second.failures_per_round


class TestCraftedPatternMemo:
    def test_assignment_matches_straight_solver(self):
        code = random_sec_code(16, np.random.default_rng(8))
        anchors = (1, 3, 6)
        for pair in aliasing_pairs_for_target(code, 2):
            cached = cached_crafted_assignment(code, anchors, pair)
            direct = solve_charge_assignment(code, set(anchors) | set(pair))
            if direct is None:
                assert cached is None
            else:
                assert np.array_equal(cached, direct)

    def test_epoch_shared_across_lookups(self):
        code = random_sec_code(16, np.random.default_rng(9))
        epoch_a = code_caches(code).crafted_epoch((2, 5))
        epoch_b = code_caches(code).crafted_epoch((2, 5))
        assert epoch_a is epoch_b
        assert crafted_pattern_cache.stats.hits == 1

    def test_epoch_fast_path_matches_generic(self):
        """All-data systems short-circuit; the result must be canonical."""
        code = random_sec_code(24, np.random.default_rng(10))
        anchors = (0, 4, 7)
        data_pair = (2, 9)
        parity_pair = (1, code.k + 1)
        epoch = CraftedEpoch(code, anchors)
        for pair in (data_pair, parity_pair):
            expected = solve_charge_assignment(code, set(anchors) | set(pair))
            got = epoch.assignment(pair)
            if expected is None:
                assert got is None
            else:
                assert np.array_equal(got, expected)

    def test_assignments_are_read_only_and_copied_by_beep(self):
        code = random_sec_code(16, np.random.default_rng(11))
        anchors = (1, 2)
        pair = aliasing_pairs_for_target(code, 0)[0]
        shared = cached_crafted_assignment(code, anchors, pair)
        if shared is not None:
            with pytest.raises(ValueError):
                shared[0] = 1 - shared[0]

    def test_beep_patterns_are_defensive_copies(self):
        code = random_sec_code(32, np.random.default_rng(12))
        profiler = PROFILER_REGISTRY["BEEP"](code, seed=1)
        profiler.observe(0, np.zeros(code.k, dtype=np.uint8), frozenset({3}))
        first = profiler.pattern_for_round(1)
        first[:] = 1 - first  # mutating the returned pattern...
        profiler._next_hypothesis -= 1  # ...and re-requesting the same slot
        second = profiler.pattern_for_round(1)
        assert not np.array_equal(first, second)

    def test_epoch_base_is_shared_across_pairs(self):
        """One eliminated base serves every hypothesis pair of an epoch."""
        code = random_sec_code(16, np.random.default_rng(13))
        epoch = code_caches(code).crafted_epoch((1, 4))
        epoch.assignment((2, code.k))
        base = epoch._base
        assert base is not None
        epoch.assignment((3, code.k + 1))
        assert epoch._base is base


class TestAliasingPairMemo:
    def test_matches_pure_function(self):
        code = random_sec_code(16, np.random.default_rng(14))
        for target in range(code.n):
            assert cached_aliasing_pairs(code, target) == aliasing_pairs_for_target(
                code, target
            )

    def test_shared_across_words_of_one_code(self):
        """Two BEEP instances on one code expand each target only once."""
        code = random_sec_code(32, np.random.default_rng(15))
        zeros = np.zeros(code.k, dtype=np.uint8)
        first = PROFILER_REGISTRY["BEEP"](code, seed=1)
        first.observe(0, zeros, frozenset({2, 6}))
        misses = beep_expansion_cache.stats.misses
        assert misses == 2
        second = PROFILER_REGISTRY["BEEP"](code, seed=2)
        second.observe(0, zeros, frozenset({2, 6}))
        assert beep_expansion_cache.stats.misses == misses
        assert beep_expansion_cache.stats.hits >= 2
        assert first._hypotheses == second._hypotheses

    def test_rejects_out_of_range_target(self):
        code = random_sec_code(16, np.random.default_rng(16))
        with pytest.raises(IndexError):
            aliasing_pairs_for_target(code, code.n)

    def test_pairs_explain_the_target_syndrome(self):
        code = random_sec_code(16, np.random.default_rng(17))
        for target in (0, code.k, code.n - 1):
            for a, b in aliasing_pairs_for_target(code, target):
                assert a < b
                assert code.column_int(a) ^ code.column_int(b) == code.column_int(target)
