"""Tests of the ``repro-wire-v1`` frame codec (`repro.experiments.wire`).

Covers the tagged-node payload encoding (atoms, containers, bytes,
numpy arrays and scalars, dataclasses, callables by reference), the
authenticated frame format (HMAC rejection, bad magic, oversized and
torn frames), the per-connection session semantics (sequence-number
replay suppression, campaign scoping, MAC re-keying after the
handshake), and the legacy pickle session kept behind ``--wire pickle``.
"""

import dataclasses
import hashlib
import hmac
import socket
import struct

import numpy as np
import pytest

from repro.experiments import wire
from repro.experiments.wire import (
    MAGIC,
    MAX_FRAME,
    WIRE_CHOICES,
    WIRE_FORMAT,
    FrameRejected,
    PickleSession,
    StreamDesync,
    WireV1Session,
    decode_node,
    encode_node,
    make_session,
    pack_frame,
    read_frame,
)


def _roundtrip(value):
    blobs: list[bytes] = []
    node = encode_node(value, blobs)
    return decode_node(node, blobs)


def _module_fn(value):
    return value + 1


@dataclasses.dataclass
class _Point:
    x: int
    y: float
    label: str


class TestNodeCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            1 << 80,
            3.5,
            "grüße",
            "",
            (1, 2, ("nested", None)),
            [1, [2, [3]]],
            {"a": 1, 2: "b", (3, 4): [5]},
            {1, 2, 3},
            frozenset({"x", "y"}),
            b"\x00\xffbinary",
            bytearray(b"mutable"),
        ],
        ids=repr,
    )
    def test_roundtrip_atoms_and_containers(self, value):
        result = _roundtrip(value)
        if isinstance(value, bytearray):
            assert result == bytes(value)
        else:
            assert result == value
            assert type(result) is type(value) or isinstance(value, bool)

    def test_roundtrip_ndarray_bit_identical(self):
        array = np.arange(24, dtype=np.uint64).reshape(2, 3, 4) * 977
        result = _roundtrip(array)
        assert result.dtype == array.dtype
        assert result.shape == array.shape
        assert np.array_equal(result, array)

    def test_roundtrip_numpy_scalar(self):
        scalar = np.float64(0.1) + np.float64(0.2)
        result = _roundtrip(scalar)
        assert isinstance(result, np.float64)
        assert result == scalar  # bit-exact, not approx

    def test_roundtrip_nonfinite_floats(self):
        assert _roundtrip(float("inf")) == float("inf")
        assert _roundtrip(float("nan")) != _roundtrip(float("nan"))  # NaN

    def test_roundtrip_dataclass(self):
        point = _Point(x=3, y=2.5, label="corner")
        assert _roundtrip(point) == point

    def test_roundtrip_module_level_callable(self):
        assert _roundtrip(_module_fn) is _module_fn

    def test_local_callable_rejected_at_encode(self):
        def local(value):
            return value

        with pytest.raises(TypeError, match="module-level"):
            encode_node(local, [])

    def test_lambda_rejected_at_encode(self):
        with pytest.raises(TypeError, match="module-level"):
            encode_node(lambda v: v, [])

    def test_unknown_type_rejected_at_encode(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_node(object(), [])

    def test_unresolvable_reference_rejected_at_decode(self):
        with pytest.raises(FrameRejected, match="cannot resolve"):
            decode_node(["fn", "no.such.module:missing"], [])

    def test_non_dataclass_reference_refused(self):
        """A forged frame must not conjure arbitrary types via the
        dataclass path."""
        with pytest.raises(FrameRejected, match="not a dataclass"):
            decode_node(["dc", "os:system", [["command", "true"]]], [])

    def test_non_callable_reference_refused(self):
        with pytest.raises(FrameRejected, match="not callable"):
            decode_node(["fn", "os:sep"], [])

    def test_unknown_tag_rejected(self):
        with pytest.raises(FrameRejected, match="unknown payload node"):
            decode_node(["zz", 1], [])

    def test_malformed_node_rejected_not_crash(self):
        with pytest.raises(FrameRejected):
            decode_node(["nd", 0, "not-a-dtype", [2]], [b"1234"])


KEY = hashlib.sha256(b"test-key").digest()


class TestFrameFormat:
    def _pipe(self):
        return socket.socketpair()

    def test_frame_roundtrip(self):
        frame = pack_frame(
            "task", (7, [1, 2], b"blob"), campaign="c0ffee", seq=3, key=KEY
        )
        left, right = self._pipe()
        with left, right:
            left.sendall(frame)
            header, blobs = read_frame(right, KEY)
        assert header["kind"] == "task"
        assert header["campaign"] == "c0ffee"
        assert header["seq"] == 3
        assert decode_node(header["body"], blobs) == (7, [1, 2], b"blob")

    def test_clean_eof_returns_none(self):
        left, right = self._pipe()
        left.close()
        with right:
            assert read_frame(right, KEY) is None

    def test_wrong_key_rejects_frame_but_keeps_stream(self):
        """A MAC failure loses one frame, not the session: the next
        frame on the same stream still reads."""
        other = hashlib.sha256(b"other-key").digest()
        left, right = self._pipe()
        with left, right:
            left.sendall(pack_frame("heartbeat", (), campaign="", seq=1, key=other))
            left.sendall(pack_frame("heartbeat", (), campaign="", seq=2, key=KEY))
            with pytest.raises(FrameRejected, match="HMAC"):
                read_frame(right, KEY)
            header, _ = read_frame(right, KEY)
        assert header["seq"] == 2

    def test_corrupted_byte_fails_mac(self):
        frame = bytearray(
            pack_frame("result", (0, [1]), campaign="", seq=1, key=KEY)
        )
        frame[len(frame) // 2] ^= 0x40
        left, right = self._pipe()
        with left, right:
            left.sendall(bytes(frame))
            with pytest.raises(FrameRejected, match="HMAC"):
                read_frame(right, KEY)

    def test_bad_magic_is_desync(self):
        left, right = self._pipe()
        with left, right:
            # A pickle frame's length prefix is not RPW1: cross-wire
            # connections must die with a pointed message.
            left.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x2a" + b"x" * 64)
            with pytest.raises(StreamDesync, match="--wire"):
                read_frame(right, KEY)

    def test_oversized_lengths_are_desync_before_allocation(self):
        left, right = self._pipe()
        with left, right:
            left.sendall(struct.pack(">4sIQ", MAGIC, 1 << 28, MAX_FRAME))
            with pytest.raises(StreamDesync, match="desynchronized"):
                read_frame(right, KEY)

    def test_torn_preamble_is_desync(self):
        left, right = self._pipe()
        with left:
            left.sendall(MAGIC + b"\x00\x00")  # 6 of 16 preamble bytes
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(StreamDesync, match="mid-frame"):
                read_frame(right, KEY)
        right.close()

    def test_truncated_body_is_desync(self):
        frame = pack_frame("task", (1,), campaign="", seq=1, key=KEY)
        left, right = self._pipe()
        with left:
            left.sendall(frame[:-10])
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(StreamDesync):
                read_frame(right, KEY)
        right.close()

    def test_garbage_header_with_valid_mac_is_frame_rejection(self):
        """MAC passed but the JSON is broken: peer bug, frame consumed,
        stream aligned."""
        header = b"not json at all"
        preamble = struct.pack(">4sIQ", MAGIC, len(header), 0)
        data = preamble + header
        frame = data + hmac.new(KEY, data, hashlib.sha256).digest()
        left, right = self._pipe()
        with left, right:
            left.sendall(frame)
            with pytest.raises(FrameRejected, match="header"):
                read_frame(right, KEY)


class TestWireV1Session:
    def _linked(self, secret=None):
        a, b = socket.socketpair()
        return a, b, WireV1Session(secret), WireV1Session(secret)

    def test_send_recv_roundtrip(self):
        left, right, tx, rx = self._linked()
        with left, right:
            tx.send(left, ("hello", 123, None))
            assert rx.recv(right) == ("hello", 123, None)

    def test_duplicate_frame_skipped_silently(self):
        """A duplicated frame (chaos proxy, retransmit) must not surface
        twice — stale sequence numbers are dropped inside recv."""
        left, right, tx, rx = self._linked()
        with left, right:
            frame = pack_frame("result", (0, [5]), campaign="", seq=1, key=tx._key)
            left.sendall(frame)
            left.sendall(frame)  # exact duplicate
            tx._send_seq = 1
            tx.send(left, ("result", 1, [7]))
            assert rx.recv(right) == ("result", 0, [5])
            # The duplicate is invisible; the next message comes through.
            assert rx.recv(right) == ("result", 1, [7])

    def test_campaign_mismatch_rejects_frame(self):
        left, right, tx, rx = self._linked()
        tx.campaign = "campaign-a"
        rx.campaign = "campaign-b"
        with left, right:
            tx.send(left, ("task", 0, None, []))
            with pytest.raises(FrameRejected, match="campaign"):
                rx.recv(right)

    def test_handshake_then_token_rekey(self):
        """hello/welcome ride the default key; after ``secure()`` both
        sides MAC with the token-derived key, and a tokenless
        eavesdropper's session can no longer read the frames."""
        left, right, tx, rx = self._linked(secret="s3cret")
        snoop = WireV1Session(None)
        assert tx.mac_mode == "token"
        with left, right:
            tx.send(left, ("hello", 1, "s3cret"))
            assert rx.recv(right)[0] == "hello"  # default key: readable
            tx.secure()
            rx.secure()
            tx.send(left, ("heartbeat",))
            assert rx.recv(right) == ("heartbeat",)
            tx.send(left, ("heartbeat",))
            snoop._recv_seq = 0
            with pytest.raises(FrameRejected, match="HMAC"):
                snoop.recv(right)

    def test_tokenless_server_downgrades_tokened_worker(self):
        """The welcome's mac mode tells a tokened worker the server does
        not key on a secret; ``secure(mode)`` adopts the server's mode so
        both sides stay in sync (legacy handshake parity)."""
        worker = WireV1Session("optimistic-token")
        assert worker.secure("default") == "default"
        assert worker._key == wire._DEFAULT_KEY

    def test_non_tuple_body_rejected(self):
        left, right, tx, rx = self._linked()
        with left, right:
            frame = pack_frame("task", [1, 2], campaign="", seq=1, key=tx._key)
            left.sendall(frame)
            with pytest.raises(FrameRejected, match="payload tuple"):
                rx.recv(right)


class TestPickleSession:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        session = PickleSession()
        with left, right:
            session.send(left, ("task", 0, _module_fn, [1]))
            assert session.recv(right) == ("task", 0, _module_fn, [1])

    def test_unpicklable_frame_is_per_frame_rejection(self):
        left, right = socket.socketpair()
        session = PickleSession()
        with left, right:
            payload = b"\x80\x05not really pickle"
            left.sendall(struct.pack(">Q", len(payload)) + payload)
            session.send(left, ("heartbeat",))
            with pytest.raises(FrameRejected, match="unpickle"):
                session.recv(right)
            # Stream stays aligned: the next frame still reads.
            assert session.recv(right) == ("heartbeat",)

    def test_oversized_prefix_is_desync(self):
        left, right = socket.socketpair()
        session = PickleSession()
        with left, right:
            left.sendall(struct.pack(">Q", MAX_FRAME + 1))
            with pytest.raises(StreamDesync):
                session.recv(right)


class TestMakeSession:
    def test_factory(self):
        assert make_session("v1").name == "v1"
        assert make_session("pickle").name == "pickle"
        assert make_session("v1", "tok").mac_mode == "token"
        assert make_session("v1", None).mac_mode == "default"
        with pytest.raises(ValueError, match="unknown wire"):
            make_session("v2")

    def test_constants(self):
        assert WIRE_FORMAT == "repro-wire-v1"
        assert WIRE_CHOICES == ("v1", "pickle")
        assert len(MAGIC) == 4
