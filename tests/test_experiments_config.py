"""Unit tests for experiment configs and reporting helpers."""

import pytest

from repro.experiments.config import BENCH, FULL, UNIT, CaseStudyConfig, SweepConfig, scaled
from repro.experiments.reporting import log_round_ticks, percent, profiler_order


class TestSweepConfig:
    def test_presets_are_valid(self):
        for preset in (UNIT, BENCH, FULL):
            assert preset.num_codes >= 1
            assert preset.num_rounds >= 1

    def test_paper_defaults(self):
        config = SweepConfig()
        assert config.k == 64
        assert config.num_rounds == 128
        assert config.error_counts == (2, 3, 4, 5)
        assert config.probabilities == (0.25, 0.5, 0.75, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepConfig(num_codes=0)
        with pytest.raises(ValueError):
            SweepConfig(error_counts=(0,))
        with pytest.raises(ValueError):
            SweepConfig(probabilities=(0.0,))

    def test_scaled(self):
        config = scaled(FULL, 0.1)
        assert config.num_codes == 3
        assert config.words_per_code == 4
        assert config.num_rounds == FULL.num_rounds  # rounds untouched

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            scaled(UNIT, 0)


class TestCaseStudyConfig:
    def test_defaults(self):
        config = CaseStudyConfig()
        assert config.rbers == (1e-4, 1e-6, 1e-8)
        assert config.max_at_risk >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(rbers=(0.0,))
        with pytest.raises(ValueError):
            CaseStudyConfig(max_at_risk=1)


class TestReporting:
    def test_log_ticks_include_endpoints(self):
        assert log_round_ticks(128) == [1, 2, 4, 8, 16, 32, 64, 128]
        assert log_round_ticks(100) == [1, 2, 4, 8, 16, 32, 64, 100]
        assert log_round_ticks(1) == [1]

    def test_log_ticks_validation(self):
        with pytest.raises(ValueError):
            log_round_ticks(0)

    def test_percent(self):
        assert percent(0.25) == "25%"
        assert percent(1.0) == "100%"

    def test_profiler_order(self):
        shuffled = ["HARP-U", "Naive", "BEEP"]
        assert profiler_order(shuffled) == ["Naive", "BEEP", "HARP-U"]
