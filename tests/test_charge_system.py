"""Property tests of the incremental GF(2) charge-constraint solver.

The contract (``atrisk`` module docstring): both solve paths return the
*canonical* minimally-charged dataword, so eliminating a base system once
and extending it incrementally is bit-identical to solving the full
system from scratch — for every split and insertion order of the
constraints.  These tests pin that property over random SEC codes, which
is what makes the memo layer's shared eliminated bases safe.
"""

import numpy as np
import pytest
from randcases import charge_case, charge_cases

from repro.analysis.atrisk import (
    ChargeSystem,
    _solve_charge_ints,
    is_charge_realizable,
    solve_charge_assignment,
    unpack_dataword,
)
from repro.ecc import gf2w
from repro.ecc.hamming import random_sec_code


class TestIncrementalEquivalence:
    """ChargeSystem(A).with_charged(B) == straight _solve_charge_ints(A | B)."""

    @pytest.mark.parametrize("case", charge_cases(range(1000, 1040)), ids=str)
    def test_incremental_matches_batch(self, case):
        code, anchors, pair = case
        batch = _solve_charge_ints(code, anchors | set(pair), frozenset())
        incremental = ChargeSystem(code, tuple(sorted(anchors))).with_charged(pair)
        assert incremental.solution_int() == batch
        assert incremental.feasible == (batch is not None)

    @pytest.mark.parametrize("case", charge_cases(range(2000, 2020)), ids=str)
    def test_insertion_order_is_irrelevant(self, case):
        code, anchors, pair = case
        positions = list(anchors | set(pair))
        reference = ChargeSystem(code, tuple(sorted(positions))).solution_int()
        case.rng.shuffle(positions)
        assert ChargeSystem(code, tuple(positions)).solution_int() == reference

    @pytest.mark.parametrize("case", charge_cases(range(3000, 3020)), ids=str)
    def test_forced_zeros_match_batch(self, case):
        code, anchors, pair = case
        ones = anchors | set(pair)
        zeros = (
            frozenset(int(x) for x in case.rng.choice(code.n, size=2, replace=False))
            - ones
        )
        batch = _solve_charge_ints(code, ones, zeros)
        system = ChargeSystem(code, tuple(ones), tuple(zeros))
        assert system.solution_int() == batch

    @pytest.mark.parametrize("case", charge_cases(range(4000, 4020)), ids=str)
    def test_solution_array_matches_solver(self, case):
        code, anchors, pair = case
        charged = anchors | set(pair)
        array = ChargeSystem(code, tuple(charged)).solution()
        reference = solve_charge_assignment(code, charged)
        if reference is None:
            assert array is None
        else:
            assert np.array_equal(array, reference)
            # The solution must actually charge every constrained cell.
            codeword = code.encode(array)
            assert all(codeword[p] == 1 for p in charged)


class TestChargeSystemSemantics:
    @pytest.fixture()
    def code(self):
        return random_sec_code(16, np.random.default_rng(7))

    def test_with_charged_does_not_mutate_base(self, code):
        base = ChargeSystem(code, (0, 2))
        pivots_before = list(base._pivots)
        fork = base.with_charged((code.k, code.k + 1))
        assert base._pivots == pivots_before
        assert base.feasible
        assert fork is not base

    def test_conflicting_constraints_are_infeasible(self, code):
        system = ChargeSystem(code, (3,), (3,))
        assert not system.feasible
        assert system.solution_int() is None
        assert system.solution() is None

    def test_duplicate_constraints_are_harmless(self, code):
        once = ChargeSystem(code, (1, 4)).solution_int()
        twice = ChargeSystem(code, (1, 4, 1, 4)).solution_int()
        assert once == twice

    def test_out_of_range_positions_rejected(self, code):
        with pytest.raises(IndexError):
            ChargeSystem(code, (code.n,))
        with pytest.raises(IndexError):
            ChargeSystem(code, (-1,))
        with pytest.raises(IndexError):
            ChargeSystem(code).with_charged((code.n + 5,))

    def test_empty_system_solution_is_zero(self, code):
        system = ChargeSystem(code)
        assert system.feasible
        assert system.solution_int() == 0

    def test_realizability_agrees_with_feasibility(self, code):
        rng = np.random.default_rng(11)
        for _ in range(25):
            charged = frozenset(
                int(x) for x in rng.choice(code.n, size=int(rng.integers(1, 5)), replace=False)
            )
            assert ChargeSystem(code, tuple(charged)).feasible == is_charge_realizable(
                code, charged
            )


class TestPackedTierIdentity:
    """REPRO_GF2_TIER=packed swaps the basis representation, not the answer.

    The packed word basis must reproduce the integer-row basis bit for
    bit — same pivots, same feasibility, same canonical solution — for
    every anchor/pair/forced-zero split, or the CI packed leg could not
    promise tier-independent exhibits.
    """

    @pytest.mark.parametrize("case", charge_cases(range(5000, 5025)), ids=str)
    def test_packed_matches_integer_basis(self, case, monkeypatch):
        code, anchors, pair = case
        zeros = (
            frozenset(int(x) for x in case.rng.choice(code.n, size=2, replace=False))
            - anchors
            - set(pair)
        )
        monkeypatch.setenv("REPRO_GF2_TIER", "unpacked")
        reference = ChargeSystem(
            code, tuple(sorted(anchors)), tuple(sorted(zeros))
        ).with_charged(pair)
        assert isinstance(reference._basis, list)
        monkeypatch.setenv("REPRO_GF2_TIER", "packed")
        packed = ChargeSystem(
            code, tuple(sorted(anchors)), tuple(sorted(zeros))
        ).with_charged(pair)
        assert isinstance(packed._basis, gf2w.PackedBasis)
        assert packed.feasible == reference.feasible
        assert packed.solution_int() == reference.solution_int()
        assert packed._pivots == reference._pivots

    def test_solver_dispatch_under_packed_tier(self, monkeypatch):
        code, anchors, pair = charge_case(99)
        charged = anchors | set(pair)
        monkeypatch.setenv("REPRO_GF2_TIER", "unpacked")
        reference = _solve_charge_ints(code, charged, frozenset())
        monkeypatch.setenv("REPRO_GF2_TIER", "packed")
        assert _solve_charge_ints(code, charged, frozenset()) == reference


class TestUnpackDataword:
    def test_matches_per_bit_unpack(self):
        rng = np.random.default_rng(13)
        for k in (1, 7, 8, 9, 64, 100):
            bitmask = int(rng.integers(0, 1 << min(k, 62)))
            expected = np.array([(bitmask >> i) & 1 for i in range(k)], dtype=np.uint8)
            unpacked = unpack_dataword(k, bitmask)
            assert unpacked.dtype == np.uint8
            assert np.array_equal(unpacked, expected)
