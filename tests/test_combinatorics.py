"""Unit tests for Table 2 combinatorics."""

import numpy as np
import pytest

from repro.analysis.combinatorics import amplification_row, empirical_amplification
from repro.ecc.hamming import random_sec_code


class TestAmplificationRow:
    @pytest.mark.parametrize(
        "n,patterns,uncorrectable,post",
        [
            (1, 1, 0, 1),
            (2, 3, 1, 3),
            (3, 7, 4, 7),
            (4, 15, 11, 15),
            (8, 255, 247, 255),
        ],
    )
    def test_sec_rows_follow_formulas(self, n, patterns, uncorrectable, post):
        """Paper Table 2 formulas: 2^n - 1 patterns, 2^n - n - 1
        uncorrectable (the printed '2' for n=2 contradicts the paper's own
        formula; we follow the formula)."""
        row = amplification_row(n)
        assert row.unique_error_patterns == patterns
        assert row.uncorrectable_error_patterns == uncorrectable
        assert row.worst_case_post_correction_at_risk == post

    def test_dec_generalization(self):
        """With t=2, pairs become correctable as well."""
        row = amplification_row(4, correction_capability=2)
        assert row.uncorrectable_error_patterns == 15 - 4 - 6

    def test_zero_bits(self):
        row = amplification_row(0)
        assert row.unique_error_patterns == 0
        assert row.uncorrectable_error_patterns == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            amplification_row(-1)


class TestEmpiricalAmplification:
    def test_never_exceeds_worst_case(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            code = random_sec_code(64, rng)
            positions = tuple(sorted(int(p) for p in rng.choice(code.n, 4, replace=False)))
            measured = empirical_amplification(code, positions)
            assert measured <= amplification_row(4).worst_case_post_correction_at_risk

    def test_single_bit_measures_zero(self):
        code = random_sec_code(64, np.random.default_rng(1))
        assert empirical_amplification(code, (5,)) == 0

    def test_amplification_grows_with_n(self):
        """More at-risk bits admit more uncorrectable patterns on average."""
        rng = np.random.default_rng(2)
        code = random_sec_code(64, rng)
        small = np.mean(
            [
                empirical_amplification(
                    code, tuple(sorted(int(p) for p in rng.choice(code.n, 2, replace=False)))
                )
                for _ in range(20)
            ]
        )
        large = np.mean(
            [
                empirical_amplification(
                    code, tuple(sorted(int(p) for p in rng.choice(code.n, 5, replace=False)))
                )
                for _ in range(20)
            ]
        )
        assert large > small
