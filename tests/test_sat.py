"""Unit and property tests for the mini DPLL SAT solver."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import Cnf
from repro.sat.dpll import is_satisfiable, solve


def brute_force_satisfiable(cnf: Cnf) -> bool:
    """Reference oracle: try all assignments (small formulas only)."""
    for bits in product([False, True], repeat=cnf.num_variables):
        assignment = {i + 1: bits[i] for i in range(cnf.num_variables)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            return True
    return False


def random_cnf(num_vars: int, clause_specs: list[list[int]]) -> Cnf:
    cnf = Cnf(num_variables=num_vars)
    for spec in clause_specs:
        cnf.add_clause(spec)
    return cnf


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert is_satisfiable(Cnf())

    def test_empty_clause_is_unsat(self):
        cnf = Cnf()
        cnf.add_clause([])
        assert not is_satisfiable(cnf)

    def test_unit_contradiction(self):
        cnf = Cnf()
        cnf.add_unit(1)
        cnf.add_unit(-1)
        assert not is_satisfiable(cnf)

    def test_simple_model(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        cnf.add_unit(-1)
        model = solve(cnf)
        assert model is not None
        assert model[1] is False
        assert model[2] is True

    def test_model_covers_unconstrained_variables(self):
        cnf = Cnf()
        cnf.new_variables(3)
        cnf.add_unit(2)
        model = solve(cnf)
        assert set(model) == {1, 2, 3}

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Cnf().add_clause([0])

    def test_model_satisfies_formula(self):
        cnf = Cnf()
        cnf.add_clause([1, -2, 3])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-3, -1])
        model = solve(cnf)
        assert model is not None
        for clause in cnf.clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)


class TestXor:
    def test_xor_parity_one(self):
        cnf = Cnf()
        variables = cnf.new_variables(3)
        cnf.add_xor(variables, 1)
        model = solve(cnf)
        assert model is not None
        assert sum(model[v] for v in variables) % 2 == 1

    def test_xor_parity_zero(self):
        cnf = Cnf()
        variables = cnf.new_variables(4)
        cnf.add_xor(variables, 0)
        model = solve(cnf)
        assert sum(model[v] for v in variables) % 2 == 0

    def test_empty_xor_parity_one_unsat(self):
        cnf = Cnf()
        cnf.add_xor([], 1)
        assert not is_satisfiable(cnf)

    def test_conflicting_xors(self):
        cnf = Cnf()
        a, b = cnf.new_variables(2)
        cnf.add_xor([a, b], 0)
        cnf.add_xor([a, b], 1)
        assert not is_satisfiable(cnf)

    def test_invalid_parity(self):
        with pytest.raises(ValueError):
            Cnf().add_xor([1], 2)


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.lists(
                        st.integers(min_value=1, max_value=n).flatmap(
                            lambda v: st.sampled_from([v, -v])
                        ),
                        min_size=1,
                        max_size=3,
                    ),
                    max_size=8,
                ),
            )
        )
    )
    def test_agrees_with_oracle(self, spec):
        num_vars, clause_specs = spec
        cnf = random_cnf(num_vars, clause_specs)
        assert is_satisfiable(cnf) == brute_force_satisfiable(cnf)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.lists(
                        st.integers(min_value=1, max_value=n).flatmap(
                            lambda v: st.sampled_from([v, -v])
                        ),
                        min_size=1,
                        max_size=3,
                    ),
                    max_size=8,
                ),
            )
        )
    )
    def test_returned_models_are_valid(self, spec):
        num_vars, clause_specs = spec
        cnf = random_cnf(num_vars, clause_specs)
        model = solve(cnf)
        if model is not None:
            for clause in cnf.clauses:
                assert any(model[abs(lit)] == (lit > 0) for lit in clause)
