"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    as_bit_array,
    bits_to_int,
    int_to_bits,
    invert_bits,
    pack_positions,
    popcount,
    positions_to_mask,
)


class TestIntToBits:
    def test_zero(self):
        assert int_to_bits(0, 4).tolist() == [0, 0, 0, 0]

    def test_little_endian_order(self):
        assert int_to_bits(0b1, 3).tolist() == [1, 0, 0]
        assert int_to_bits(0b100, 3).tolist() == [0, 0, 1]

    def test_zero_width(self):
        assert int_to_bits(0, 0).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_max_value_fits(self):
        assert int_to_bits(15, 4).tolist() == [1, 1, 1, 1]


class TestBitsToInt:
    def test_empty(self):
        assert bits_to_int(np.array([], dtype=np.uint8)) == 0

    def test_known_value(self):
        assert bits_to_int(np.array([0, 1, 1], dtype=np.uint8)) == 6

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 20)) == value


class TestPopcountAndMasks:
    def test_popcount(self):
        assert popcount(np.array([1, 0, 1, 1], dtype=np.uint8)) == 3

    def test_positions_to_mask(self):
        assert positions_to_mask([1, 3], 4).tolist() == [0, 1, 0, 1]

    def test_positions_to_mask_out_of_range(self):
        with pytest.raises(IndexError):
            positions_to_mask([4], 4)

    def test_pack_positions_roundtrip(self):
        mask = positions_to_mask([0, 2, 5], 6)
        assert pack_positions(mask) == (0, 2, 5)

    @given(st.sets(st.integers(min_value=0, max_value=31), max_size=10))
    def test_mask_pack_inverse(self, positions):
        mask = positions_to_mask(positions, 32)
        assert set(pack_positions(mask)) == positions


class TestInvertAndValidate:
    def test_invert(self):
        assert invert_bits(np.array([1, 0], dtype=np.uint8)).tolist() == [0, 1]

    def test_invert_is_involution(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        assert invert_bits(invert_bits(bits)).tolist() == bits.tolist()

    def test_as_bit_array_accepts_list(self):
        assert as_bit_array([0, 1, 1]).dtype == np.uint8

    def test_as_bit_array_rejects_non_binary(self):
        with pytest.raises(ValueError):
            as_bit_array([0, 2])
