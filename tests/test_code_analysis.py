"""Unit tests for structural code analysis."""

import numpy as np
import pytest

from repro.ecc.bch import bch_dec_code
from repro.ecc.code_analysis import (
    minimum_distance,
    miscorrection_profile,
    syndrome_coverage,
    weight_distribution,
)
from repro.ecc.hamming import paper_example_code, random_sec_code
from repro.ecc.simple import single_parity_code


class TestMinimumDistance:
    def test_hamming_7_4(self):
        assert minimum_distance(paper_example_code()) == 3

    def test_parity_code(self):
        assert minimum_distance(single_parity_code(4)) == 2

    def test_bch_15_7(self):
        assert minimum_distance(bch_dec_code(7, m=4)) == 5

    def test_large_code_uses_column_search(self):
        code = random_sec_code(64, np.random.default_rng(1))
        assert minimum_distance(code, max_weight=4) >= 3

    def test_large_code_bound_exceeded(self):
        code = random_sec_code(64, np.random.default_rng(1))
        with pytest.raises(ValueError):
            minimum_distance(code, max_weight=2)  # d >= 3 for any SEC code


class TestWeightDistribution:
    def test_hamming_7_4_enumerator(self):
        # Classic (7,4) Hamming: 1 + 7z^3 + 7z^4 + z^7.
        distribution = weight_distribution(paper_example_code())
        assert distribution == {0: 1, 3: 7, 4: 7, 7: 1}

    def test_total_is_2_to_k(self):
        code = paper_example_code()
        assert sum(weight_distribution(code).values()) == 2**code.k

    def test_large_k_rejected(self):
        code = random_sec_code(64, np.random.default_rng(1))
        with pytest.raises(ValueError):
            weight_distribution(code)


class TestMiscorrectionProfile:
    def test_single_errors_never_miscorrect(self):
        code = paper_example_code()
        profile = miscorrection_profile(code, 1)
        assert profile.miscorrecting_patterns == 0

    def test_double_errors_on_perfect_hamming_always_miscorrect(self):
        """(7,4) is a perfect code: every double error aliases somewhere."""
        code = paper_example_code()
        profile = miscorrection_profile(code, 2)
        assert profile.total_patterns == 21
        assert profile.miscorrecting_patterns == 21
        assert profile.miscorrection_rate == 1.0

    def test_shortened_code_miscorrects_less(self):
        """A (71,64) code has unmatched syndromes, so some double errors
        are detected instead of miscorrected."""
        code = random_sec_code(64, np.random.default_rng(2))
        profile = miscorrection_profile(code, 2)
        assert 0 < profile.miscorrecting_patterns < profile.total_patterns

    def test_target_counts_align_with_totals(self):
        code = paper_example_code()
        profile = miscorrection_profile(code, 2)
        assert sum(profile.target_counts) == profile.miscorrecting_patterns

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            miscorrection_profile(paper_example_code(), 0)


class TestSyndromeCoverage:
    def test_perfect_code_covers_all(self):
        assert syndrome_coverage(paper_example_code()) == (7, 7)

    def test_71_64_covers_71_of_127(self):
        code = random_sec_code(64, np.random.default_rng(3))
        assert syndrome_coverage(code) == (71, 127)
