"""Cross-validation of the two independent simulation engines.

The per-word runner (integer-syndrome shortcuts) and the EINSim-style
batch engine (dense matrix decode) implement the same physics through
different code paths.  Their statistics must agree with each other and
with the exact enumeration — the strongest internal-consistency check in
the suite.
"""

import numpy as np
import pytest

from repro.analysis.probabilities import per_bit_post_error_probabilities
from repro.ecc.hamming import random_sec_code
from repro.memory.batch_engine import BatchInjectionEngine
from repro.memory.cells import CellOrientation
from repro.memory.error_model import WordErrorProfile, sample_word_profile


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(161))


class TestBatchEngineBasics:
    def test_shapes(self, code):
        profiles = [sample_word_profile(code, 3, 0.5, np.random.default_rng(i)) for i in range(4)]
        engine = BatchInjectionEngine(code, profiles)
        observation = engine.run_round(np.ones(code.k, dtype=np.uint8), np.random.default_rng(0))
        assert observation.raw_failures.shape == (4, code.n)
        assert observation.post_data_errors.shape == (4, code.k)

    def test_no_at_risk_bits_no_errors(self, code):
        engine = BatchInjectionEngine(code, [WordErrorProfile((), ())] * 3)
        observation = engine.run_round(np.ones(code.k, dtype=np.uint8), np.random.default_rng(0))
        assert not observation.raw_failures.any()
        assert not observation.post_data_errors.any()

    def test_discharged_cells_never_fail(self, code):
        engine = BatchInjectionEngine(code, [WordErrorProfile((3,), (1.0,))])
        data = np.ones(code.k, dtype=np.uint8)
        data[3] = 0
        observation = engine.run_round(data, np.random.default_rng(0))
        assert not observation.raw_failures[:, 3].any()

    def test_single_failures_are_corrected(self, code):
        engine = BatchInjectionEngine(code, [WordErrorProfile((3,), (1.0,))])
        observation = engine.run_round(np.ones(code.k, dtype=np.uint8), np.random.default_rng(0))
        assert observation.raw_failures[0, 3]
        assert not observation.post_data_errors.any()

    def test_anti_cell_orientation(self, code):
        orientation = CellOrientation(np.zeros(code.n, dtype=np.uint8))
        engine = BatchInjectionEngine(code, [WordErrorProfile((3,), (1.0,))], orientation)
        charged_round = engine.run_round(np.zeros(code.k, dtype=np.uint8), np.random.default_rng(0))
        assert charged_round.raw_failures[0, 3]
        discharged_round = engine.run_round(np.ones(code.k, dtype=np.uint8), np.random.default_rng(0))
        assert not discharged_round.raw_failures.any()

    def test_data_shape_validated(self, code):
        engine = BatchInjectionEngine(code, [WordErrorProfile((), ())])
        with pytest.raises(ValueError):
            engine.run_round(np.ones(code.k + 1, dtype=np.uint8), np.random.default_rng(0))


class TestCrossValidation:
    def test_matches_exact_enumeration(self, code):
        """Batch-estimated post-correction error rates converge to the
        exact per-bit probabilities."""
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(7))
        engine = BatchInjectionEngine(code, [profile] * 64)  # 64 iid copies
        data = np.ones(code.k, dtype=np.uint8)
        rates = engine.estimate_post_error_rates(data, num_rounds=120, rng=np.random.default_rng(1))
        pooled = rates.mean(axis=0)  # pool the iid copies
        exact = per_bit_post_error_probabilities(code, profile, data)
        for position in range(code.k):
            assert abs(pooled[position] - exact.get(position, 0.0)) < 0.05

    def test_raw_failure_rate_matches_bernoulli(self, code):
        """Marginal pre-correction failure rates equal p for charged bits."""
        profile = WordErrorProfile((5, 9), (0.25, 0.75))
        engine = BatchInjectionEngine(code, [profile] * 256)
        data = np.ones(code.k, dtype=np.uint8)
        total = np.zeros(code.n)
        rounds = 40
        rng = np.random.default_rng(3)
        for _ in range(rounds):
            total += engine.run_round(data, rng).raw_failures.mean(axis=0)
        assert abs(total[5] / rounds - 0.25) < 0.04
        assert abs(total[9] / rounds - 0.75) < 0.04
