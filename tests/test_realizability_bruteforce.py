"""Definitional validation of charge-realizability.

For small codes, enumerate *every* dataword and check directly whether
some pattern charges the requested cells.  This validates the GF(2)
feasibility theory (and therefore the ground-truth computation and the
Z3 substitution) against the raw definition — no linear algebra involved
on the reference side.
"""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.atrisk import compute_ground_truth, is_charge_realizable
from repro.ecc.hamming import random_sec_code
from repro.ecc.syndrome import analyze_error_pattern


def brute_force_realizable(code, charged_ones, forced_zeros=frozenset()):
    """Reference oracle: try all 2^k datawords."""
    for message in range(1 << code.k):
        data = np.array([(message >> i) & 1 for i in range(code.k)], dtype=np.uint8)
        codeword = code.encode(data)
        if all(codeword[b] == 1 for b in charged_ones) and all(
            codeword[b] == 0 for b in forced_zeros
        ):
            return True
    return False


@pytest.fixture(scope="module")
def small_code():
    return random_sec_code(8, np.random.default_rng(171))


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_realizability_matches_definition(self, data):
        code = random_sec_code(8, np.random.default_rng(data.draw(st.integers(0, 2**16))))
        num_ones = data.draw(st.integers(min_value=0, max_value=4))
        num_zeros = data.draw(st.integers(min_value=0, max_value=2))
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=code.n - 1),
                min_size=num_ones + num_zeros,
                max_size=num_ones + num_zeros,
                unique=True,
            )
        )
        ones = frozenset(positions[:num_ones])
        zeros = frozenset(positions[num_ones:])
        assert is_charge_realizable(code, ones, zeros) == brute_force_realizable(
            code, ones, zeros
        )

    def test_ground_truth_patterns_match_brute_force(self, small_code):
        """Every realizable pattern in the ground truth is realizable by
        the definition, and no realizable pattern is missing."""
        code = small_code
        rng = np.random.default_rng(5)
        at_risk = tuple(sorted(int(p) for p in rng.choice(code.n, 5, replace=False)))
        truth = compute_ground_truth(code, at_risk)
        reported = {outcome.pre_correction for outcome in truth.realizable_outcomes}
        expected = set()
        for size in range(1, len(at_risk) + 1):
            for subset in combinations(at_risk, size):
                if brute_force_realizable(code, frozenset(subset)):
                    expected.add(frozenset(subset))
        assert reported == expected

    def test_post_risk_set_matches_exhaustive_decode(self, small_code):
        """The post-correction at-risk set equals what exhaustively
        decoding every realizable pattern yields."""
        code = small_code
        rng = np.random.default_rng(6)
        at_risk = tuple(sorted(int(p) for p in rng.choice(code.n, 4, replace=False)))
        truth = compute_ground_truth(code, at_risk)
        expected = set()
        for size in range(1, len(at_risk) + 1):
            for subset in combinations(at_risk, size):
                pattern = frozenset(subset)
                if brute_force_realizable(code, pattern):
                    expected |= analyze_error_pattern(code, pattern).data_errors
        assert truth.post_correction_at_risk == frozenset(expected)
