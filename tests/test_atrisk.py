"""Unit and property tests for ground-truth at-risk computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.atrisk import (
    compute_ground_truth,
    is_charge_realizable,
    max_simultaneous_post_errors,
    predict_indirect_from_direct,
    solve_charge_assignment,
)
from repro.ecc.hamming import paper_example_code, random_sec_code
from repro.ecc.syndrome import analyze_error_pattern


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(51))


class TestRealizability:
    def test_data_bits_always_realizable(self, code):
        assert is_charge_realizable(code, {0, 5, 63})

    def test_empty_set_realizable(self, code):
        assert is_charge_realizable(code, set())

    def test_conflict_not_realizable(self, code):
        assert not is_charge_realizable(code, {3}, {3})

    def test_solution_charges_requested_cells(self, code):
        targets = {2, code.k + 1, code.k + 4}
        solution = solve_charge_assignment(code, targets)
        assert solution is not None
        codeword = code.encode(solution)
        for position in targets:
            assert codeword[position] == 1

    def test_out_of_range(self, code):
        with pytest.raises(IndexError):
            is_charge_realizable(code, {code.n})

    def test_all_parity_charged_is_decidable(self, code):
        """Charging every parity cell is a full-rank linear system."""
        targets = set(code.parity_positions)
        assert is_charge_realizable(code, targets) == (
            solve_charge_assignment(code, targets) is not None
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=6))
    def test_solution_when_realizable(self, seed, count):
        rng = np.random.default_rng(seed)
        local = random_sec_code(16, rng)
        positions = set(int(p) for p in rng.choice(local.n, size=count, replace=False))
        feasible = is_charge_realizable(local, positions)
        solution = solve_charge_assignment(local, positions)
        assert feasible == (solution is not None)


class TestGroundTruth:
    def test_direct_set_is_data_intersection(self, code):
        truth = compute_ground_truth(code, (1, 2, code.k + 3))
        assert truth.direct_at_risk == {1, 2}
        assert truth.parity_at_risk == {code.k + 3}

    def test_single_at_risk_bit_has_no_post_errors(self, code):
        """SEC always corrects a lone error: nothing is at post-risk."""
        truth = compute_ground_truth(code, (9,))
        assert truth.post_correction_at_risk == frozenset()
        assert truth.indirect_at_risk == frozenset()
        assert truth.observable_direct_at_risk == frozenset()

    def test_pair_exposes_both_bits(self, code):
        """Two at-risk data bits co-failing defeat SEC: both are at risk."""
        truth = compute_ground_truth(code, (9, 17))
        assert {9, 17} <= truth.post_correction_at_risk

    def test_post_is_union_of_direct_observable_and_indirect(self, code):
        truth = compute_ground_truth(code, (3, 12, 40, code.k + 2))
        assert truth.post_correction_at_risk == (
            truth.observable_direct_at_risk | truth.indirect_at_risk
        )

    def test_amplification_bounded_by_table2(self, code):
        """|post at-risk| <= 2^n - 1 (paper Table 2)."""
        positions = (3, 12, 40, 55)
        truth = compute_ground_truth(code, positions)
        assert len(truth.post_correction_at_risk) <= 2 ** len(positions) - 1

    def test_enumeration_bound_enforced(self, code):
        with pytest.raises(ValueError):
            compute_ground_truth(code, tuple(range(17)))

    def test_outcomes_only_realizable_patterns(self):
        """Patterns requiring contradictory parity charges are excluded."""
        code = paper_example_code()
        # Find a parity pair unrealizable together, if any exists: for the
        # (7,4) code charge constraints on two parity cells are two XOR
        # rows; all are jointly satisfiable, so every pattern is realizable
        # and the count must be 2^n - 1.
        truth = compute_ground_truth(code, (4, 5))
        assert len(truth.realizable_outcomes) == 3


class TestMaxSimultaneous:
    def test_zero_when_everything_identified(self, code):
        truth = compute_ground_truth(code, (3, 12, 40))
        assert max_simultaneous_post_errors(truth, frozenset()) == 0

    def test_full_missed_set_counts_worst_pattern(self, code):
        truth = compute_ground_truth(code, (3, 12, 40))
        worst = max_simultaneous_post_errors(truth, truth.post_correction_at_risk)
        # Three co-failing data bits remain three or four errors (with
        # a possible miscorrection) — never fewer than 3 missed.
        assert worst >= 3

    def test_harp_invariant_after_direct_coverage(self, code):
        """Paper §6: with all direct-risk bits identified, at most one
        (indirect) post-correction error can occur at a time."""
        for seed in range(10):
            rng = np.random.default_rng(seed)
            positions = tuple(sorted(int(p) for p in rng.choice(code.n, 5, replace=False)))
            truth = compute_ground_truth(code, positions)
            missed = truth.post_correction_at_risk - truth.direct_at_risk
            assert max_simultaneous_post_errors(truth, missed) <= 1


class TestPredictIndirect:
    def test_prediction_matches_pairwise_analysis(self, code):
        direct = frozenset({3, 12, 40})
        predicted = predict_indirect_from_direct(code, direct)
        expected = set()
        from itertools import combinations

        for size in (2, 3):
            for subset in combinations(sorted(direct), size):
                expected |= analyze_error_pattern(code, frozenset(subset)).indirect_errors
        assert predicted == expected

    def test_prediction_subset_of_ground_truth_indirect(self, code):
        positions = (3, 12, 40, 55)
        truth = compute_ground_truth(code, positions)
        predicted = predict_indirect_from_direct(code, truth.direct_at_risk)
        assert predicted <= truth.indirect_at_risk

    def test_parity_position_rejected(self, code):
        with pytest.raises(IndexError):
            predict_indirect_from_direct(code, {code.k})

    def test_fewer_than_two_bits_predict_nothing(self, code):
        assert predict_indirect_from_direct(code, {5}) == frozenset()
        assert predict_indirect_from_direct(code, set()) == frozenset()
