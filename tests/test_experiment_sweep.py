"""Integration tests of the sweep runner and Figs 6-9 reductions.

One UNIT-scale sweep is shared module-wide; the tests assert the paper's
qualitative claims hold on it:

* HARP-U achieves full direct coverage everywhere (Fig 6);
* HARP bootstraps no slower than the baselines (Fig 7);
* HARP-U identifies ~no indirect bits; HARP-A identifies at least as many
  (Fig 8);
* HARP's required secondary capability is bounded by 1 after profiling
  (Fig 9a) and is reached no later than the baselines reach it (Fig 9b).
"""

import pytest

from repro.experiments import fig6, fig7, fig8, fig9
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep

CONFIG = SweepConfig(
    num_codes=3,
    words_per_code=5,
    num_rounds=64,
    error_counts=(2, 4),
    probabilities=(0.5, 1.0),
)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(CONFIG)


class TestSweepStructure:
    def test_all_cells_present(self, sweep):
        expected = (
            len(CONFIG.error_counts) * len(CONFIG.probabilities) * len(CONFIG.profilers)
        )
        assert len(sweep.cells) == expected

    def test_words_per_cell(self, sweep):
        cell = sweep.cell(2, 0.5, "Naive")
        assert len(cell.words) == CONFIG.num_codes * CONFIG.words_per_code

    def test_deterministic(self):
        a = run_sweep(CONFIG)
        b = run_sweep(CONFIG)
        assert a.cell(2, 0.5, "Naive").words == b.cell(2, 0.5, "Naive").words

    def test_direct_totals_shared_across_profilers(self, sweep):
        """Fairness: every profiler sees the same words."""
        for probability in CONFIG.probabilities:
            totals = {
                name: [w.direct_total for w in sweep.cell(4, probability, name).words]
                for name in CONFIG.profilers
            }
            reference = totals["Naive"]
            for name in CONFIG.profilers:
                assert totals[name] == reference


class TestFig6Claims:
    def test_harp_reaches_full_direct_coverage(self, sweep):
        result = fig6.from_sweep(sweep)
        for error_count in CONFIG.error_counts:
            for probability in CONFIG.probabilities:
                assert result.final_coverage(error_count, probability, "HARP-U") == 1.0

    def test_harp_dominates_baselines_everywhere(self, sweep):
        result = fig6.from_sweep(sweep)
        for key, curve in result.curves.items():
            if key[2] == "HARP-U":
                continue
            harp_curve = result.curves[(key[0], key[1], "HARP-U")]
            for round_index in range(len(curve)):
                assert harp_curve[round_index] >= curve[round_index] - 1e-9

    def test_coverage_curves_monotone(self, sweep):
        result = fig6.from_sweep(sweep)
        for curve in result.curves.values():
            assert list(curve) == sorted(curve)

    def test_render_contains_panels(self, sweep):
        text = fig6.render(fig6.from_sweep(sweep))
        assert "Fig 6 panel" in text
        assert "HARP-U" in text


class TestFig7Claims:
    def test_harp_bootstraps_fastest(self, sweep):
        result = fig7.from_sweep(sweep)
        for error_count in CONFIG.error_counts:
            for probability in CONFIG.probabilities:
                harp = result.median(error_count, probability, "HARP-U")
                naive = result.median(error_count, probability, "Naive")
                assert harp <= naive

    def test_harp_never_censored(self, sweep):
        """HARP always identifies at least one direct error (paper §7.2.2)
        — given every word has a charged at-risk data bit and p >= 0.5."""
        result = fig7.from_sweep(sweep)
        for error_count in CONFIG.error_counts:
            assert result.censored_fraction(error_count, 1.0, "HARP-U") <= 0.1

    def test_render(self, sweep):
        assert "bootstrapping" in fig7.render(fig7.from_sweep(sweep))


class TestFig8Claims:
    def test_harp_u_identifies_no_indirect_bits(self, sweep):
        """HARP-U bypasses correction, so missed-indirect stays ~flat at its
        initial value (small overlap with direct bits allowed)."""
        result = fig8.from_sweep(sweep)
        for error_count in CONFIG.error_counts:
            for probability in CONFIG.probabilities:
                curve = result.curves[(error_count, probability, "HARP-U")]
                assert curve[-1] >= curve[0] * 0.8

    def test_harp_a_dominates_harp_u(self, sweep):
        result = fig8.from_sweep(sweep)
        for error_count in CONFIG.error_counts:
            for probability in CONFIG.probabilities:
                harp_a = result.curves[(error_count, probability, "HARP-A")]
                harp_u = result.curves[(error_count, probability, "HARP-U")]
                assert harp_a[-1] <= harp_u[-1] + 1e-9

    def test_missed_counts_non_increasing(self, sweep):
        result = fig8.from_sweep(sweep)
        for curve in result.curves.values():
            assert list(curve) == sorted(curve, reverse=True)


class TestFig9Claims:
    def test_harp_bounded_by_on_die_capability(self, sweep):
        """Paper Fig 9a: HARP words never exceed one simultaneous error
        after profiling completes (64 rounds at p>=0.5 suffice)."""
        result = fig9.from_sweep(sweep)
        for error_count in CONFIG.error_counts:
            for probability in CONFIG.probabilities:
                for name in ("HARP-U", "HARP-A"):
                    histogram = result.histograms[(error_count, probability, name)]
                    assert sum(histogram.counts[2:]) == 0, (error_count, probability, name)

    def test_harp_reaches_bound_no_later_than_naive(self, sweep):
        result = fig9.from_sweep(sweep)
        for error_count in CONFIG.error_counts:
            for probability in CONFIG.probabilities:
                harp = result.rounds_to_bound[(error_count, probability, "HARP-U", 1)]
                naive = result.rounds_to_bound[(error_count, probability, "Naive", 1)]
                if naive is not None:
                    assert harp is not None and harp <= naive

    def test_render(self, sweep):
        text = fig9.render(fig9.from_sweep(sweep))
        assert "Fig 9a" in text and "Fig 9b" in text
