"""Deep property-based tests of the library's core invariants.

These complement the per-module tests with randomized cross-cutting
checks: encoder/decoder consistency at batch scale, miscorrection
accounting against syndrome-space structure, and soundness of every
profiler's identifications against exact ground truth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.code_analysis import miscorrection_profile, syndrome_coverage
from repro.ecc.hamming import random_sec_code
from repro.ecc.syndrome import analyze_error_pattern
from repro.memory.error_model import WordErrorProfile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import simulate_word

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestBatchDecodeProperty:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(min_value=1, max_value=24))
    def test_batch_decode_matches_single_decode(self, seed, batch_size):
        """decode_batch must agree with decode for arbitrary corruption."""
        rng = np.random.default_rng(seed)
        code = random_sec_code(16, rng)
        data = rng.integers(0, 2, (batch_size, code.k), dtype=np.uint8)
        codewords = code.encode(data)
        # Corrupt 0-3 random positions per word.
        for row in range(batch_size):
            for position in rng.choice(code.n, size=rng.integers(0, 4), replace=False):
                codewords[row, position] ^= 1
        batch = code.decode_batch(codewords)
        for row in range(batch_size):
            assert (batch[row] == code.decode(codewords[row]).data).all()


class TestMiscorrectionAccounting:
    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_double_error_miscorrection_rate_matches_syndrome_space(self, seed):
        """For a SEC code, a double error miscorrects iff its syndrome
        matches some column; the aggregate rate must be consistent with
        pattern-level analysis."""
        rng = np.random.default_rng(seed)
        code = random_sec_code(12, rng)
        profile = miscorrection_profile(code, 2)
        from itertools import combinations

        expected = sum(
            1
            for a, b in combinations(range(code.n), 2)
            if analyze_error_pattern(code, frozenset({a, b})).flipped
        )
        assert profile.miscorrecting_patterns == expected

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_perfect_syndrome_coverage_implies_all_doubles_miscorrect(self, seed):
        rng = np.random.default_rng(seed)
        code = random_sec_code(12, rng)
        matched, total = syndrome_coverage(code)
        profile = miscorrection_profile(code, 2)
        if matched == total:
            assert profile.miscorrection_rate == 1.0


class TestProfilerSoundnessProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        seeds,
        st.integers(min_value=2, max_value=6),
        st.sampled_from([0.25, 0.5, 0.75, 1.0]),
        st.sampled_from(sorted(PROFILER_REGISTRY)),
    )
    def test_identifications_always_inside_ground_truth(
        self, seed, count, probability, profiler_name
    ):
        """No profiler, at any configuration, ever marks a bit that the
        exact ground truth says cannot err — zero false positives."""
        rng = np.random.default_rng(seed)
        code = random_sec_code(32, rng)
        positions = tuple(sorted(int(p) for p in rng.choice(code.n, count, replace=False)))
        profile = WordErrorProfile(positions, (probability,) * count)
        truth = compute_ground_truth(code, profile)
        universe = truth.post_correction_at_risk | truth.direct_at_risk
        result = simulate_word(
            PROFILER_REGISTRY[profiler_name](code, seed), profile, 32, word_seed=seed
        )
        assert result.final_identified() <= universe

    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(min_value=2, max_value=6))
    def test_harp_capability_bound_holds_at_any_coverage_level(self, seed, count):
        """The §5.1 bound is not just a full-coverage property: at *every*
        round, repairing HARP's current identified set plus the remaining
        direct bits leaves at most one concurrent error."""
        rng = np.random.default_rng(seed)
        code = random_sec_code(32, rng)
        positions = tuple(sorted(int(p) for p in rng.choice(code.n, count, replace=False)))
        profile = WordErrorProfile(positions, (0.5,) * count)
        truth = compute_ground_truth(code, profile)
        from repro.analysis.atrisk import max_simultaneous_post_errors

        missed_if_direct_covered = truth.post_correction_at_risk - truth.direct_at_risk
        assert max_simultaneous_post_errors(truth, missed_if_direct_covered) <= 1
