"""Tests for exact post-correction probability computation.

The analytic enumeration is validated against brute-force Monte-Carlo
simulation of the actual encoder/decoder — the strongest end-to-end check
of the library's decode semantics.
"""

import numpy as np
import pytest

from repro.analysis.probabilities import (
    WordBerAnalyzer,
    charged_at_risk_bits,
    expected_residual_ber_after_secondary,
    expected_unrepaired_ber,
    per_bit_post_error_probabilities,
)
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import RetentionErrorModel, WordErrorProfile, sample_word_profile


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(61))


def monte_carlo_probabilities(code, profile, data, trials, seed):
    """Reference estimator: simulate the full encode/corrupt/decode path."""
    model = RetentionErrorModel()
    rng = np.random.default_rng(seed)
    codeword = code.encode(data)
    counts: dict[int, int] = {}
    for _ in range(trials):
        corrupted, _ = model.corrupt(codeword, profile, rng)
        decoded = code.decode(corrupted)
        for position in np.flatnonzero(decoded.data != data):
            counts[int(position)] = counts.get(int(position), 0) + 1
    return {position: count / trials for position, count in counts.items()}


class TestChargedAtRiskBits:
    def test_all_charged_under_ones(self, code):
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(0))
        data = np.ones(code.k, dtype=np.uint8)
        charged = charged_at_risk_bits(code, profile, data)
        data_positions = [p for p in profile.positions if p < code.k]
        charged_positions = [p for p, _ in charged]
        for position in data_positions:
            assert position in charged_positions

    def test_none_charged_under_zeros(self, code):
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(1))
        data = np.zeros(code.k, dtype=np.uint8)
        assert charged_at_risk_bits(code, profile, data) == []


class TestPerBitProbabilities:
    def test_single_bit_never_escapes(self, code):
        profile = WordErrorProfile((5,), (1.0,))
        data = np.ones(code.k, dtype=np.uint8)
        assert per_bit_post_error_probabilities(code, profile, data) == {}

    def test_pair_at_probability_one(self, code):
        """Two always-failing bits: deterministic uncorrectable pattern."""
        profile = WordErrorProfile((5, 9), (1.0, 1.0))
        data = np.ones(code.k, dtype=np.uint8)
        probabilities = per_bit_post_error_probabilities(code, profile, data)
        assert probabilities.get(5) == 1.0
        assert probabilities.get(9) == 1.0

    def test_probabilities_within_unit_interval(self, code):
        profile = sample_word_profile(code, 6, 0.5, np.random.default_rng(2))
        data = np.ones(code.k, dtype=np.uint8)
        for probability in per_bit_post_error_probabilities(code, profile, data).values():
            assert 0.0 <= probability <= 1.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_monte_carlo(self, code, seed):
        """Analytic enumeration must agree with simulating the decoder."""
        rng = np.random.default_rng(seed)
        profile = sample_word_profile(code, 4, 0.5, rng)
        data = np.ones(code.k, dtype=np.uint8)
        exact = per_bit_post_error_probabilities(code, profile, data)
        estimated = monte_carlo_probabilities(code, profile, data, trials=4000, seed=seed)
        for position in set(exact) | set(estimated):
            assert abs(exact.get(position, 0.0) - estimated.get(position, 0.0)) < 0.05


class TestBer:
    def test_full_repair_gives_zero_ber(self, code):
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(3))
        data = np.ones(code.k, dtype=np.uint8)
        at_risk = frozenset(per_bit_post_error_probabilities(code, profile, data))
        assert expected_unrepaired_ber(code, profile, data, at_risk) == 0.0

    def test_no_repair_ber_is_sum_over_bits(self, code):
        profile = sample_word_profile(code, 3, 0.5, np.random.default_rng(4))
        data = np.ones(code.k, dtype=np.uint8)
        probabilities = per_bit_post_error_probabilities(code, profile, data)
        expected = sum(probabilities.values()) / code.k
        assert abs(expected_unrepaired_ber(code, profile, data, frozenset()) - expected) < 1e-12

    def test_secondary_sec_zeroes_single_error_words(self, code):
        """A word whose worst case is one concurrent error is fully covered
        by a SEC secondary code."""
        profile = WordErrorProfile((5, 9), (0.5, 0.5))
        data = np.ones(code.k, dtype=np.uint8)
        # Repair both direct-risk bits: at most one indirect error remains.
        residual = expected_residual_ber_after_secondary(code, profile, data, {5, 9})
        assert residual == 0.0

    def test_residual_never_exceeds_unrepaired(self, code):
        profile = sample_word_profile(code, 5, 0.75, np.random.default_rng(5))
        data = np.ones(code.k, dtype=np.uint8)
        for repaired in (frozenset(), frozenset({0, 1, 2})):
            before = expected_unrepaired_ber(code, profile, data, repaired)
            after = expected_residual_ber_after_secondary(code, profile, data, repaired)
            assert after <= before + 1e-12


class TestWordBerAnalyzer:
    def test_matches_direct_functions(self, code):
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(6))
        data = np.ones(code.k, dtype=np.uint8)
        analyzer = WordBerAnalyzer(code, profile, data)
        for repaired in (frozenset(), frozenset({1, 2, 3}), frozenset(range(10))):
            assert (
                abs(
                    analyzer.unrepaired_ber(repaired)
                    - expected_unrepaired_ber(code, profile, data, repaired)
                )
                < 1e-12
            )
            assert (
                abs(
                    analyzer.residual_ber_after_secondary(repaired)
                    - expected_residual_ber_after_secondary(code, profile, data, repaired)
                )
                < 1e-12
            )

    def test_monotone_in_repair(self, code):
        profile = sample_word_profile(code, 5, 0.5, np.random.default_rng(7))
        analyzer = WordBerAnalyzer(code, profile, np.ones(code.k, dtype=np.uint8))
        all_bits = sorted({p for _, errors in analyzer._outcomes for p in errors})
        previous = analyzer.unrepaired_ber(frozenset())
        repaired: set[int] = set()
        for bit in all_bits:
            repaired.add(bit)
            current = analyzer.unrepaired_ber(repaired)
            assert current <= previous + 1e-12
            previous = current
