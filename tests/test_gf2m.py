"""Unit and property tests for GF(2^m) arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf2m import GF2m, PRIMITIVE_POLYNOMIALS, field


@pytest.fixture(scope="module")
def gf16():
    return GF2m(4)


elements = st.integers(min_value=0, max_value=15)
nonzero = st.integers(min_value=1, max_value=15)


class TestFieldAxioms:
    @settings(max_examples=100)
    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        fld = field(4)
        assert fld.multiply(fld.multiply(a, b), c) == fld.multiply(a, fld.multiply(b, c))

    @settings(max_examples=100)
    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        fld = field(4)
        assert fld.multiply(a, b) == fld.multiply(b, a)

    @settings(max_examples=100)
    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        fld = field(4)
        left = fld.multiply(a, fld.add(b, c))
        right = fld.add(fld.multiply(a, b), fld.multiply(a, c))
        assert left == right

    @settings(max_examples=50)
    @given(nonzero)
    def test_inverse(self, a):
        fld = field(4)
        assert fld.multiply(a, fld.inverse(a)) == 1

    def test_one_is_identity(self, gf16):
        for a in range(16):
            assert gf16.multiply(a, 1) == a

    def test_zero_annihilates(self, gf16):
        for a in range(16):
            assert gf16.multiply(a, 0) == 0


class TestGroupStructure:
    def test_alpha_generates_group(self, gf16):
        seen = set()
        value = 1
        for _ in range(gf16.order):
            seen.add(value)
            value = gf16.multiply(value, gf16.alpha)
        assert len(seen) == gf16.order

    def test_fermat(self, gf16):
        for a in range(1, 16):
            assert gf16.power(a, gf16.order) == 1

    def test_alpha_power_wraps(self, gf16):
        assert gf16.alpha_power(gf16.order) == 1
        assert gf16.alpha_power(-1) == gf16.inverse(gf16.alpha)

    def test_log_exp_roundtrip(self, gf16):
        for a in range(1, 16):
            assert gf16.alpha_power(gf16.log(a)) == a


class TestEdgeCases:
    def test_zero_inverse_raises(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inverse(0)

    def test_zero_log_raises(self, gf16):
        with pytest.raises(ValueError):
            gf16.log(0)

    def test_out_of_range_rejected(self, gf16):
        with pytest.raises(ValueError):
            gf16.multiply(16, 1)

    def test_unsupported_degree(self):
        with pytest.raises(ValueError):
            GF2m(1)

    def test_trace_is_binary_and_linear(self, gf16):
        for a in range(16):
            assert gf16.trace(a) in (0, 1)
        for a in range(16):
            for b in range(16):
                assert gf16.trace(a ^ b) == gf16.trace(a) ^ gf16.trace(b)

    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYNOMIALS))
    def test_all_table_polynomials_are_primitive(self, m):
        # GF2m construction validates primitivity internally.
        assert field(m).order == (1 << m) - 1

    def test_divide(self, gf16):
        for a in range(1, 16):
            for b in range(1, 16):
                q = gf16.divide(a, b)
                assert gf16.multiply(q, b) == a
