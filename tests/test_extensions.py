"""Tests for the extension/ablation experiments."""

import pytest

from repro.experiments import (
    ext_code_length,
    ext_dec,
    ext_heterogeneous,
    ext_interleaving,
    ext_patterns,
    ext_rank,
)
from repro.experiments.config import SweepConfig


class TestPatternAblation:
    @pytest.fixture(scope="class")
    def result(self):
        config = SweepConfig(
            num_codes=2,
            words_per_code=4,
            num_rounds=48,
            error_counts=(3,),
            probabilities=(1.0,),
            profilers=("Naive", "HARP-U"),
        )
        return ext_patterns.run(config)

    def test_harp_is_pattern_insensitive(self, result):
        """HARP reaches full coverage under every pattern schedule."""
        for pattern in result.patterns:
            for error_count in result.config.error_counts:
                for probability in result.config.probabilities:
                    assert (
                        result.final_coverage[(pattern, "HARP-U", error_count, probability)]
                        == 1.0
                    )

    def test_static_pattern_hurts_naive(self, result):
        """Paper §7.2.1: Naive with a static pattern cannot reach full
        coverage — the checkered schedule repeats only two charge
        configurations, so some co-failure combinations never occur."""
        for error_count in result.config.error_counts:
            for probability in result.config.probabilities:
                checkered = result.final_coverage[("checkered", "Naive", error_count, probability)]
                random_cov = result.final_coverage[("random", "Naive", error_count, probability)]
                assert checkered <= random_cov

    def test_render(self, result):
        assert "Pattern ablation" in ext_patterns.render(result)


class TestDecExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_dec.run(num_words=12, at_risk_per_word=5, seed=5)

    def test_indirect_bound_equals_capability(self, result):
        """The §5.1 insight generalized: worst concurrent indirect errors
        equal the on-die correction capability."""
        for _, (capability, worst, _, _) in result.rows.items():
            assert worst <= capability

    def test_dec_secondary_always_sufficient(self, result):
        for label, (_, _, _, dec_ok) in result.rows.items():
            assert dec_ok == result.num_words, label

    def test_sec_secondary_insufficient_for_dec_code(self, result):
        (_, _, sec_ok, _) = next(
            row for label, row in result.rows.items() if "BCH" in label
        )
        assert sec_ok < result.num_words

    def test_render(self, result):
        assert "DEC extension" in ext_dec.render(result)


class TestCodeLengthExtension:
    @pytest.fixture(scope="class")
    def result(self):
        config = SweepConfig(
            num_codes=2,
            words_per_code=3,
            num_rounds=48,
            error_counts=(4,),
            probabilities=(0.5,),
            profilers=("Naive", "HARP-U"),
        )
        return ext_code_length.run(config)

    def test_harp_full_coverage_at_both_geometries(self, result):
        for label, _ in ext_code_length.PAPER_GEOMETRIES:
            coverage, full_round = result.rows[(label, "HARP-U")]
            assert coverage == 1.0
            assert full_round is not None

    def test_render(self, result):
        assert "(136,128)" in ext_code_length.render(result)


class TestInterleavingExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_interleaving.run(num_words=8, at_risk_per_word=5, seed=3)

    def test_aligned_and_split_bounded_by_sec(self, result):
        """Paper §6.3: per-on-die-word layouts need only SEC secondary."""
        for label, (after_harp, _) in result.rows.items():
            if "interleaved" not in label:
                assert after_harp <= 1, label

    def test_interleaving_no_better_than_aligned(self, result):
        aligned = next(v for k, v in result.rows.items() if k.startswith("aligned"))
        interleaved = next(v for k, v in result.rows.items() if "interleaved" in k)
        assert interleaved[0] >= aligned[0]
        assert interleaved[0] <= 2  # bounded by ways x t = 2

    def test_profiling_reduces_requirement(self, result):
        for after_harp, unprofiled in result.rows.values():
            assert after_harp <= unprofiled

    def test_render(self, result):
        assert "Layout extension" in ext_interleaving.render(result)


class TestRankEscapeExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_rank.run(num_rows=4, reads_per_row=25, seed=9)

    def test_aligned_and_split_never_escape(self, result):
        for (label, capability), (escaped, _, _) in result.rows.items():
            if "interleaved" not in label:
                assert escaped == 0, (label, capability)

    def test_stronger_secondary_fixes_interleaving(self, result):
        escaped_dec, _, _ = result.rows[("interleaved x2", 2)]
        assert escaped_dec == 0

    def test_interleaved_sec_no_better_than_dec(self, result):
        escaped_sec, _, _ = result.rows[("interleaved x2", 1)]
        escaped_dec, _, _ = result.rows[("interleaved x2", 2)]
        assert escaped_sec >= escaped_dec

    def test_render(self, result):
        assert "Rank-layout escapes" in ext_rank.render(result)


class TestHeterogeneousExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_heterogeneous.run(
            num_codes=2, words_per_code=4, num_rounds=48, seed=3
        )

    def test_harp_dominates_naive(self, result):
        harp_cov, harp_first = result.rows["HARP-U"]
        naive_cov, naive_first = result.rows["Naive"]
        assert harp_cov >= naive_cov
        assert harp_first <= naive_first

    def test_coverages_are_valid_fractions(self, result):
        for coverage, first in result.rows.values():
            assert 0.0 <= coverage <= 1.0
            assert 1 <= first <= result.num_rounds

    def test_render(self, result):
        assert "Heterogeneous" in ext_heterogeneous.render(result)
