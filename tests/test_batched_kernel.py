"""Bit-identity and contract tests of the cell-batched simulation kernel.

The batched kernel (`simulate_words_batched`) must be indistinguishable
from running the scalar reference (`simulate_word`) once per word: same
identified/observed traces, same per-round failure patterns, on both
GF(2) tiers, under any cell orientation, including degenerate words with
no at-risk bits.  These tests pin that equivalence property-style over
randomized rectangular cells, plus the dispatch rules (the `batched`
profiler flag, the `REPRO_SIM_KERNEL` knob, adaptive rejection) and the
probe-then-insert memo protocol the kernel batches through.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from randcases import random_cell

from repro.analysis.atrisk import compute_ground_truth
from repro.analysis.memo import Memo, clear_analysis_caches, code_caches
from repro.ecc.hamming import canonical_sec_code
from repro.experiments.config import SweepConfig
from repro.experiments.runner import clear_engine_caches, run_sweep
from repro.memory.cells import all_true_cells, alternating_cells, random_cells
from repro.memory.error_model import WordErrorProfile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.base import Profiler, ReadMode
from repro.profiling.beep import BeepProfiler
from repro.profiling.harp import HarpAProfiler, HarpUProfiler
from repro.profiling.naive import NaiveProfiler
from repro.profiling.oracle import OracleProfiler
from repro.profiling.runner import (
    batched_kernel_enabled,
    simulate_word,
    simulate_words_batched,
)

BATCHED_CLASSES = (NaiveProfiler, HarpUProfiler, HarpAProfiler)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_analysis_caches()
    yield
    clear_analysis_caches()


def _assert_runs_equal(scalar, batched):
    assert len(scalar) == len(batched)
    for reference, candidate in zip(scalar, batched):
        assert reference.identified_per_round == candidate.identified_per_round
        assert reference.observed_per_round == candidate.observed_per_round
        assert reference.failures_per_round == candidate.failures_per_round


class TestBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        cls=st.sampled_from(BATCHED_CLASSES),
        master_seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_words=st.integers(min_value=1, max_value=8),
        num_rounds=st.integers(min_value=1, max_value=24),
    )
    def test_matches_scalar_on_random_cells(
        self, cls, master_seed, num_words, num_rounds
    ):
        rng = np.random.default_rng(master_seed)
        codes, profiles, seeds = random_cell(rng, num_words)
        clear_analysis_caches()
        scalar = [
            simulate_word(
                cls(code, seed=seed), profile, num_rounds, word_seed=seed
            )
            for code, profile, seed in zip(codes, profiles, seeds)
        ]
        clear_analysis_caches()
        profilers = [cls(code, seed=seed) for code, seed in zip(codes, seeds)]
        batched = simulate_words_batched(profilers, profiles, num_rounds, seeds)
        _assert_runs_equal(scalar, batched)

    @pytest.mark.parametrize("tier", ["packed", "unpacked"])
    def test_matches_scalar_on_both_gf2_tiers(self, tier, monkeypatch):
        monkeypatch.setenv("REPRO_GF2_TIER", tier)
        rng = np.random.default_rng(11)
        codes, profiles, seeds = random_cell(rng, 10)
        for cls in BATCHED_CLASSES:
            clear_analysis_caches()
            scalar = [
                simulate_word(cls(code, seed=seed), profile, 32, word_seed=seed)
                for code, profile, seed in zip(codes, profiles, seeds)
            ]
            clear_analysis_caches()
            profilers = [cls(code, seed=seed) for code, seed in zip(codes, seeds)]
            _assert_runs_equal(
                scalar, simulate_words_batched(profilers, profiles, 32, seeds)
            )

    @pytest.mark.parametrize(
        "make_orientation",
        [all_true_cells, alternating_cells, lambda n: random_cells(n, np.random.default_rng(3))],
        ids=["true-cells", "anti-cells", "random-cells"],
    )
    def test_matches_scalar_under_cell_orientation(self, make_orientation):
        code = canonical_sec_code(16)
        orientation = make_orientation(code.n)
        rng = np.random.default_rng(23)
        _, profiles, seeds = random_cell(rng, 6)
        profiles = [
            WordErrorProfile(
                tuple(p for p in profile.positions if p < code.n),
                profile.probabilities[: sum(1 for p in profile.positions if p < code.n)],
            )
            for profile in profiles
        ]
        for cls in BATCHED_CLASSES:
            clear_analysis_caches()
            scalar = [
                simulate_word(
                    cls(code, seed=seed),
                    profile,
                    24,
                    word_seed=seed,
                    orientation=orientation,
                )
                for profile, seed in zip(profiles, seeds)
            ]
            clear_analysis_caches()
            profilers = [cls(code, seed=seed) for seed in seeds]
            _assert_runs_equal(
                scalar,
                simulate_words_batched(
                    profilers, profiles, 24, seeds, orientation=orientation
                ),
            )

    def test_oracle_with_ground_truth_matches_scalar(self):
        code = canonical_sec_code(16)
        orientation = alternating_cells(code.n)
        rng = np.random.default_rng(31)
        profiles = [
            WordErrorProfile((1, 4, 9), (0.5, 0.9, 1.0)),
            WordErrorProfile((), ()),  # zero-at-risk word rides along
            WordErrorProfile((0, code.n - 1), (0.25, 0.75)),
        ]
        seeds = [int(s) for s in rng.integers(0, 2**31, size=len(profiles))]
        truths = [
            compute_ground_truth(code, profile, orientation) for profile in profiles
        ]
        clear_analysis_caches()
        scalar = [
            simulate_word(
                OracleProfiler(code, seed=seed, ground_truth=truth),
                profile,
                16,
                word_seed=seed,
                orientation=orientation,
            )
            for profile, seed, truth in zip(profiles, seeds, truths)
        ]
        clear_analysis_caches()
        profilers = [
            OracleProfiler(code, seed=seed, ground_truth=truth)
            for seed, truth in zip(seeds, truths)
        ]
        _assert_runs_equal(
            scalar,
            simulate_words_batched(
                profilers, profiles, 16, seeds, orientation=orientation
            ),
        )

    def test_zero_rounds_and_empty_batch(self):
        code = canonical_sec_code(16)
        profile = WordErrorProfile((2, 5), (0.5, 1.0))
        runs = simulate_words_batched(
            [NaiveProfiler(code, seed=1)], [profile], 0, [1]
        )
        assert runs[0].identified_per_round == []
        assert runs[0].failures_per_round == []
        assert simulate_words_batched([], [], 8, []) == []


class TestDispatchRules:
    def test_adaptive_profiler_is_rejected(self):
        code = canonical_sec_code(16)
        with pytest.raises(ValueError, match="adaptive"):
            simulate_words_batched(
                [BeepProfiler(code, seed=1)],
                [WordErrorProfile((2,), (1.0,))],
                4,
                [1],
            )

    def test_profiler_without_batched_contract_is_rejected(self):
        class LegacyProfiler(Profiler):
            name = "legacy"
            adaptive = False
            batched = False

            def observe(self, round_index, written, mismatches):
                self._observed.update(mismatches)

        code = canonical_sec_code(16)
        with pytest.raises(ValueError, match="batched"):
            simulate_words_batched(
                [LegacyProfiler(code, seed=1)],
                [WordErrorProfile((2,), (1.0,))],
                4,
                [1],
            )

    def test_kernel_knob_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "auto")
        assert batched_kernel_enabled()
        monkeypatch.setenv("REPRO_SIM_KERNEL", "scalar")
        assert not batched_kernel_enabled()
        monkeypatch.delenv("REPRO_SIM_KERNEL")
        assert batched_kernel_enabled()
        monkeypatch.setenv("REPRO_SIM_KERNEL", "turbo")
        with pytest.raises(ValueError, match="REPRO_SIM_KERNEL"):
            batched_kernel_enabled()

    def test_engine_results_identical_across_kernels(self, monkeypatch):
        config = SweepConfig(
            num_codes=2,
            words_per_code=3,
            num_rounds=32,
            error_counts=(2, 3),
            probabilities=(0.5, 1.0),
            profilers=("Naive", "HARP-U", "HARP-A"),
        )
        monkeypatch.setenv("REPRO_SIM_KERNEL", "scalar")
        clear_engine_caches()
        clear_analysis_caches()
        scalar = run_sweep(config)
        monkeypatch.setenv("REPRO_SIM_KERNEL", "auto")
        clear_engine_caches()
        clear_analysis_caches()
        batched = run_sweep(config)
        assert scalar.cells == batched.cells
        assert scalar.quarantined == batched.quarantined

    def test_adaptive_cells_keep_working_with_kernel_enabled(self, monkeypatch):
        # BEEP cells must silently fall back to the scalar path.
        monkeypatch.setenv("REPRO_SIM_KERNEL", "auto")
        config = SweepConfig(
            num_codes=1,
            words_per_code=2,
            num_rounds=16,
            error_counts=(2,),
            probabilities=(1.0,),
            profilers=("Naive", "BEEP"),
        )
        clear_engine_caches()
        result = run_sweep(config)
        assert set(name for (_, _, name) in result.cells) == {"Naive", "BEEP"}


class TestMemoBatchProtocol:
    def test_peek_returns_default_without_counting_a_miss(self):
        memo = Memo(max_entries=4)
        assert memo.peek("absent") is None
        assert memo.peek("absent", default=7) == 7
        assert memo.stats.misses == 0
        assert memo.stats.hits == 0

    def test_insert_counts_exactly_one_miss(self):
        memo = Memo(max_entries=4)
        memo.insert("k", "v")
        assert memo.stats.misses == 1
        assert memo.peek("k") == "v"
        assert memo.stats.hits == 1

    def test_peek_many_accounts_hits_and_leaves_misses_alone(self):
        memo = Memo(max_entries=8)
        memo.insert("a", 1)
        memo.insert("b", 2)
        values = memo.peek_many(["a", "missing", "b", "a"])
        assert values == [1, None, 2, 1]
        assert memo.stats.hits == 3
        assert memo.stats.misses == 2  # only the two inserts

    def test_probe_then_insert_matches_get_semantics(self):
        memo = Memo(max_entries=8)
        computed = []

        def compute():
            computed.append(1)
            return "value"

        # Batched producer: probe, compute off-memo, insert.
        if memo.peek("key") is None:
            memo.insert("key", compute())
        # A later get must hit without recomputing.
        assert memo.get("key", compute) == "value"
        assert computed == [1]
        assert memo.stats.misses == 1
        assert memo.stats.hits == 1

    def test_decode_consequences_share_between_scalar_and_batched(self):
        code = canonical_sec_code(16)
        handle = code_caches(code)
        pattern = (1, 3)
        value = handle.decode_consequences(
            ReadMode.BYPASS, pattern, lambda: frozenset({1, 3})
        )
        assert handle.peek_decode_consequences(ReadMode.BYPASS, pattern) == value
        assert handle.peek_decode_consequences_many(
            ReadMode.BYPASS, [pattern, (0, 2)]
        ) == [value, None]


class TestObserveManyContract:
    def test_post_state_matches_per_round_replay(self):
        code = canonical_sec_code(16)
        events = [(0, frozenset({1})), (3, frozenset({1, 4})), (7, frozenset({2}))]
        for cls in BATCHED_CLASSES:
            replayed = cls(code, seed=9)
            for round_index, mismatches in events:
                replayed.observe(round_index, None, mismatches)
            batched = cls(code, seed=9)
            changes = batched.observe_many(list(events))
            assert batched.identified == replayed.identified
            assert batched.identified_observed == replayed.identified_observed
            assert batched.identified_predicted == replayed.identified_predicted
            assert changes[-1][1] == batched.identified
            assert [round_index for round_index, _, _ in changes] == [0, 3, 7]

    def test_duplicate_events_produce_no_changes(self):
        code = canonical_sec_code(16)
        profiler = HarpUProfiler(code, seed=2)
        assert profiler.observe_many([(0, frozenset({5}))])
        assert profiler.observe_many([(4, frozenset({5}))]) == []

    def test_oracle_reveals_once_at_round_zero(self):
        code = canonical_sec_code(16)
        profile = WordErrorProfile((1, 6), (1.0, 1.0))
        truth = compute_ground_truth(code, profile, None)
        profiler = OracleProfiler(code, seed=3, ground_truth=truth)
        changes = profiler.observe_many([(2, frozenset({1}))])
        assert len(changes) == 1 and changes[0][0] == 0
        assert profiler.observe_many([(5, frozenset({6}))]) == []

    def test_registry_profilers_declare_consistent_flags(self):
        for name, cls in PROFILER_REGISTRY.items():
            if cls.batched:
                assert not cls.adaptive, name
