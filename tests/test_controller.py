"""Unit tests for the controller-side secondary ECC."""

import pytest

from repro.controller.secondary_ecc import SecondaryEcc


class TestSecondaryEcc:
    def test_clean_read(self):
        outcome = SecondaryEcc(1).process_read(frozenset())
        assert outcome.clean
        assert not outcome.corrected
        assert not outcome.escaped

    def test_single_error_corrected_and_identified(self):
        outcome = SecondaryEcc(1).process_read({7})
        assert outcome.corrected == {7}
        assert not outcome.escaped

    def test_double_error_escapes_sec(self):
        outcome = SecondaryEcc(1).process_read({7, 9})
        assert not outcome.corrected
        assert outcome.escaped == {7, 9}

    def test_dec_secondary_covers_double(self):
        """Paper §6.3.2: stronger secondary ECC for stronger on-die ECC."""
        outcome = SecondaryEcc(2).process_read({7, 9})
        assert outcome.corrected == {7, 9}

    def test_zero_capability_detect_only(self):
        outcome = SecondaryEcc(0).process_read({7})
        assert outcome.escaped == {7}

    def test_negative_capability_rejected(self):
        with pytest.raises(ValueError):
            SecondaryEcc(-1)
