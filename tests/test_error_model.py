"""Unit and statistical tests for the retention error model."""

import numpy as np
import pytest

from repro.ecc.hamming import random_sec_code
from repro.memory.cells import CellOrientation
from repro.memory.error_model import (
    RetentionErrorModel,
    WordErrorProfile,
    normal_probability_profile,
    sample_profile_by_rate,
    sample_word_profile,
)


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(31))


class TestWordErrorProfile:
    def test_validation_sorted_unique(self):
        with pytest.raises(ValueError):
            WordErrorProfile((3, 1), (0.5, 0.5))
        with pytest.raises(ValueError):
            WordErrorProfile((1, 1), (0.5, 0.5))

    def test_validation_probability_range(self):
        with pytest.raises(ValueError):
            WordErrorProfile((1,), (1.5,))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            WordErrorProfile((1,), (0.5, 0.5))

    def test_probability_of(self):
        profile = WordErrorProfile((3, 9), (0.25, 0.75))
        assert profile.probability_of(3) == 0.25
        assert profile.probability_of(9) == 0.75
        assert profile.probability_of(4) == 0.0

    def test_restricted_to(self):
        profile = WordErrorProfile((1, 2, 3), (0.1, 0.2, 0.3))
        restricted = profile.restricted_to({2, 3})
        assert restricted.positions == (2, 3)
        assert restricted.probabilities == (0.2, 0.3)


class TestSampling:
    def test_sample_word_profile_count(self, code):
        profile = sample_word_profile(code, 5, 0.5, np.random.default_rng(0))
        assert profile.count == 5
        assert all(0 <= p < code.n for p in profile.positions)

    def test_sample_word_profile_too_many(self, code):
        with pytest.raises(ValueError):
            sample_word_profile(code, code.n + 1, 0.5, np.random.default_rng(0))

    def test_sample_by_rate_statistics(self, code):
        rng = np.random.default_rng(1)
        counts = [sample_profile_by_rate(code, 0.1, 0.5, rng).count for _ in range(300)]
        mean = np.mean(counts)
        assert 0.7 * code.n * 0.1 < mean < 1.3 * code.n * 0.1

    def test_sample_by_rate_bounds(self, code):
        with pytest.raises(ValueError):
            sample_profile_by_rate(code, 1.5, 0.5, np.random.default_rng(0))

    def test_normal_profile_clipped(self, code):
        profile = normal_probability_profile(code, 10, 0.5, 1.0, np.random.default_rng(2))
        assert all(0.0 <= p <= 1.0 for p in profile.probabilities)


class TestRetentionErrorModel:
    def test_only_charged_cells_fail(self, code):
        """With all-zero data on true cells, nothing can fail."""
        model = RetentionErrorModel()
        profile = sample_word_profile(code, 6, 1.0, np.random.default_rng(3))
        codeword = code.encode(np.zeros(code.k, dtype=np.uint8))
        failures = model.sample_failures(codeword, profile, np.random.default_rng(0))
        assert not failures.any()

    def test_probability_one_fails_all_charged(self, code):
        model = RetentionErrorModel()
        profile = sample_word_profile(code, 6, 1.0, np.random.default_rng(4))
        codeword = code.encode(np.ones(code.k, dtype=np.uint8))
        vulnerable = model.vulnerable_mask(codeword, profile)
        failures = model.sample_failures(codeword, profile, np.random.default_rng(0))
        assert (failures == vulnerable).all()

    def test_failure_rate_matches_probability(self, code):
        model = RetentionErrorModel()
        profile = WordErrorProfile((0, 1), (0.25, 0.25))
        codeword = code.encode(np.ones(code.k, dtype=np.uint8))
        rng = np.random.default_rng(5)
        batch = np.tile(codeword, (4000, 1))
        failures = model.sample_failures(batch, profile, rng)
        rate = failures.mean()
        assert 0.2 < rate < 0.3

    def test_corrupt_flips_exactly_failures(self, code):
        model = RetentionErrorModel()
        profile = sample_word_profile(code, 4, 1.0, np.random.default_rng(6))
        codeword = code.encode(np.ones(code.k, dtype=np.uint8))
        corrupted, failures = model.corrupt(codeword, profile, np.random.default_rng(0))
        flipped = np.flatnonzero(corrupted != codeword)
        expected = [p for p, failed in zip(profile.positions, failures) if failed]
        assert sorted(flipped.tolist()) == sorted(expected)

    def test_anti_cells_invert_data_dependence(self, code):
        """With anti cells, all-zero data is the vulnerable state."""
        model = RetentionErrorModel(CellOrientation(np.zeros(code.n, dtype=np.uint8)))
        profile = sample_word_profile(code, 4, 1.0, np.random.default_rng(7))
        codeword = code.encode(np.zeros(code.k, dtype=np.uint8))
        failures = model.sample_failures(codeword, profile, np.random.default_rng(0))
        assert failures.all()

    def test_orientation_length_checked(self, code):
        model = RetentionErrorModel(CellOrientation(np.ones(5, dtype=np.uint8)))
        profile = sample_word_profile(code, 2, 0.5, np.random.default_rng(8))
        with pytest.raises(ValueError):
            model.sample_failures(code.encode(np.ones(code.k, dtype=np.uint8)), profile, np.random.default_rng(0))

    def test_empty_profile(self, code):
        model = RetentionErrorModel()
        profile = WordErrorProfile((), ())
        codeword = code.encode(np.ones(code.k, dtype=np.uint8))
        corrupted, failures = model.corrupt(codeword, profile, np.random.default_rng(0))
        assert (corrupted == codeword).all()
        assert failures.size == 0
