"""Unit and invariant tests for the profiling simulation runner."""

import numpy as np
import pytest

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.harp import HarpUProfiler
from repro.profiling.naive import NaiveProfiler
from repro.profiling.runner import post_correction_data_errors, simulate_word


@pytest.fixture(scope="module")
def code():
    return random_sec_code(64, np.random.default_rng(91))


class TestPostCorrectionDataErrors:
    def test_empty(self, code):
        assert post_correction_data_errors(code, ()) == frozenset()

    def test_single_corrected(self, code):
        assert post_correction_data_errors(code, (7,)) == frozenset()

    def test_matches_analysis(self, code):
        from repro.ecc.syndrome import analyze_error_pattern

        rng = np.random.default_rng(0)
        for _ in range(30):
            pattern = tuple(sorted(int(p) for p in rng.choice(code.n, 3, replace=False)))
            fast = post_correction_data_errors(code, pattern)
            slow = analyze_error_pattern(code, frozenset(pattern)).data_errors
            assert fast == slow


class TestSimulateWord:
    def test_deterministic(self, code):
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(1))
        a = simulate_word(NaiveProfiler(code, 7), profile, 32, word_seed=99)
        b = simulate_word(NaiveProfiler(code, 7), profile, 32, word_seed=99)
        assert a.identified_per_round == b.identified_per_round
        assert a.failures_per_round == b.failures_per_round

    def test_shared_draws_across_profilers(self, code):
        """Profilers with the same patterns see identical failures."""
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(2))
        naive = simulate_word(NaiveProfiler(code, 7), profile, 32, word_seed=99)
        harp = simulate_word(HarpUProfiler(code, 7), profile, 32, word_seed=99)
        assert naive.failures_per_round == harp.failures_per_round

    def test_identification_is_monotone(self, code):
        profile = sample_word_profile(code, 4, 0.5, np.random.default_rng(3))
        for name, cls in PROFILER_REGISTRY.items():
            result = simulate_word(cls(code, 7), profile, 32, word_seed=5)
            for earlier, later in zip(result.identified_per_round, result.identified_per_round[1:]):
                assert earlier <= later, name

    def test_probability_one_all_charged_fail(self, code):
        """At p=1 every charged at-risk cell fails every round."""
        profile = WordErrorProfile((3, 9), (1.0, 1.0))
        result = simulate_word(NaiveProfiler(code, 7, pattern="charged"), profile, 4, word_seed=1)
        for failed in result.failures_per_round:
            assert failed == (3, 9)

    def test_zero_probability_never_fails(self, code):
        profile = WordErrorProfile((3, 9), (0.0, 0.0))
        result = simulate_word(NaiveProfiler(code, 7), profile, 16, word_seed=1)
        assert all(failed == () for failed in result.failures_per_round)
        assert result.final_identified() == frozenset()

    def test_empty_profile(self, code):
        profile = WordErrorProfile((), ())
        result = simulate_word(NaiveProfiler(code, 7), profile, 8, word_seed=1)
        assert result.final_identified() == frozenset()

    def test_out_of_range_profile(self, code):
        with pytest.raises(IndexError):
            simulate_word(
                NaiveProfiler(code, 7), WordErrorProfile((code.n,), (0.5,)), 4, word_seed=1
            )


class TestPaperInvariants:
    """Core claims of the paper, checked on randomized instances."""

    @pytest.mark.parametrize("seed", range(6))
    def test_harp_bypass_identifies_only_true_direct_bits(self, code, seed):
        """Bypass observations are sound: only genuine at-risk data bits."""
        rng = np.random.default_rng(seed)
        profile = sample_word_profile(code, 5, 0.75, rng)
        truth = compute_ground_truth(code, profile)
        result = simulate_word(HarpUProfiler(code, seed), profile, 64, word_seed=seed)
        assert result.final_identified() <= truth.direct_at_risk

    @pytest.mark.parametrize("seed", range(6))
    def test_harp_full_direct_coverage_at_p1_charged(self, code, seed):
        """At p=1 with the charged pattern, HARP covers all direct-risk
        bits in one round (paper Fig 6, 100% panel)."""
        rng = np.random.default_rng(seed)
        profile = sample_word_profile(code, 5, 1.0, rng)
        truth = compute_ground_truth(code, profile)
        result = simulate_word(
            HarpUProfiler(code, seed, pattern="charged"), profile, 1, word_seed=seed
        )
        assert result.final_identified() == truth.direct_at_risk

    @pytest.mark.parametrize("seed", range(6))
    def test_naive_identifications_within_post_risk_set(self, code, seed):
        """Naive marks only bits that genuinely can err post-correction."""
        rng = np.random.default_rng(seed)
        profile = sample_word_profile(code, 4, 0.5, rng)
        truth = compute_ground_truth(code, profile)
        result = simulate_word(NaiveProfiler(code, seed), profile, 64, word_seed=seed)
        assert result.final_identified() <= truth.post_correction_at_risk

    @pytest.mark.parametrize("name", ["Naive", "BEEP", "HARP-U", "HARP-A", "HARP-A+BEEP"])
    def test_all_identifications_sound(self, code, name):
        """No profiler ever marks a bit outside the ground-truth post-risk
        or direct-risk universe (no false positives)."""
        rng = np.random.default_rng(17)
        profile = sample_word_profile(code, 5, 0.5, rng)
        truth = compute_ground_truth(code, profile)
        universe = truth.post_correction_at_risk | truth.direct_at_risk
        # HARP-A's prediction may include bits whose triggering patterns
        # involve data bits only; those are still within the ground truth
        # universe by construction.
        result = simulate_word(PROFILER_REGISTRY[name](code, 17), profile, 64, word_seed=17)
        assert result.final_identified() <= universe, name
