"""Tests for sweep-result serialization, shard merging, and the JSONL store."""

import json
from dataclasses import replace

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.fig6 import coverage_curve
from repro.experiments.runner import run_sweep
from repro.experiments.store import (
    ShardStore,
    config_from_dict,
    config_to_dict,
    merge_sweeps,
    sweep_from_json,
    sweep_to_json,
)

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=3,
    num_rounds=16,
    error_counts=(3,),
    probabilities=(0.5,),
    profilers=("Naive", "HARP-U"),
)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(CONFIG)


class TestJsonRoundtrip:
    def test_cells_survive(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert set(restored.cells) == set(sweep.cells)
        for key in sweep.cells:
            assert restored.cells[key].words == sweep.cells[key].words

    def test_reductions_agree_after_roundtrip(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert coverage_curve(restored, 3, 0.5, "HARP-U") == coverage_curve(
            sweep, 3, 0.5, "HARP-U"
        )

    def test_bad_document_rejected(self):
        with pytest.raises(ValueError):
            sweep_from_json('{"format": "something-else", "cells": []}')


class TestMerge:
    def test_merging_disjoint_seeds_concatenates_words(self, sweep):
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 1))
        merged = merge_sweeps([sweep, other])
        for key in sweep.cells:
            assert len(merged.cells[key].words) == len(sweep.cells[key].words) + len(
                other.cells[key].words
            )

    def test_merge_single_shard_is_identity(self, sweep):
        merged = merge_sweeps([sweep])
        assert merged.cells.keys() == sweep.cells.keys()
        for key in sweep.cells:
            assert merged.cells[key].words == sweep.cells[key].words

    def test_merge_incompatible_rounds_rejected(self, sweep):
        other = run_sweep(replace(CONFIG, num_rounds=8))
        with pytest.raises(ValueError):
            merge_sweeps([sweep, other])

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_sweeps([])

    def test_merged_coverage_pools_both_shards(self, sweep):
        """The merged curve is the word-pooled aggregate, reproducing the
        paper's shard-independent aggregation property."""
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 7))
        merged = merge_sweeps([sweep, other])
        merged_final = coverage_curve(merged, 3, 0.5, "Naive")[-1]
        a = coverage_curve(sweep, 3, 0.5, "Naive")[-1]
        b = coverage_curve(other, 3, 0.5, "Naive")[-1]
        assert min(a, b) - 1e-9 <= merged_final <= max(a, b) + 1e-9


class TestTimings:
    """Per-cell timings must round-trip through JSON and merge additively."""

    def test_timings_survive_roundtrip(self, sweep):
        assert sweep.timings  # the engine records them
        restored = sweep_from_json(sweep_to_json(sweep))
        assert restored.timings == sweep.timings

    def test_missing_timings_roundtrip_as_empty(self, sweep):
        import json

        document = sweep_to_json(sweep)
        payload = json.loads(document)
        for cell in payload["cells"]:
            cell.pop("seconds", None)
        restored = sweep_from_json(json.dumps(payload))
        assert restored.timings == {}
        assert restored.cells.keys() == sweep.cells.keys()

    def test_merge_sums_shared_cells(self, sweep):
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 1))
        merged = merge_sweeps([sweep, other])
        for key in sweep.timings:
            expected = sweep.timings[key] + other.timings.get(key, 0.0)
            assert merged.timings[key] == pytest.approx(expected)

    def test_merge_keeps_one_sided_timings(self, sweep):
        bare = sweep_from_json(sweep_to_json(sweep))
        bare.timings = {}
        merged = merge_sweeps([sweep, bare])
        assert merged.timings == sweep.timings
        # Word lists still concatenated even though one side lacks timings.
        for key in sweep.cells:
            assert len(merged.cells[key].words) == 2 * len(sweep.cells[key].words)

    def test_merged_timings_roundtrip(self, sweep):
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 2))
        merged = merge_sweeps([sweep, other])
        restored = sweep_from_json(sweep_to_json(merged))
        assert restored.timings == pytest.approx(merged.timings)


class TestConfigRoundtrip:
    """repro-sweep-v2 documents are self-describing."""

    def test_config_dict_roundtrip(self):
        assert config_from_dict(config_to_dict(CONFIG)) == CONFIG

    def test_non_sweep_config_serializes_as_none(self):
        assert config_to_dict(("opaque", "config")) is None
        assert config_from_dict(None) is None

    def test_document_restores_config(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert restored.config == CONFIG

    def test_v1_documents_still_load(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        payload["format"] = "repro-sweep-v1"
        del payload["config"]
        restored = sweep_from_json(json.dumps(payload))
        assert restored.config is None
        assert restored.cells.keys() == sweep.cells.keys()
        for key in sweep.cells:
            assert restored.cells[key].words == sweep.cells[key].words


class TestShardStore:
    def test_append_load_roundtrip(self, sweep, tmp_path):
        store = ShardStore(tmp_path / "cells.jsonl")
        with store.open(CONFIG):
            for key, cell in sweep.cells.items():
                store.append(cell, sweep.timings.get(key))
        loaded = store.load()
        assert loaded.config == CONFIG
        assert loaded.cells.keys() == sweep.cells.keys()
        for key in sweep.cells:
            assert loaded.cells[key].words == sweep.cells[key].words
        assert loaded.timings == pytest.approx(sweep.timings)

    def test_missing_file_loads_empty(self, tmp_path):
        store = ShardStore(tmp_path / "absent.jsonl")
        assert not store.exists()
        loaded = store.load()
        assert loaded.cells == {} and loaded.config is None

    def test_truncated_final_line_tolerated(self, sweep, tmp_path):
        path = tmp_path / "cells.jsonl"
        store = ShardStore(path)
        with store.open(CONFIG):
            for key, cell in sweep.cells.items():
                store.append(cell, sweep.timings.get(key))
        intact = store.load()
        # Crash mid-append: the final record is cut somewhere inside.
        text = path.read_text()
        path.write_text(text[: len(text) - 40])
        survivors = ShardStore(path).load()
        assert len(survivors.cells) == len(intact.cells) - 1
        for key, cell in survivors.cells.items():
            assert cell.words == intact.cells[key].words

    def test_valid_tail_missing_newline_repaired_not_dropped(self, sweep, tmp_path):
        """A tear that ate only the final newline must not lose the record:
        load() parses it (so resume skips the cell), hence open() has to
        repair the terminator rather than truncate."""
        path = tmp_path / "cells.jsonl"
        cells = list(sweep.cells.values())
        store = ShardStore(path)
        with store.open(CONFIG):
            store.append(cells[0])
            store.append(cells[1])
        text = path.read_text()
        assert text.endswith("\n")
        path.write_text(text[:-1])  # tear exactly the terminator
        assert len(ShardStore(path).keys()) == 2  # load still counts it
        with ShardStore(path) as reopened:
            pass  # open() must repair, not trim
        loaded = ShardStore(path).load()
        assert len(loaded.cells) == 2
        assert loaded.cells[
            (cells[1].error_count, cells[1].probability, cells[1].profiler)
        ].words == cells[1].words

    def test_newline_terminated_corrupt_tail_trimmed_on_append(self, sweep, tmp_path):
        """A crash can persist the tail's newline while losing earlier
        bytes of the record; appending must trim it exactly like load()
        skips it, or the next append buries corruption mid-file."""
        path = tmp_path / "cells.jsonl"
        cells = list(sweep.cells.values())
        store = ShardStore(path)
        with store.open(CONFIG):
            store.append(cells[0])
            store.append(cells[1])
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][:30]  # corrupt record, newline kept
        path.write_text("\n".join(lines) + "\n")
        with ShardStore(path) as reopened:
            reopened.append(cells[1])
        loaded = ShardStore(path).load()  # must not raise mid-file corruption
        assert len(loaded.cells) == 2
        assert loaded.cells[
            (cells[1].error_count, cells[1].probability, cells[1].profiler)
        ].words == cells[1].words

    def test_corrupt_middle_line_raises(self, sweep, tmp_path):
        path = tmp_path / "cells.jsonl"
        store = ShardStore(path)
        with store.open(CONFIG):
            for key, cell in sweep.cells.items():
                store.append(cell, sweep.timings.get(key))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-20]  # torn record *before* the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            ShardStore(path).load()

    def test_duplicate_keys_last_append_wins(self, sweep, tmp_path):
        key = next(iter(sweep.cells))
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 1))
        store = ShardStore(tmp_path / "cells.jsonl")
        with store.open(CONFIG):
            store.append(sweep.cells[key])
            store.append(other.cells[key])
        loaded = store.load()
        assert loaded.cells[key].words == other.cells[key].words


class TestResume:
    """run_sweep(..., resume=PATH) streams cells and skips persisted ones."""

    def test_first_run_persists_every_cell(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        result = run_sweep(CONFIG, resume=str(path))
        stored = ShardStore(path).load()
        assert stored.config == CONFIG
        assert stored.cells.keys() == result.cells.keys()

    def test_interrupted_sweep_resumes_bit_identical(self, sweep, tmp_path):
        path = tmp_path / "resume.jsonl"
        run_sweep(CONFIG, resume=str(path))
        # Interrupt: drop the last persisted cell plus leave a torn tail,
        # exactly what a kill -9 mid-append leaves behind.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:25])
        before = ShardStore(path).keys()
        resumed = run_sweep(CONFIG, resume=str(path))
        assert len(before) == len(sweep.cells) - 1
        assert list(resumed.cells) == list(sweep.cells)  # grid order restored
        for key in sweep.cells:
            assert resumed.cells[key].words == sweep.cells[key].words, key
        # The store now holds the full grid for the next resume.
        assert ShardStore(path).keys() == set(sweep.cells)

    def test_complete_store_skips_all_work(self, sweep, tmp_path):
        path = tmp_path / "resume.jsonl"
        run_sweep(CONFIG, resume=str(path))
        size_before = path.stat().st_size
        again = run_sweep(CONFIG, resume=str(path))
        assert path.stat().st_size == size_before  # nothing re-appended
        for key in sweep.cells:
            assert again.cells[key].words == sweep.cells[key].words

    def test_resume_onto_sweep_document_rejected(self, sweep, tmp_path):
        """--resume pointed at a sweep_to_json artifact must refuse, not
        silently ignore its cells and append records that corrupt it."""
        path = tmp_path / "sweep.json"
        path.write_text(sweep_to_json(sweep) + "\n")
        with pytest.raises(ValueError, match="sweep_to_json document"):
            run_sweep(CONFIG, resume=str(path))
        # The artifact is untouched and still loads as a document.
        restored = sweep_from_json(path.read_text())
        assert restored.cells.keys() == sweep.cells.keys()

    def test_configless_store_with_cells_rejected(self, sweep, tmp_path):
        """A store that holds cells but no config (hand-built or written
        without one) cannot be verified — resume must refuse, not merge."""
        path = tmp_path / "foreign.jsonl"
        store = ShardStore(path)
        with store.open():  # header with null config
            store.append(next(iter(sweep.cells.values())))
        with pytest.raises(ValueError, match="does not record the sweep config"):
            run_sweep(CONFIG, resume=str(path))

    def test_opaque_config_resume_rejected(self, tmp_path):
        """The config-mismatch guard cannot verify a non-SweepConfig, so
        resuming with one must refuse instead of silently mixing cells."""
        with pytest.raises(ValueError, match="opaque config"):
            run_sweep(("not", "a", "sweep-config"), resume=str(tmp_path / "x.jsonl"))
        assert not (tmp_path / "x.jsonl").exists()

    def test_trim_scans_only_a_tail_window_of_giant_records(self, tmp_path):
        """Paper-scale cell records exceed the initial 64 KiB tail window;
        the scan must grow past them and still repair/trim correctly."""
        path = tmp_path / "giant.jsonl"
        big = json.dumps({"kind": "blob", "payload": "x" * 200_000})
        path.write_text(big + "\n" + big + "\n" + big + "\n" + '{"torn": ')
        ShardStore(path)._trim_torn_tail()
        assert path.read_text() == big + "\n" + big + "\n" + big + "\n"
        # A giant *valid* tail missing only its newline gets repaired.
        path.write_text(big + "\n" + big)
        ShardStore(path)._trim_torn_tail()
        assert path.read_text() == big + "\n" + big + "\n"

    def test_bad_backend_spec_leaves_no_store_behind(self, tmp_path):
        path = tmp_path / "never.jsonl"
        with pytest.raises(ValueError, match="unknown backend"):
            run_sweep(CONFIG, backend="carrier-pigeon", resume=str(path))
        assert not path.exists()

    def test_mismatched_config_rejected(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        run_sweep(CONFIG, resume=str(path))
        with pytest.raises(ValueError, match="different sweep config"):
            run_sweep(replace(CONFIG, seed=CONFIG.seed + 1), resume=str(path))

    def test_resume_composes_with_parallel_backend(self, sweep, tmp_path):
        path = tmp_path / "resume.jsonl"
        run_sweep(CONFIG, resume=str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        resumed = run_sweep(CONFIG, jobs=2, resume=str(path))
        for key in sweep.cells:
            assert resumed.cells[key].words == sweep.cells[key].words, key


class TestFig10Store:
    """The case-study twin of ShardStore: record round-trip and guards."""

    RESULT = (
        {"Naive": [[0.5, 0.25], [0.125, 0.0]]},
        {"Naive": [[0.0625, 0.0], [0.0, 0.0]]},
        {"Naive": [3, None]},
    )

    def test_roundtrip(self, tmp_path):
        from repro.experiments.config import CaseStudyConfig
        from repro.experiments.store import Fig10Store

        config = CaseStudyConfig(num_codes=2, words_per_stratum=2)
        path = tmp_path / "fig10.jsonl"
        store = Fig10Store(path)
        with store.open(config):
            store.append((0.75, 1, 2), self.RESULT)
        loaded_config, shards = Fig10Store(path).load()
        assert loaded_config == config
        assert shards == {(0.75, 1, 2): self.RESULT}

    def test_duplicate_key_last_append_wins(self, tmp_path):
        from repro.experiments.store import Fig10Store

        path = tmp_path / "fig10.jsonl"
        store = Fig10Store(path)
        newer = ({"Naive": [[0.0, 0.0]]}, {"Naive": [[0.0, 0.0]]}, {"Naive": [1]})
        with store.open(None):
            store.append((0.5, 0, 2), self.RESULT)
            store.append((0.5, 0, 2), newer)
        _, shards = Fig10Store(path).load()
        assert shards == {(0.5, 0, 2): newer}

    def test_torn_tail_tolerated(self, tmp_path):
        from repro.experiments.store import Fig10Store

        path = tmp_path / "fig10.jsonl"
        store = Fig10Store(path)
        with store.open(None):
            store.append((0.5, 0, 2), self.RESULT)
        with open(path, "a") as handle:
            handle.write('{"kind": "fig10", "probab')
        _, shards = Fig10Store(path).load()
        assert set(shards) == {(0.5, 0, 2)}

    def test_sweep_store_loading_fig10_file_rejected(self, tmp_path):
        from repro.experiments.store import Fig10Store

        path = tmp_path / "fig10.jsonl"
        Fig10Store(path).open(None).close()
        with pytest.raises(ValueError, match="Fig 10 case-study store"):
            ShardStore(path).load()

    def test_fig10_store_loading_sweep_file_rejected(self, tmp_path):
        from repro.experiments.store import Fig10Store

        path = tmp_path / "sweep.jsonl"
        ShardStore(path).open(None).close()
        with pytest.raises(ValueError, match="not a Fig 10 case-study store"):
            Fig10Store(path).load()
