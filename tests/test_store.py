"""Tests for sweep-result serialization and shard merging."""

from dataclasses import replace

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.fig6 import coverage_curve
from repro.experiments.runner import run_sweep
from repro.experiments.store import merge_sweeps, sweep_from_json, sweep_to_json

CONFIG = SweepConfig(
    num_codes=2,
    words_per_code=3,
    num_rounds=16,
    error_counts=(3,),
    probabilities=(0.5,),
    profilers=("Naive", "HARP-U"),
)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(CONFIG)


class TestJsonRoundtrip:
    def test_cells_survive(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert set(restored.cells) == set(sweep.cells)
        for key in sweep.cells:
            assert restored.cells[key].words == sweep.cells[key].words

    def test_reductions_agree_after_roundtrip(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert coverage_curve(restored, 3, 0.5, "HARP-U") == coverage_curve(
            sweep, 3, 0.5, "HARP-U"
        )

    def test_bad_document_rejected(self):
        with pytest.raises(ValueError):
            sweep_from_json('{"format": "something-else", "cells": []}')


class TestMerge:
    def test_merging_disjoint_seeds_concatenates_words(self, sweep):
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 1))
        merged = merge_sweeps([sweep, other])
        for key in sweep.cells:
            assert len(merged.cells[key].words) == len(sweep.cells[key].words) + len(
                other.cells[key].words
            )

    def test_merge_single_shard_is_identity(self, sweep):
        merged = merge_sweeps([sweep])
        assert merged.cells.keys() == sweep.cells.keys()
        for key in sweep.cells:
            assert merged.cells[key].words == sweep.cells[key].words

    def test_merge_incompatible_rounds_rejected(self, sweep):
        other = run_sweep(replace(CONFIG, num_rounds=8))
        with pytest.raises(ValueError):
            merge_sweeps([sweep, other])

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_sweeps([])

    def test_merged_coverage_pools_both_shards(self, sweep):
        """The merged curve is the word-pooled aggregate, reproducing the
        paper's shard-independent aggregation property."""
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 7))
        merged = merge_sweeps([sweep, other])
        merged_final = coverage_curve(merged, 3, 0.5, "Naive")[-1]
        a = coverage_curve(sweep, 3, 0.5, "Naive")[-1]
        b = coverage_curve(other, 3, 0.5, "Naive")[-1]
        assert min(a, b) - 1e-9 <= merged_final <= max(a, b) + 1e-9


class TestTimings:
    """Per-cell timings must round-trip through JSON and merge additively."""

    def test_timings_survive_roundtrip(self, sweep):
        assert sweep.timings  # the engine records them
        restored = sweep_from_json(sweep_to_json(sweep))
        assert restored.timings == sweep.timings

    def test_missing_timings_roundtrip_as_empty(self, sweep):
        import json

        document = sweep_to_json(sweep)
        payload = json.loads(document)
        for cell in payload["cells"]:
            cell.pop("seconds", None)
        restored = sweep_from_json(json.dumps(payload))
        assert restored.timings == {}
        assert restored.cells.keys() == sweep.cells.keys()

    def test_merge_sums_shared_cells(self, sweep):
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 1))
        merged = merge_sweeps([sweep, other])
        for key in sweep.timings:
            expected = sweep.timings[key] + other.timings.get(key, 0.0)
            assert merged.timings[key] == pytest.approx(expected)

    def test_merge_keeps_one_sided_timings(self, sweep):
        bare = sweep_from_json(sweep_to_json(sweep))
        bare.timings = {}
        merged = merge_sweeps([sweep, bare])
        assert merged.timings == sweep.timings
        # Word lists still concatenated even though one side lacks timings.
        for key in sweep.cells:
            assert len(merged.cells[key].words) == 2 * len(sweep.cells[key].words)

    def test_merged_timings_roundtrip(self, sweep):
        other = run_sweep(replace(CONFIG, seed=CONFIG.seed + 2))
        merged = merge_sweeps([sweep, other])
        restored = sweep_from_json(sweep_to_json(merged))
        assert restored.timings == pytest.approx(merged.timings)
