"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789e-9]])
        assert "1.235e-09" in text

    def test_zero_renders_plainly(self):
        assert "0" in format_table(["x"], [[0.0]]).splitlines()[-1]


class TestFormatSeries:
    def test_basic(self):
        text = format_series("T", {"a": [1.0, 2.0]}, x_values=[10, 20], x_label="round")
        assert text.splitlines()[0] == "T"
        assert "round" in text
        assert "a" in text

    def test_empty_series(self):
        assert "(empty)" in format_series("T", {})

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("T", {"a": [1], "b": [1, 2]})

    def test_x_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("T", {"a": [1, 2]}, x_values=[1])
