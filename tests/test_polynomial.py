"""Unit tests for GF(2) polynomial arithmetic and BCH generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf2m import field
from repro.ecc.polynomial import (
    bch_generator_polynomial,
    degree,
    minimal_polynomial,
    poly_divmod,
    poly_eval_gf2m,
    poly_gcd,
    poly_mod,
    poly_mul,
)

polys = st.integers(min_value=0, max_value=(1 << 12) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 12) - 1)


class TestBasics:
    def test_degree(self):
        assert degree(0) == -1
        assert degree(1) == 0
        assert degree(0b1011) == 3

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert poly_mul(0b11, 0b11) == 0b101

    @settings(max_examples=60)
    @given(polys, polys)
    def test_mul_commutative(self, a, b):
        assert poly_mul(a, b) == poly_mul(b, a)

    @settings(max_examples=60)
    @given(polys, polys, polys)
    def test_mul_distributes_over_xor(self, a, b, c):
        assert poly_mul(a, b ^ c) == poly_mul(a, b) ^ poly_mul(a, c)

    @settings(max_examples=60)
    @given(polys, nonzero_polys)
    def test_divmod_identity(self, a, b):
        q, r = poly_divmod(a, b)
        assert poly_mul(q, b) ^ r == a
        assert degree(r) < degree(b)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_mod(0b101, 0)

    @settings(max_examples=60)
    @given(nonzero_polys, nonzero_polys)
    def test_gcd_divides_both(self, a, b):
        g = poly_gcd(a, b)
        assert poly_mod(a, g) == 0
        assert poly_mod(b, g) == 0


class TestMinimalPolynomial:
    def test_alpha_minimal_poly_is_field_polynomial(self):
        fld = field(4)
        assert minimal_polynomial(fld.alpha, fld) == fld.primitive_polynomial

    def test_unity_minimal_poly(self):
        fld = field(4)
        assert minimal_polynomial(1, fld) == 0b11  # x + 1

    def test_evaluates_to_zero_at_element(self):
        fld = field(5)
        for exponent in (1, 3, 5):
            element = fld.alpha_power(exponent)
            minimal = minimal_polynomial(element, fld)
            assert poly_eval_gf2m(minimal, element, fld) == 0

    def test_degree_divides_m(self):
        fld = field(6)
        for exponent in range(1, 10):
            minimal = minimal_polynomial(fld.alpha_power(exponent), fld)
            assert fld.m % degree(minimal) == 0


class TestBchGenerator:
    def test_t1_is_primitive_polynomial(self):
        fld = field(4)
        assert bch_generator_polynomial(fld, 1) == fld.primitive_polynomial

    def test_t2_degree_is_2m_for_gf16(self):
        fld = field(4)
        generator = bch_generator_polynomial(fld, 2)
        assert degree(generator) == 8  # (15, 7) BCH

    def test_generator_has_designed_roots(self):
        fld = field(4)
        generator = bch_generator_polynomial(fld, 2)
        for exponent in (1, 2, 3, 4):  # designed distance 5: roots alpha^1..4
            assert poly_eval_gf2m(generator, fld.alpha_power(exponent), fld) == 0

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            bch_generator_polynomial(field(4), 0)
