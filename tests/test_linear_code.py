"""Unit and property tests for SystematicCode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import gf2
from repro.ecc.hamming import paper_example_code, random_sec_code
from repro.ecc.linear_code import SystematicCode


@pytest.fixture(scope="module")
def code74():
    return paper_example_code()


@pytest.fixture(scope="module")
def code71():
    return random_sec_code(64, np.random.default_rng(11))


def sec_code_strategy():
    return st.builds(
        lambda k, seed: random_sec_code(k, np.random.default_rng(seed)),
        k=st.integers(min_value=4, max_value=26),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )


class TestStructure:
    def test_dimensions(self, code74):
        assert (code74.n, code74.k, code74.p) == (7, 4, 3)
        assert code74.parity_check_matrix.shape == (3, 7)
        assert code74.generator_matrix_t.shape == (4, 7)

    def test_g_h_orthogonality(self, code74):
        product = gf2.matmul(code74.generator_matrix_t, code74.parity_check_matrix.T)
        assert not product.any()

    @settings(max_examples=25)
    @given(sec_code_strategy())
    def test_g_h_orthogonality_random(self, code):
        product = gf2.matmul(code.generator_matrix_t, code.parity_check_matrix.T)
        assert not product.any()

    def test_systematic_identity_blocks(self, code74):
        h = code74.parity_check_matrix
        assert (h[:, code74.k :] == gf2.identity(code74.p)).all()
        g = code74.generator_matrix_t
        assert (g[:, : code74.k] == gf2.identity(code74.k)).all()

    def test_all_columns_distinct_nonzero(self, code71):
        columns = [code71.column_int(i) for i in range(code71.n)]
        assert 0 not in columns
        assert len(set(columns)) == code71.n

    def test_rejects_aliasing_code(self):
        # Two identical parity columns cannot be distinguished by syndrome.
        parity = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(ValueError):
            SystematicCode(parity, correction_capability=1)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            SystematicCode(np.array([[2, 0]], dtype=np.uint8))

    def test_equality_and_hash(self, code74):
        clone = paper_example_code()
        assert code74 == clone
        assert hash(code74) == hash(clone)


class TestEncode:
    def test_data_bits_preserved(self, code71):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, code71.k, dtype=np.uint8)
        codeword = code71.encode(data)
        assert (codeword[: code71.k] == data).all()

    def test_zero_maps_to_zero(self, code71):
        assert not code71.encode(np.zeros(code71.k, dtype=np.uint8)).any()

    def test_batch_matches_single(self, code71):
        rng = np.random.default_rng(1)
        batch = rng.integers(0, 2, (5, code71.k), dtype=np.uint8)
        encoded = code71.encode(batch)
        for row in range(5):
            assert (encoded[row] == code71.encode(batch[row])).all()

    def test_linearity(self, code74):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, code74.k, dtype=np.uint8)
        b = rng.integers(0, 2, code74.k, dtype=np.uint8)
        assert (code74.encode(a ^ b) == (code74.encode(a) ^ code74.encode(b))).all()

    def test_wrong_length_rejected(self, code74):
        with pytest.raises(ValueError):
            code74.encode(np.zeros(5, dtype=np.uint8))


class TestDecode:
    def test_clean_codeword(self, code71):
        data = np.ones(code71.k, dtype=np.uint8)
        result = code71.decode(code71.encode(data))
        assert (result.data == data).all()
        assert not result.corrected
        assert not result.detected_uncorrectable

    @settings(max_examples=25)
    @given(sec_code_strategy(), st.data())
    def test_corrects_every_single_error(self, code, data):
        """The defining SEC property: any single flipped bit is repaired."""
        position = data.draw(st.integers(min_value=0, max_value=code.n - 1))
        message = np.zeros(code.k, dtype=np.uint8)
        message[:: 2] = 1
        corrupted = code.encode(message).copy()
        corrupted[position] ^= 1
        result = code.decode(corrupted)
        assert (result.data == message).all()
        assert result.corrected_positions == (position,)

    def test_double_error_never_silently_correct(self, code71):
        """A double error either miscorrects or is flagged, never 'fixed'."""
        message = np.ones(code71.k, dtype=np.uint8)
        codeword = code71.encode(message)
        corrupted = codeword.copy()
        corrupted[3] ^= 1
        corrupted[9] ^= 1
        result = code71.decode(corrupted)
        if not result.detected_uncorrectable:
            # Miscorrection: decoder flipped some third position.
            assert result.corrected_positions not in ((3,), (9,))

    def test_syndrome_zero_for_codewords(self, code71):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, code71.k, dtype=np.uint8)
        assert not code71.syndrome(code71.encode(data)).any()

    def test_decode_batch_matches_single(self, code71):
        rng = np.random.default_rng(4)
        batch = rng.integers(0, 2, (8, code71.k), dtype=np.uint8)
        codewords = code71.encode(batch)
        # Corrupt a different position in each word.
        for row in range(8):
            codewords[row, (row * 7) % code71.n] ^= 1
        decoded = code71.decode_batch(codewords)
        for row in range(8):
            assert (decoded[row] == code71.decode(codewords[row]).data).all()

    def test_decode_wrong_length(self, code74):
        with pytest.raises(ValueError):
            code74.decode(np.zeros(8, dtype=np.uint8))

    def test_correction_for_syndrome_zero(self, code74):
        assert code74.correction_for_syndrome(0) == ()

    def test_correction_for_unmatched_syndrome(self, code71):
        matched = {code71.column_int(i) for i in range(code71.n)}
        unmatched = next(s for s in range(1, 1 << code71.p) if s not in matched)
        assert code71.correction_for_syndrome(unmatched) is None
