"""Unit tests for repro.utils.rng."""

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_distinct_keys_distinct_seeds(self):
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7) != derive_seed(8)

    def test_key_path_is_not_flattened(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "x") < 2**64

    def test_key_types_are_tagged(self):
        # An int key and its string spelling must not collide.
        assert derive_seed(1, 3) != derive_seed(1, "3")
        assert derive_seed(1, "a", 7) != derive_seed(1, "a", "7")

    def test_numpy_integers_hash_like_ints(self):
        import numpy as np

        assert derive_seed(1, np.int64(3)) == derive_seed(1, 3)

    def test_float_keys_are_tagged(self):
        assert derive_seed(1, 0.5) == derive_seed(1, 0.5)
        assert derive_seed(1, 0.5) != derive_seed(1, "0.5")
        assert derive_seed(1, 0.25) != derive_seed(1, 0.75)

    def test_unsupported_key_type_rejected(self):
        import pytest

        with pytest.raises(TypeError):
            derive_seed(1, (1, 2))
        with pytest.raises(TypeError):
            derive_seed(1, True)


class TestDeriveRng:
    def test_streams_are_reproducible(self):
        a = derive_rng(3, "stream").random(5)
        b = derive_rng(3, "stream").random(5)
        assert (a == b).all()

    def test_streams_differ_across_keys(self):
        a = derive_rng(3, "s1").random(5)
        b = derive_rng(3, "s2").random(5)
        assert not (a == b).all()
