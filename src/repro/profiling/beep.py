"""BEEP profiling (paper §7.1.1 baseline 2), reimplemented from BEER [145].

BEEP knows the on-die ECC parity-check matrix and uses it to craft data
patterns that *provoke* miscorrections: once at least one post-correction
error has been observed (an *anchor*), BEEP enumerates the pre-correction
error-pattern hypotheses that could explain further errors and charges
exactly the cells each hypothesis involves, leaving all other data bits
discharged so that any failure combination aliases into an observable data
position.  Before the first anchor is confirmed it falls back to random
patterns, exactly as the paper configures it ("use a random data pattern
before the first post-correction error is confirmed").

The crafted-pattern search is the incremental GF(2) solver of
:class:`repro.analysis.atrisk.ChargeSystem` (the paper uses Z3 for the
same purpose — see DESIGN.md §3); under ``REPRO_GF2_TIER=packed`` the
system's basis holds bit-packed uint64 words from the
:mod:`repro.ecc.gf2w` kernel tier, bit-identically to the integer-row
representation.  All per-round heavy lifting lives in
code-level caches (:mod:`repro.analysis.memo`) shared by every word that
uses the same parity-check matrix:

* the anchor-set system is eliminated once per (code, anchors) and each
  hypothesis pair is solved as a two-constraint incremental update
  (:func:`~repro.analysis.memo.cached_crafted_assignment`);
* the O(n²) aliasing-pair expansion per observed target is computed once
  per (code, target) (:func:`~repro.analysis.memo.cached_aliasing_pairs`).

The memo layer returns shared read-only arrays; this class is the single
place that hands out defensive copies.  Cache state never changes results
— hot and cold traces are bit-identical (``tests/test_adaptive_caches.py``).

Reproduced qualitative behaviour (paper §7.2, §7.3): because crafted
patterns charge only hypothesis cells, at-risk bits outside the current
hypothesis pool are rarely charged, so BEEP explores pre-correction
combinations slowly and can plateau below full direct coverage — while its
deliberate aliasing makes it the strongest baseline at *indirect* error
exposure over long horizons.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.memo import code_caches
from repro.ecc.linear_code import SystematicCode
from repro.profiling.base import Profiler

__all__ = ["BeepProfiler"]


class BeepProfiler(Profiler):
    """Parity-check-aware crafted-pattern profiler."""

    name = "BEEP"
    adaptive = True

    def __init__(self, code: SystematicCode, seed: int, pattern: str = "random") -> None:
        super().__init__(code, seed, pattern)
        #: Per-code handle onto the shared crafted/aliasing caches.
        self._caches = code_caches(code)
        #: (target, pair) hypotheses scheduled for crafted rounds.
        self._hypotheses: list[tuple[int, tuple[int, int]]] = []
        self._targets_expanded: set[int] = set()
        self._next_hypothesis = 0
        #: Sorted anchor tuple, maintained on observation so the per-round
        #: cache lookups need not re-sort the observed set.
        self._anchor_key: tuple[int, ...] = ()
        #: The memo-owned epoch of the current anchor set: its lazily
        #: resolved pair -> assignment dict replaces any per-instance
        #: pattern cache, so every word and run reaching these anchors
        #: shares one table.  Refreshed whenever the anchors grow.
        self._epoch = self._caches.crafted_epoch(())

    # ------------------------------------------------------------------
    # Hypothesis generation
    # ------------------------------------------------------------------

    def _expand_target(self, target: int) -> None:
        """Queue every pre-correction pair that aliases onto ``target``.

        An indirect error at ``target`` requires a pattern whose syndrome
        equals ``H[target]``; the weight-2 explanations are the pairs
        ``{a, b}`` with ``H[a] xor H[b] == H[target]``.
        """
        if target in self._targets_expanded:
            return
        self._targets_expanded.add(target)
        for pair in self._caches.aliasing_pairs(target):
            self._hypotheses.append((target, pair))

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        if not mismatches:
            return
        for position in mismatches:
            if position not in self._observed:
                self._observed.add(position)
                self._expand_target(position)
        if len(self._observed) != len(self._anchor_key):
            self._anchor_key = tuple(sorted(self._observed))
            self._epoch = self._caches.crafted_epoch(self._anchor_key)

    # ------------------------------------------------------------------
    # Pattern crafting
    # ------------------------------------------------------------------

    def pattern_for_round(self, round_index: int) -> np.ndarray:
        if not self._hypotheses:
            # Bootstrapping: no anchor yet, fall back to random patterns.
            return super().pattern_for_round(round_index)
        hypotheses = self._hypotheses
        epoch = self._epoch
        resolved = epoch.patterns
        count = len(hypotheses)
        for _ in range(count):
            slot = self._next_hypothesis % count
            self._next_hypothesis += 1
            pair = hypotheses[slot][1]
            assignment = resolved[pair] if pair in resolved else epoch.assignment(pair)
            if assignment is not None:
                # The memo owns the shared read-only array; copy on the
                # way out so callers may mutate their pattern freely.
                return assignment.copy()
        # Every queued hypothesis is charge-infeasible; fall back to random.
        return super().pattern_for_round(round_index)
