"""BEEP profiling (paper §7.1.1 baseline 2), reimplemented from BEER [145].

BEEP knows the on-die ECC parity-check matrix and uses it to craft data
patterns that *provoke* miscorrections: once at least one post-correction
error has been observed (an *anchor*), BEEP enumerates the pre-correction
error-pattern hypotheses that could explain further errors and charges
exactly the cells each hypothesis involves, leaving all other data bits
discharged so that any failure combination aliases into an observable data
position.  Before the first anchor is confirmed it falls back to random
patterns, exactly as the paper configures it ("use a random data pattern
before the first post-correction error is confirmed").

The crafted-pattern search is the GF(2) solver of
:func:`repro.analysis.atrisk.solve_charge_assignment` (the paper uses Z3
for the same purpose — see DESIGN.md §3).

Reproduced qualitative behaviour (paper §7.2, §7.3): because crafted
patterns charge only hypothesis cells, at-risk bits outside the current
hypothesis pool are rarely charged, so BEEP explores pre-correction
combinations slowly and can plateau below full direct coverage — while its
deliberate aliasing makes it the strongest baseline at *indirect* error
exposure over long horizons.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.atrisk import solve_charge_assignment
from repro.ecc.linear_code import SystematicCode
from repro.profiling.base import Profiler

__all__ = ["BeepProfiler"]


class BeepProfiler(Profiler):
    """Parity-check-aware crafted-pattern profiler."""

    name = "BEEP"
    adaptive = True

    def __init__(self, code: SystematicCode, seed: int, pattern: str = "random") -> None:
        super().__init__(code, seed, pattern)
        #: Columns of H as integers, with a reverse index for aliasing math.
        self._columns = [code.column_int(i) for i in range(code.n)]
        self._column_index = {value: position for position, value in enumerate(self._columns)}
        #: (target, pair) hypotheses scheduled for crafted rounds.
        self._hypotheses: list[tuple[int, tuple[int, int]]] = []
        self._targets_expanded: set[int] = set()
        self._next_hypothesis = 0
        #: Crafted-pattern memo: the solution depends only on the anchor
        #: set and the hypothesis pair, and the hypothesis schedule cycles,
        #: so most rounds re-solve an already-seen system.
        self._pattern_cache: dict[tuple[frozenset[int], tuple[int, int]], np.ndarray | None] = {}

    # ------------------------------------------------------------------
    # Hypothesis generation
    # ------------------------------------------------------------------

    def _expand_target(self, target: int) -> None:
        """Queue every pre-correction pair that aliases onto ``target``.

        An indirect error at ``target`` requires a pattern whose syndrome
        equals ``H[target]``; the weight-2 explanations are the pairs
        ``{a, b}`` with ``H[a] xor H[b] == H[target]``.
        """
        if target in self._targets_expanded:
            return
        self._targets_expanded.add(target)
        target_column = self._columns[target]
        for a in range(self.code.n):
            partner = self._column_index.get(target_column ^ self._columns[a])
            if partner is not None and partner > a:
                self._hypotheses.append((target, (a, partner)))

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        for position in mismatches:
            if position not in self._observed:
                self._observed.add(position)
                self._expand_target(position)

    # ------------------------------------------------------------------
    # Pattern crafting
    # ------------------------------------------------------------------

    def pattern_for_round(self, round_index: int) -> np.ndarray:
        if not self._hypotheses:
            # Bootstrapping: no anchor yet, fall back to random patterns.
            return super().pattern_for_round(round_index)
        anchors = frozenset(self._observed)
        for _ in range(len(self._hypotheses)):
            target, pair = self._hypotheses[self._next_hypothesis % len(self._hypotheses)]
            self._next_hypothesis += 1
            key = (anchors, pair)
            if key in self._pattern_cache:
                assignment = self._pattern_cache[key]
            else:
                assignment = solve_charge_assignment(self.code, anchors | set(pair))
                self._pattern_cache[key] = assignment
            if assignment is not None:
                return assignment.copy()
        # Every queued hypothesis is charge-infeasible; fall back to random.
        return super().pattern_for_round(round_index)
