"""Oracle profiler: the unreachable upper bound.

Knows the word's exact ground truth and identifies every post-correction
at-risk bit in the first round.  No physical profiler can do this (it
requires the simulator's knowledge of the at-risk set, including parity
bits), but it anchors comparisons: any metric gap between the oracle and
HARP measures the cost of *reactive* identification, and tests use it to
sanity-check that metrics treat an all-knowing profiler as perfect.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.atrisk import GroundTruth
from repro.ecc.linear_code import SystematicCode
from repro.profiling.base import Profiler

__all__ = ["OracleProfiler"]


class OracleProfiler(Profiler):
    """Identifies the complete ground-truth at-risk set immediately."""

    name = "Oracle"
    adaptive = False
    batched = True

    def __init__(
        self,
        code: SystematicCode,
        seed: int,
        pattern: str = "random",
        ground_truth: GroundTruth | None = None,
    ) -> None:
        super().__init__(code, seed, pattern)
        if ground_truth is None:
            raise ValueError("the oracle needs the ground truth it will reveal")
        self._truth = ground_truth
        self._revealed = False

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        if not self._revealed:
            self._revealed = True
            self._observed.update(self._truth.post_correction_at_risk)
            self._observed.update(self._truth.direct_at_risk)

    def observe_many(
        self, events: list[tuple[int, frozenset[int]]]
    ) -> list[tuple[int, frozenset[int], frozenset[int]]]:
        """The oracle reveals on its first observation — always round 0.

        The scalar harness calls ``observe`` every round (including
        rounds without failures), so the reveal lands at round 0
        regardless of ``events`` — which may be empty for a word with
        no at-risk bits.
        """
        if self._revealed:
            return []
        self._revealed = True
        self._observed.update(self._truth.post_correction_at_risk)
        self._observed.update(self._truth.direct_at_risk)
        return [(0, self.identified, self.identified_observed)]
