"""Coverage aggregation across simulated ECC words (paper §7.1.2).

Coverage is "the proportion of all at-risk bits that are identified",
aggregated over every simulated ECC word: at each round, the number of
(word, bit) pairs identified so far divided by the total number of at-risk
(word, bit) pairs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.atrisk import GroundTruth
from repro.profiling.runner import WordRunResult

__all__ = [
    "coverage_trajectory",
    "missed_indirect_trajectory",
    "aggregate_coverage",
    "aggregate_mean",
]


def coverage_trajectory(
    result: WordRunResult,
    target_bits: frozenset[int],
    use_observed_channel: bool = False,
) -> list[tuple[int, int]]:
    """Per-round (identified, total) pairs for one word against a target set.

    Args:
        result: the word's simulation trace.
        target_bits: the ground-truth at-risk set to measure against (e.g.
            direct-risk bits for Fig 6, indirect-risk bits for Fig 8).
        use_observed_channel: measure only observation-based identification
            (the paper's direct-coverage convention, footnote 5).
    """
    trace = result.observed_per_round if use_observed_channel else result.identified_per_round
    total = len(target_bits)
    return [(len(identified & target_bits), total) for identified in trace]


def missed_indirect_trajectory(result: WordRunResult, ground_truth: GroundTruth) -> list[int]:
    """Per-round count of indirect-risk bits not yet identified (Fig 8)."""
    indirect = ground_truth.indirect_at_risk
    return [len(indirect - identified) for identified in result.identified_per_round]


def aggregate_coverage(per_word: Sequence[Sequence[tuple[int, int]]]) -> list[float]:
    """Pooled coverage per round across words.

    Each element of ``per_word`` is a word's (identified, total) trajectory;
    rounds are pooled as sum(identified) / sum(total).  Words whose target
    set is empty contribute nothing (consistent with the paper's pooling
    over all at-risk bits of all simulated words).
    """
    if not per_word:
        return []
    num_rounds = len(per_word[0])
    for trajectory in per_word:
        if len(trajectory) != num_rounds:
            raise ValueError("trajectories must have equal length")
    coverage: list[float] = []
    for round_index in range(num_rounds):
        identified = sum(trajectory[round_index][0] for trajectory in per_word)
        total = sum(trajectory[round_index][1] for trajectory in per_word)
        coverage.append(identified / total if total else 1.0)
    return coverage


def aggregate_mean(per_word: Sequence[Sequence[float]]) -> list[float]:
    """Mean per round across words of an arbitrary per-word metric."""
    if not per_word:
        return []
    num_rounds = len(per_word[0])
    for trajectory in per_word:
        if len(trajectory) != num_rounds:
            raise ValueError("trajectories must have equal length")
    return [
        sum(trajectory[round_index] for trajectory in per_word) / len(per_word)
        for round_index in range(num_rounds)
    ]
