"""Error-profiling algorithms: Naive, BEEP, HARP-U, HARP-A, HARP-A+BEEP."""

from repro.profiling.base import Profiler, ReadMode
from repro.profiling.beep import BeepProfiler
from repro.profiling.combined import HarpABeepProfiler
from repro.profiling.coverage import (
    aggregate_coverage,
    aggregate_mean,
    coverage_trajectory,
    missed_indirect_trajectory,
)
from repro.profiling.harp import HarpAProfiler, HarpUProfiler
from repro.profiling.naive import NaiveProfiler
from repro.profiling.oracle import OracleProfiler
from repro.profiling.runner import WordRunResult, post_correction_data_errors, simulate_word

__all__ = [
    "Profiler",
    "ReadMode",
    "NaiveProfiler",
    "BeepProfiler",
    "HarpUProfiler",
    "HarpAProfiler",
    "HarpABeepProfiler",
    "OracleProfiler",
    "WordRunResult",
    "simulate_word",
    "post_correction_data_errors",
    "coverage_trajectory",
    "missed_indirect_trajectory",
    "aggregate_coverage",
    "aggregate_mean",
    "PROFILER_REGISTRY",
]

#: Registry used by experiment configs to instantiate profilers by name.
PROFILER_REGISTRY = {
    "Naive": NaiveProfiler,
    "BEEP": BeepProfiler,
    "HARP-U": HarpUProfiler,
    "HARP-A": HarpAProfiler,
    "HARP-A+BEEP": HarpABeepProfiler,
}
