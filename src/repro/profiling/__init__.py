"""Error-profiling algorithms: Naive, BEEP, HARP-U, HARP-A, HARP-A+BEEP.

The package implements every profiler the paper evaluates, plus the
oracle upper bound, behind one abstraction
(:class:`~repro.profiling.base.Profiler`): each round a profiler picks
a dataword to program; the harness writes it through on-die ECC,
samples pre-correction errors, and reports back the mismatching bit
positions for whichever read path the profiler uses (normal,
post-correction data; or bypass, raw pre-correction data — paper §5.2).

Profiler roster (each module docstring carries the full description):

==============  ====================  =====================================
registry name   paper section         approach
==============  ====================  =====================================
``Naive``       §7.1.1 (baseline 1)   worst-case patterns, normal reads,
                                      no ECC knowledge
``BEEP``        §7.1.1 (baseline 2)   knows the parity-check matrix;
                                      crafts patterns that provoke
                                      miscorrections (from BEER, MICRO'20)
``HARP-U``      §6                    bypass reads: observes raw
                                      pre-correction data-bit errors
``HARP-A``      §6.3.1                HARP-U + precomputes which data
                                      positions identified bits can
                                      miscorrect onto
``HARP-A+BEEP`` §7.3.1                HARP-A active phase, then BEEP
                                      seeded with the identified set
(Oracle)        §7.1 (upper bound)    reads the simulator's ground truth;
                                      not in the registry, tests only
==============  ====================  =====================================

Experiment configs name profilers by their :data:`PROFILER_REGISTRY`
key.  The per-word simulation loop lives in
:mod:`repro.profiling.runner` (`simulate_word`), and
:mod:`repro.profiling.coverage` aggregates traces into the coverage
metrics of Figs 6-8.
"""

from repro.profiling.base import Profiler, ReadMode
from repro.profiling.beep import BeepProfiler
from repro.profiling.combined import HarpABeepProfiler
from repro.profiling.coverage import (
    aggregate_coverage,
    aggregate_mean,
    coverage_trajectory,
    missed_indirect_trajectory,
)
from repro.profiling.harp import HarpAProfiler, HarpUProfiler
from repro.profiling.naive import NaiveProfiler
from repro.profiling.oracle import OracleProfiler
from repro.profiling.runner import WordRunResult, post_correction_data_errors, simulate_word

__all__ = [
    "Profiler",
    "ReadMode",
    "NaiveProfiler",
    "BeepProfiler",
    "HarpUProfiler",
    "HarpAProfiler",
    "HarpABeepProfiler",
    "OracleProfiler",
    "WordRunResult",
    "simulate_word",
    "post_correction_data_errors",
    "coverage_trajectory",
    "missed_indirect_trajectory",
    "aggregate_coverage",
    "aggregate_mean",
    "PROFILER_REGISTRY",
]

#: Registry used by experiment configs to instantiate profilers by name.
PROFILER_REGISTRY = {
    "Naive": NaiveProfiler,
    "BEEP": BeepProfiler,
    "HARP-U": HarpUProfiler,
    "HARP-A": HarpAProfiler,
    "HARP-A+BEEP": HarpABeepProfiler,
}
