"""Per-word profiling simulation (the paper's Monte-Carlo inner loop).

For one ECC word — a code, an at-risk profile, and an error seed — this
module simulates ``R`` rounds of a profiler and records the cumulative
identified set after every round.

Fairness (paper §7.1.2: "each profiler is evaluated with the exact same set
of ECC words, pre-correction error patterns, and data patterns"): the
Bernoulli randomness is a pre-drawn uniform matrix ``U[round, at_risk_bit]``
derived from the word seed alone, so two profilers testing the same word
see identical draws; an at-risk bit fails in a round iff it is charged by
that profiler's pattern *and* its draw clears the per-bit probability.
Pattern-independent draws make the comparison deterministic and unbiased.

Decode semantics use the integer-syndrome shortcut: a round with failed
positions ``T`` has syndrome ``xor of H-columns over T``; the correction
lookup then yields the post-correction error set in O(|T|) — no dense
matrix decode in the hot loop.

The sweep engine simulates the same word once per (probability, profiler)
cell; :class:`WordArtifacts` lets it hand in the inputs those runs share
(standard pattern schedule, its encoding, failure draws) so they are
derived once per word instead of once per run — adaptive profilers also
serve their bootstrap/fallback rounds from the precomputed schedule via
``Profiler.attach_standard_schedule``.  Within a run, repeated failure
patterns memoize their decode consequences; crafted patterns memoize
their charge masks as integer bitmasks in a process-wide per-word scope
(shared across the cells that re-simulate the word), so the adaptive
per-round failure check is a single int AND; and the cumulative trace
sets are rebuilt only on rounds where the profiler's state actually
moved (tracked through ``Profiler.observation_count``).  All of it is
bit-identical to the straight-line loop — ``tests/test_sweep_engine.py``
and ``tests/test_adaptive_caches.py`` pin that.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.memo import code_caches
from repro.ecc.linear_code import SystematicCode
from repro.memory.cells import CellOrientation
from repro.memory.error_model import WordErrorProfile, check_profile_positions
from repro.profiling.base import Profiler, ReadMode
from repro.utils.rng import derive_rng

__all__ = [
    "BatchedWordArtifacts",
    "WordArtifacts",
    "WordRunResult",
    "simulate_word",
    "simulate_words_batched",
    "post_correction_data_errors",
    "post_correction_data_errors_batch",
    "batched_kernel_enabled",
    "clear_charge_mask_cache",
]


#: Environment knob selecting the engine's simulation kernel: ``auto``
#: (default) dispatches non-adaptive cells to the cell-batched
#: :func:`simulate_words_batched`, ``scalar`` forces the per-word
#: reference path everywhere.  Both produce bit-identical results; the
#: knob exists for benchmarking and as an escape hatch.
#: Interned (word positions, failure bitmask) -> failed-positions tuple.
#: Value-only cache (no invalidation hazard); the cap bounds pathological
#: sweeps, normal grids hold a few thousand entries.
_PATTERN_TUPLES: dict[tuple, tuple[int, ...]] = {}
_PATTERN_TUPLES_MAX = 1 << 20

_KERNEL_ENV = "REPRO_SIM_KERNEL"
_KERNEL_MODES = ("auto", "scalar")


def batched_kernel_enabled() -> bool:
    """Whether the sweep engine may dispatch cells to the batched kernel.

    Reads ``REPRO_SIM_KERNEL`` on every call (mirroring the
    ``REPRO_GF2_TIER`` dispatch) so tests and operators can flip the
    kernel without reloading modules.
    """
    value = os.environ.get(_KERNEL_ENV, "auto").strip().lower() or "auto"
    if value not in _KERNEL_MODES:
        raise ValueError(f"{_KERNEL_ENV} must be one of {_KERNEL_MODES}, got {value!r}")
    return value == "auto"


#: Cross-run charge-mask cache for adaptive (crafted) patterns: the mask
#: is pure in (code, at-risk positions, orientation, written dataword),
#: and the sweep engine re-simulates each word once per (probability,
#: profiler) cell with largely overlapping crafted patterns.  Two-level:
#: scope (code, positions, orientation) -> {pattern bytes -> int mask},
#: so the per-(word, run) inner dict is fetched once per simulation and
#: the hot path never re-hashes the code.  Masks are integer bitmasks
#: (bit i = at-risk position i), making the per-round failure check a
#: single int AND; process-local like every other engine cache.
_charge_mask_cache: dict = {}
_CHARGE_MASK_MAX_SCOPES = 8192


def _pack_bits(mask: np.ndarray) -> int:
    """Pack a boolean vector into an integer bitmask (bit i = element i)."""
    return int.from_bytes(
        np.packbits(mask, bitorder="little").tobytes(), "little"
    )


def clear_charge_mask_cache() -> None:
    """Empty the cross-run charge-mask cache (tests and benchmarks)."""
    _charge_mask_cache.clear()


def post_correction_data_errors(code: SystematicCode, failed: tuple[int, ...]) -> frozenset[int]:
    """Exact post-correction data-error positions for a failure pattern."""
    if not failed:
        return frozenset()
    syndrome = 0
    for position in failed:
        syndrome ^= code.column_int(position)
    correction = code.correction_for_syndrome(syndrome)
    post = set(failed)
    if correction:
        post ^= set(correction)
    return frozenset(p for p in post if p < code.k)


def post_correction_data_errors_batch(
    code: SystematicCode, patterns: Sequence[tuple[int, ...]]
) -> list[frozenset[int]]:
    """Batched :func:`post_correction_data_errors` over failure patterns.

    Builds one indicator matrix over all patterns and resolves every
    syndrome through a single multi-RHS GF(2) product
    (:meth:`~repro.ecc.linear_code.SystematicCode.syndrome_ints_batch`,
    which rides the packed ``gf2w`` kernel at scale) instead of
    per-pattern column XORs.  Bit-identical to mapping the scalar helper.
    """
    if not patterns:
        return []
    indicators = np.zeros((len(patterns), code.n), dtype=np.uint8)
    for row, failed in enumerate(patterns):
        indicators[row, list(failed)] = 1
    syndrome_ints = code.syndrome_ints_batch(indicators)
    k = code.k
    results: list[frozenset[int]] = []
    for failed, syndrome in zip(patterns, syndrome_ints.tolist()):
        if not failed:
            results.append(frozenset())
            continue
        correction = code.correction_for_syndrome(syndrome)
        post = set(failed)
        if correction:
            post ^= set(correction)
        results.append(frozenset(p for p in post if p < k))
    return results


@dataclass
class WordRunResult:
    """Per-round identification trace of one (profiler, word) simulation.

    Attributes:
        identified_per_round: cumulative identified set (observation and
            prediction channels merged) after each round — what the repair
            mechanism would know.
        observed_per_round: cumulative observation-channel set after each
            round (used for the paper's direct-coverage metric, which
            footnote 5 defines identically for HARP-U and HARP-A).
        failures_per_round: the pre-correction failure pattern of each
            round (simulation ground truth, for analysis).
    """

    identified_per_round: list[frozenset[int]]
    observed_per_round: list[frozenset[int]]
    failures_per_round: list[tuple[int, ...]]

    @property
    def num_rounds(self) -> int:
        return len(self.identified_per_round)

    def final_identified(self) -> frozenset[int]:
        return self.identified_per_round[-1] if self.identified_per_round else frozenset()


def _failure_draws(
    profile: WordErrorProfile, num_rounds: int, word_seed: int
) -> np.ndarray:
    """Pre-drawn uniform variates, shape (num_rounds, at-risk count)."""
    rng = derive_rng(word_seed, "failure-draws")
    return rng.random((num_rounds, profile.count))


def _failure_tuples(
    failed_matrix: np.ndarray, positions: np.ndarray, num_rounds: int
) -> list[tuple[int, ...]]:
    """Per-round failed-position tuples from a boolean (rounds, at-risk) mask.

    One ``nonzero`` pass plus splitting on the cumulative row counts
    replaces the per-element dict loop: ``nonzero`` is row-major, so each
    row's columns come out ascending (matching the sorted profile
    positions) and the running counts are exactly the row boundaries.
    The split slices a single ``tolist`` materialization — cheaper than
    ``np.split``'s per-piece view construction on dense masks.
    """
    failed_by_round: list[tuple[int, ...]] = [()] * num_rounds
    counts = np.count_nonzero(failed_matrix, axis=1)
    rows = np.flatnonzero(counts)
    if rows.size:
        mapped = positions[np.nonzero(failed_matrix)[1]].tolist()
        bounds = np.cumsum(counts[rows]).tolist()
        start = 0
        for row, stop in zip(rows.tolist(), bounds):
            failed_by_round[row] = tuple(mapped[start:stop])
            start = stop
    return failed_by_round


@dataclass(frozen=True)
class WordArtifacts:
    """Precomputed simulation inputs shared across repeated word runs.

    The sweep engine simulates the same ECC word many times — once per
    (probability, profiler) cell — and everything here is identical across
    those runs: the standard pattern schedule and its encoding depend only
    on (pattern, word seed, code), and the failure draws depend only on
    the word seed.  Passing them in avoids re-deriving per-round RNGs and
    re-encoding the schedule in every cell.

    Every field is optional; whatever is present must match the run's
    (profiler pattern, code, profile, ``num_rounds``, ``word_seed``)
    exactly — :func:`simulate_word` validates shapes but trusts contents.

    Attributes:
        schedule: ``(num_rounds, k)`` datawords of the *standard* pattern
            schedule.  Only used for profilers that follow the base
            schedule verbatim (adaptive profilers and subclasses that
            override ``pattern_for_round`` ignore it).
        codewords: ``(num_rounds, n)`` encoding of ``schedule``.
        draws: ``(num_rounds, profile.count)`` uniform failure variates,
            as produced by the ``word_seed``-derived stream.
    """

    schedule: np.ndarray | None = None
    codewords: np.ndarray | None = None
    draws: np.ndarray | None = None


def simulate_word(
    profiler: Profiler,
    profile: WordErrorProfile,
    num_rounds: int,
    word_seed: int,
    orientation: CellOrientation | None = None,
    artifacts: WordArtifacts | None = None,
) -> WordRunResult:
    """Run a profiler against one ECC word for ``num_rounds`` rounds.

    Non-adaptive profilers (pattern schedule independent of observations)
    take a vectorized fast path: all patterns are encoded in one batch and
    all failure draws resolved in one array operation.  Adaptive profilers
    (BEEP and hybrids) interleave pattern crafting with observations and
    run sequentially.  Both paths produce bit-identical traces for
    non-adaptive profilers because the draws are pattern-independent.

    Args:
        orientation: cell orientation; ``None`` (the paper's model) means
            all true cells, where a stored 1 is the charged/vulnerable
            state.  With anti cells a stored 0 is vulnerable instead.
        artifacts: optional precomputed inputs (see :class:`WordArtifacts`)
            supplied by the sweep engine; the result is bit-identical with
            or without them.
    """
    code = profiler.code
    check_profile_positions(profile, code.n)
    if artifacts is not None and artifacts.draws is not None:
        if artifacts.draws.shape != (num_rounds, profile.count):
            raise ValueError(
                f"precomputed draws shape {artifacts.draws.shape} != "
                f"({num_rounds}, {profile.count})"
            )
        draws = artifacts.draws
    else:
        draws = _failure_draws(profile, num_rounds, word_seed)
    probabilities = np.asarray(profile.probabilities, dtype=float)
    positions = np.asarray(profile.positions, dtype=np.intp)

    def charge_of(codeword_bits: np.ndarray) -> np.ndarray:
        """Charged mask restricted to the at-risk positions."""
        if orientation is None:
            return codeword_bits[..., positions].astype(bool)
        return orientation.charged_mask(codeword_bits)[..., positions].astype(bool)

    identified_trace: list[frozenset[int]] = []
    observed_trace: list[frozenset[int]] = []
    failure_trace: list[tuple[int, ...]] = []

    if profiler.adaptive:
        written_rounds = None
        if (
            artifacts is not None
            and artifacts.schedule is not None
            and artifacts.schedule.shape == (num_rounds, code.k)
        ):
            # Adaptive profilers fall back to the base schedule on
            # bootstrap rounds; serving those rows from the precomputed
            # artifact skips the per-round RNG re-derivation.
            profiler.attach_standard_schedule(artifacts.schedule)
    else:
        # The precomputed schedule is only valid for profilers that follow
        # the base schedule verbatim; a subclass overriding
        # pattern_for_round falls back to materializing its own rounds.
        standard_schedule = type(profiler).pattern_for_round is Profiler.pattern_for_round
        if (
            artifacts is not None
            and artifacts.schedule is not None
            and standard_schedule
            and artifacts.schedule.shape == (num_rounds, code.k)
        ):
            written_rounds = artifacts.schedule
            codewords = artifacts.codewords
            if codewords is None or codewords.shape != (num_rounds, code.n):
                codewords = code.encode(written_rounds) if profile.count else None
        else:
            written_rounds = np.stack(
                [profiler.pattern_for_round(r) for r in range(num_rounds)]
            )
            codewords = code.encode(written_rounds) if profile.count else None
        if profile.count:
            failed_matrix = charge_of(codewords) & (draws < probabilities)
            failed_by_round = _failure_tuples(failed_matrix, positions, num_rounds)
        else:
            failed_by_round = [()] * num_rounds

    # Failure patterns repeat across rounds (always at p=1.0, often below),
    # and decode consequences are pure in (code, mode, pattern).  A
    # per-run dict fronts the shared analysis-layer memo
    # (CodeAnalysisCaches.decode_consequences), so repeated cells on the
    # same code — and shared-memory workers — reuse each other's decodes
    # while the per-round hot path stays a plain dict hit.
    analysis_caches = code_caches(code)
    mismatch_cache: dict[tuple[str, tuple[int, ...]], frozenset[int]] = {}
    previous_observed_count = -1
    previous_predicted: frozenset[int] | None = None
    current_identified: frozenset[int] = frozenset()
    current_observed: frozenset[int] = frozenset()

    if written_rounds is None and profile.count:
        # The adaptive loop runs round by round; packing the Bernoulli
        # draws and charge masks into per-round integer bitmasks turns
        # the failure check into one int AND instead of numpy ops.
        below_rows = np.packbits(draws < probabilities, axis=1, bitorder="little")
        below_ints = [int.from_bytes(row.tobytes(), "little") for row in below_rows]
        position_values = profile.positions
        # Adaptive profilers revisit the same crafted pattern many times;
        # the encode + charge-mask pipeline is pure in the written
        # dataword, and the process-wide scope dict also collapses
        # repeats across the cells that re-simulate this word.
        charge_mask_scope = (
            code,
            profile.positions,
            None if orientation is None else orientation.true_cell_mask.tobytes(),
        )
        charged_cache = _charge_mask_cache.get(charge_mask_scope)
        if charged_cache is None:
            if len(_charge_mask_cache) >= _CHARGE_MASK_MAX_SCOPES:
                _charge_mask_cache.clear()
            charged_cache = _charge_mask_cache[charge_mask_scope] = {}

    for round_index in range(num_rounds):
        if written_rounds is None:
            written = profiler.pattern_for_round(round_index)
            if profile.count:
                pattern_key = written.tobytes()
                charged = charged_cache.get(pattern_key)
                if charged is None:
                    charged = _pack_bits(charge_of(code.encode(written)))
                    charged_cache[pattern_key] = charged
                failed_bits = charged & below_ints[round_index]
                if failed_bits:
                    failed_list = []
                    while failed_bits:
                        low_bit = failed_bits & -failed_bits
                        failed_list.append(position_values[low_bit.bit_length() - 1])
                        failed_bits ^= low_bit
                    failed = tuple(failed_list)
                else:
                    failed = ()
            else:
                failed = ()
        else:
            written = written_rounds[round_index]
            failed = failed_by_round[round_index]
        failure_trace.append(failed)

        mode = profiler.read_mode_for(round_index)
        key = (mode, failed)
        mismatches = mismatch_cache.get(key)
        if mismatches is None:
            if mode == ReadMode.BYPASS:
                # Raw data bits: mismatches are exactly the failed data
                # positions.
                mismatches = analysis_caches.decode_consequences(
                    mode, failed, lambda: frozenset(p for p in failed if p < code.k)
                )
            else:
                mismatches = analysis_caches.decode_consequences(
                    mode, failed, lambda: post_correction_data_errors(code, failed)
                )
            mismatch_cache[key] = mismatches
        profiler.observe(round_index, written, mismatches)
        # Rebuild the cumulative frozensets only when the profiler's state
        # moved: the observation channel is add-only (``observation_count``
        # is its change fingerprint) and the prediction channel is compared
        # by value.
        observed_count = profiler.observation_count
        predicted = profiler.identified_predicted
        if observed_count != previous_observed_count or predicted != previous_predicted:
            current_identified = profiler.identified
            current_observed = profiler.identified_observed
            previous_observed_count = observed_count
            previous_predicted = predicted
        identified_trace.append(current_identified)
        observed_trace.append(current_observed)

    return WordRunResult(
        identified_per_round=identified_trace,
        observed_per_round=observed_trace,
        failures_per_round=failure_trace,
    )


@dataclass(frozen=True)
class BatchedWordArtifacts:
    """Pre-stacked batch inputs shared by a whole sweep cell.

    The engine derives these once per (config, error count) — see
    ``repro.experiments.runner._batch_stacks_for`` — and hands the
    batched kernel zero-copy slices per word group, so no per-cell
    restacking happens.  Requires a uniform word population (same
    codeword length, same at-risk count); like :class:`WordArtifacts`,
    shapes are validated but contents trusted.

    Attributes:
        codewords: ``(words, rounds, n)`` standard-schedule encodings.
        draws: ``(words, rounds, count)`` uniform failure variates.
        positions: ``(words, count)`` sorted at-risk codeword positions.
    """

    codewords: np.ndarray | None = None
    draws: np.ndarray | None = None
    positions: np.ndarray | None = None


def _batched_codewords(
    profilers: Sequence[Profiler],
    profiles: Sequence[WordErrorProfile],
    num_rounds: int,
    standard: list[bool],
    artifacts: Sequence[WordArtifacts | None] | None,
    batch_artifacts: BatchedWordArtifacts | None,
) -> tuple[list[np.ndarray | None], list[bool]]:
    """Per-word ``(rounds, n)`` codeword arrays, encoding misses in batch.

    Returns the arrays plus a per-word flag marking rows served straight
    from ``batch_artifacts`` (a group covering only such rows can use
    the stacked array itself instead of re-stacking views).  Words with
    no at-risk bits are skipped — their codewords are never consulted.
    """
    count = len(profilers)
    codewords_list: list[np.ndarray | None] = [None] * count
    from_stack = [False] * count
    stacked = batch_artifacts.codewords if batch_artifacts is not None else None
    to_encode: dict[int, tuple[SystematicCode, list[int], list[np.ndarray]]] = {}
    for index, (profiler, profile) in enumerate(zip(profilers, profiles)):
        if not profile.count:
            continue
        code = profiler.code
        if (
            stacked is not None
            and standard[index]
            and stacked.shape == (count, num_rounds, code.n)
        ):
            codewords_list[index] = stacked[index]
            from_stack[index] = True
            continue
        word_artifacts = artifacts[index] if artifacts is not None else None
        schedule = None
        if (
            word_artifacts is not None
            and word_artifacts.schedule is not None
            and standard[index]
            and word_artifacts.schedule.shape == (num_rounds, code.k)
        ):
            codewords = word_artifacts.codewords
            if codewords is not None and codewords.shape == (num_rounds, code.n):
                codewords_list[index] = codewords
                continue
            schedule = word_artifacts.schedule
        if schedule is None:
            schedule = np.stack(
                [profiler.pattern_for_round(r) for r in range(num_rounds)]
            )
        entry = to_encode.get(id(code))
        if entry is None:
            entry = to_encode[id(code)] = (code, [], [])
        entry[1].append(index)
        entry[2].append(schedule)
    # One encode per code over (words x rounds, k): the multi-RHS parity
    # product rides the packed GF(2) kernel once the batch is large.
    for code, indices, schedules in to_encode.values():
        encoded = code.encode(np.concatenate(schedules, axis=0))
        for position, index in enumerate(indices):
            codewords_list[index] = encoded[
                position * num_rounds : (position + 1) * num_rounds
            ]
    return codewords_list, from_stack


def simulate_words_batched(
    profilers: Sequence[Profiler],
    profiles: Sequence[WordErrorProfile],
    num_rounds: int,
    word_seeds: Sequence[int],
    orientation: CellOrientation | None = None,
    artifacts: Sequence[WordArtifacts | None] | None = None,
    batch_artifacts: BatchedWordArtifacts | None = None,
) -> list[WordRunResult]:
    """Simulate a whole cell of words through one vectorized pass.

    The cell-batched twin of :func:`simulate_word` for non-adaptive
    profilers that declare :attr:`~repro.profiling.base.Profiler.batched`:
    schedules encode in one GF(2) product per code, failure draws resolve
    through a single 3-D charged-mask comparison, the distinct failure
    patterns of the whole batch decode through one multi-RHS syndrome
    product per (code, read mode) — shared with every other run through
    the promoted decode-consequence memo — and each profiler consumes its
    run as compressed mismatch events
    (:meth:`~repro.profiling.base.Profiler.observe_many`), so cumulative
    sets materialize only at trace change points.  Bit-identical to
    calling :func:`simulate_word` per word, on both GF(2) tiers —
    property-tested in ``tests/test_batched_kernel.py`` and pinned at
    >=3x in ``benchmarks/bench_batched_words.py``.

    Args:
        profilers: one fresh profiler instance per word (same contract as
            the scalar path: a profiler is consumed by its run).
        profiles: per-word at-risk profiles.
        num_rounds: rounds to simulate (same for every word of a cell).
        word_seeds: per-word failure-draw seeds.
        orientation: cell orientation shared by the batch (``None`` =
            all true cells).
        artifacts: optional per-word precomputed inputs.
        batch_artifacts: optional pre-stacked cell inputs; takes
            precedence over ``artifacts`` where present.

    Raises:
        ValueError: for an adaptive or non-``batched`` profiler, length
            mismatches, or precomputed arrays of the wrong shape.
    """
    count = len(profilers)
    if len(profiles) != count or len(word_seeds) != count:
        raise ValueError(
            f"batch length mismatch: {count} profilers, {len(profiles)} "
            f"profiles, {len(word_seeds)} word seeds"
        )
    if artifacts is not None and len(artifacts) != count:
        raise ValueError(f"batch length mismatch: {len(artifacts)} artifacts for {count} words")
    for profiler in profilers:
        if profiler.adaptive or not profiler.batched:
            raise ValueError(
                f"profiler {profiler.name!r} does not support the batched "
                "kernel (adaptive or batched=False); use simulate_word"
            )
    if not count:
        return []
    for profiler, profile in zip(profilers, profiles):
        check_profile_positions(profile, profiler.code.n)
    if not num_rounds:
        return [WordRunResult([], [], []) for _ in range(count)]

    batch_draws = batch_artifacts.draws if batch_artifacts is not None else None
    if batch_draws is not None:
        for profile in profiles:
            if batch_draws.shape != (count, num_rounds, profile.count):
                raise ValueError(
                    f"precomputed batch draws shape {batch_draws.shape} != "
                    f"({count}, {num_rounds}, {profile.count})"
                )
    batch_positions = batch_artifacts.positions if batch_artifacts is not None else None

    def draws_for(index: int) -> np.ndarray:
        if batch_draws is not None:
            return batch_draws[index]
        word_artifacts = artifacts[index] if artifacts is not None else None
        if word_artifacts is not None and word_artifacts.draws is not None:
            if word_artifacts.draws.shape != (num_rounds, profiles[index].count):
                raise ValueError(
                    f"precomputed draws shape {word_artifacts.draws.shape} != "
                    f"({num_rounds}, {profiles[index].count})"
                )
            return word_artifacts.draws
        return _failure_draws(profiles[index], num_rounds, word_seeds[index])

    standard = [
        type(profiler).pattern_for_round is Profiler.pattern_for_round
        for profiler in profilers
    ]
    codewords_list, from_stack = _batched_codewords(
        profilers, profiles, num_rounds, standard, artifacts, batch_artifacts
    )

    # ------------------------------------------------------------------
    # Batched failure resolution: one 3-D mask comparison per uniform
    # (at-risk count, codeword length) group, then one nonzero/split
    # pass turning the whole group's failures into per-round tuples.
    # ------------------------------------------------------------------
    failed_by_word: list[list[tuple[int, ...]]] = [[()] * num_rounds for _ in range(count)]
    first_rounds_per_word: list[dict[tuple[int, ...], int]] = [{} for _ in range(count)]
    groups: dict[tuple[int, int], list[int]] = {}
    for index, profile in enumerate(profiles):
        if profile.count and num_rounds:
            groups.setdefault((profile.count, profilers[index].code.n), []).append(index)
    for (at_risk, _n), indices in groups.items():
        whole_batch = len(indices) == count
        if whole_batch and all(from_stack):
            codewords3 = batch_artifacts.codewords
        else:
            codewords3 = np.stack([codewords_list[i] for i in indices])
        if whole_batch and batch_draws is not None:
            draws3 = batch_draws
        else:
            draws3 = np.stack([draws_for(i) for i in indices])
        if (
            whole_batch
            and batch_positions is not None
            and batch_positions.shape == (count, at_risk)
        ):
            positions2 = batch_positions
        else:
            positions2 = np.stack(
                [np.asarray(profiles[i].positions, dtype=np.intp) for i in indices]
            )
        probabilities2 = np.stack(
            [np.asarray(profiles[i].probabilities, dtype=float) for i in indices]
        )
        bits = codewords3 if orientation is None else orientation.charged_mask(codewords3)
        charged = np.take_along_axis(
            bits, positions2[:, None, :].astype(np.intp), axis=2
        ).astype(bool)
        failed = charged & (draws3 < probabilities2[:, None, :])
        group_size = len(indices)
        if at_risk + max(group_size - 1, 1).bit_length() <= 62:
            # Pack each round's failure pattern into an int64 bitmask and
            # the word's group-local index into the bits above it: one
            # ``np.unique`` over the whole group finds every distinct
            # (word, pattern) pair and its first flat index — which is
            # word-major and round-ascending, exactly the event order the
            # ``observe_many`` contract needs.  Tuples are then built per
            # *distinct* pattern, not per nonzero round.
            weights = np.int64(1) << np.arange(at_risk, dtype=np.int64)
            masks2 = failed.astype(np.int64) @ weights
            keys = masks2.ravel() | (
                np.arange(group_size, dtype=np.int64).repeat(num_rounds) << at_risk
            )
            uniq_keys, first_idx = np.unique(keys, return_index=True)
            order = np.argsort(first_idx)
            low_bits = (np.int64(1) << at_risk) - 1
            masks_sorted = (uniq_keys[order] & low_bits).tolist()
            positions_lists = positions2.tolist()
            mask_maps: list[dict[int, tuple[int, ...]] | None] = [None] * group_size
            # The distinct pairs arrive word-major: hoist the per-word
            # lookups out of the (much longer) per-pattern stream.
            prev_local = -1
            positions_key: tuple[int, ...] = ()
            positions_row: list[int] = []
            first_rounds: dict = {}
            mapping = {}
            intern_get = _PATTERN_TUPLES.get
            for idx, mask in zip(first_idx[order].tolist(), masks_sorted):
                if not mask:
                    continue
                local = idx // num_rounds
                if local != prev_local:
                    prev_local = local
                    word_index = indices[local]
                    positions_key = profiles[word_index].positions
                    positions_row = positions_lists[local]
                    first_rounds = first_rounds_per_word[word_index]
                    mapping = mask_maps[local] = {0: ()}
                # Patterns recur heavily across sweep cells (every
                # probability level and profiler revisits the same word):
                # intern (positions, mask) -> tuple so repeats share one
                # object and skip the rebuild.
                intern_key = (positions_key, mask)
                failed_tuple = intern_get(intern_key)
                if failed_tuple is None:
                    failed_tuple = tuple(
                        [pos for bit, pos in enumerate(positions_row) if (mask >> bit) & 1]
                    )
                    if len(_PATTERN_TUPLES) >= _PATTERN_TUPLES_MAX:
                        _PATTERN_TUPLES.clear()
                    _PATTERN_TUPLES[intern_key] = failed_tuple
                mapping[mask] = failed_tuple
                first_rounds[failed_tuple] = (idx % num_rounds, failed_tuple)
            all_masks = masks2.tolist()
            for local, word_index in enumerate(indices):
                mapping = mask_maps[local]
                if mapping is None:
                    continue  # no failures: the all-empty default stands
                failed_by_word[word_index] = [mapping[v] for v in all_masks[local]]
            continue
        flat = failed.reshape(len(indices) * num_rounds, at_risk)
        counts = np.count_nonzero(flat, axis=1)
        rows = np.flatnonzero(counts)
        if not rows.size:
            continue
        row_counts = counts[rows]
        words_of_rows = rows // num_rounds
        mapped = positions2[
            np.repeat(words_of_rows, row_counts), np.nonzero(flat)[1]
        ].tolist()
        bounds = np.cumsum(row_counts).tolist()
        # nonzero is row-major: rows ascend word-major then round-major,
        # so each word's first occurrence of a pattern is recorded at its
        # earliest round and event insertion order is ascending by round.
        # Slicing one tolist materialization beats np.split's per-piece
        # view construction; interning repeated tuples through the
        # first-rounds dict keeps dense (p=1.0) traces to one object.
        start = 0
        for row, word, stop in zip(rows.tolist(), words_of_rows.tolist(), bounds):
            failed_tuple = tuple(mapped[start:stop])
            start = stop
            word_index = indices[word]
            first_rounds = first_rounds_per_word[word_index]
            interned = first_rounds.get(failed_tuple)
            if interned is None:
                first_rounds[failed_tuple] = (row % num_rounds, failed_tuple)
            else:
                failed_tuple = interned[1]
            failed_by_word[word_index][row % num_rounds] = failed_tuple

    # ------------------------------------------------------------------
    # Batched decode consequences: the distinct (code, mode, pattern)
    # triples of the whole batch resolve through the shared memo; misses
    # group per (code, mode) into one multi-RHS syndrome product.
    # ------------------------------------------------------------------
    resolved: dict[tuple[int, str, tuple[int, ...]], frozenset[int]] = {}
    probe_groups: dict[tuple[int, str], tuple] = {}
    handles: list = [None] * count
    modes: list[str] = [""] * count
    for index, profiler in enumerate(profilers):
        first_rounds = first_rounds_per_word[index]
        handle = handles[index] = code_caches(profiler.code)
        # ``batched`` profilers declare a round-independent read mode.
        mode = modes[index] = profiler.read_mode_for(0)
        if not first_rounds:
            continue
        cache_key = (id(handle), mode)
        group = probe_groups.get(cache_key)
        if group is None:
            group = probe_groups[cache_key] = (handle, profiler.code, {})
        patterns = group[2]
        for failed_tuple in first_rounds:
            patterns[failed_tuple] = None
    for (handle_id, mode), (handle, code, pattern_set) in probe_groups.items():
        patterns = list(pattern_set)
        cached = handle.peek_decode_consequences_many(mode, patterns)
        misses: list[tuple[int, ...]] = []
        for failed_tuple, mismatches in zip(patterns, cached):
            if mismatches is None:
                misses.append(failed_tuple)
            else:
                resolved[(handle_id, mode, failed_tuple)] = mismatches
        if not misses:
            continue
        if mode == ReadMode.BYPASS:
            k = code.k
            consequences = [frozenset(p for p in f if p < k) for f in misses]
        else:
            consequences = post_correction_data_errors_batch(code, misses)
        for failed_tuple, mismatches in zip(misses, consequences):
            handle.insert_decode_consequences(mode, failed_tuple, mismatches)
            resolved[(handle_id, mode, failed_tuple)] = mismatches

    # ------------------------------------------------------------------
    # Compressed observation replay + segment-filled trace assembly.
    # ------------------------------------------------------------------
    results: list[WordRunResult] = []
    for index, profiler in enumerate(profilers):
        handle_id = id(handles[index])
        mode = modes[index]
        events = [
            (round_index, resolved[(handle_id, mode, failed_tuple)])
            for failed_tuple, (round_index, _) in first_rounds_per_word[index].items()
        ]
        changes = profiler.observe_many(events)
        identified_trace: list[frozenset[int]] = []
        observed_trace: list[frozenset[int]] = []
        current_identified: frozenset[int] = frozenset()
        current_observed: frozenset[int] = frozenset()
        for round_index, identified, observed in changes:
            gap = round_index - len(identified_trace)
            if gap:
                identified_trace.extend([current_identified] * gap)
                observed_trace.extend([current_observed] * gap)
            current_identified = identified
            current_observed = observed
            identified_trace.append(identified)
            observed_trace.append(observed)
        gap = num_rounds - len(identified_trace)
        if gap:
            identified_trace.extend([current_identified] * gap)
            observed_trace.extend([current_observed] * gap)
        results.append(
            WordRunResult(
                identified_per_round=identified_trace,
                observed_per_round=observed_trace,
                failures_per_round=failed_by_word[index],
            )
        )
    return results
