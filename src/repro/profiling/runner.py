"""Per-word profiling simulation (the paper's Monte-Carlo inner loop).

For one ECC word — a code, an at-risk profile, and an error seed — this
module simulates ``R`` rounds of a profiler and records the cumulative
identified set after every round.

Fairness (paper §7.1.2: "each profiler is evaluated with the exact same set
of ECC words, pre-correction error patterns, and data patterns"): the
Bernoulli randomness is a pre-drawn uniform matrix ``U[round, at_risk_bit]``
derived from the word seed alone, so two profilers testing the same word
see identical draws; an at-risk bit fails in a round iff it is charged by
that profiler's pattern *and* its draw clears the per-bit probability.
Pattern-independent draws make the comparison deterministic and unbiased.

Decode semantics use the integer-syndrome shortcut: a round with failed
positions ``T`` has syndrome ``xor of H-columns over T``; the correction
lookup then yields the post-correction error set in O(|T|) — no dense
matrix decode in the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.memory.cells import CellOrientation
from repro.memory.error_model import WordErrorProfile
from repro.profiling.base import Profiler, ReadMode
from repro.utils.rng import derive_rng

__all__ = ["WordRunResult", "simulate_word", "post_correction_data_errors"]


def post_correction_data_errors(code: SystematicCode, failed: tuple[int, ...]) -> frozenset[int]:
    """Exact post-correction data-error positions for a failure pattern."""
    if not failed:
        return frozenset()
    syndrome = 0
    for position in failed:
        syndrome ^= code.column_int(position)
    correction = code.correction_for_syndrome(syndrome)
    post = set(failed)
    if correction:
        post ^= set(correction)
    return frozenset(p for p in post if p < code.k)


@dataclass
class WordRunResult:
    """Per-round identification trace of one (profiler, word) simulation.

    Attributes:
        identified_per_round: cumulative identified set (observation and
            prediction channels merged) after each round — what the repair
            mechanism would know.
        observed_per_round: cumulative observation-channel set after each
            round (used for the paper's direct-coverage metric, which
            footnote 5 defines identically for HARP-U and HARP-A).
        failures_per_round: the pre-correction failure pattern of each
            round (simulation ground truth, for analysis).
    """

    identified_per_round: list[frozenset[int]]
    observed_per_round: list[frozenset[int]]
    failures_per_round: list[tuple[int, ...]]

    @property
    def num_rounds(self) -> int:
        return len(self.identified_per_round)

    def final_identified(self) -> frozenset[int]:
        return self.identified_per_round[-1] if self.identified_per_round else frozenset()


def _failure_draws(
    profile: WordErrorProfile, num_rounds: int, word_seed: int
) -> np.ndarray:
    """Pre-drawn uniform variates, shape (num_rounds, at-risk count)."""
    rng = derive_rng(word_seed, "failure-draws")
    return rng.random((num_rounds, profile.count))


def simulate_word(
    profiler: Profiler,
    profile: WordErrorProfile,
    num_rounds: int,
    word_seed: int,
    orientation: CellOrientation | None = None,
) -> WordRunResult:
    """Run a profiler against one ECC word for ``num_rounds`` rounds.

    Non-adaptive profilers (pattern schedule independent of observations)
    take a vectorized fast path: all patterns are encoded in one batch and
    all failure draws resolved in one array operation.  Adaptive profilers
    (BEEP and hybrids) interleave pattern crafting with observations and
    run sequentially.  Both paths produce bit-identical traces for
    non-adaptive profilers because the draws are pattern-independent.

    Args:
        orientation: cell orientation; ``None`` (the paper's model) means
            all true cells, where a stored 1 is the charged/vulnerable
            state.  With anti cells a stored 0 is vulnerable instead.
    """
    code = profiler.code
    if profile.positions and max(profile.positions) >= code.n:
        raise IndexError("profile position out of codeword range")
    draws = _failure_draws(profile, num_rounds, word_seed)
    probabilities = np.asarray(profile.probabilities, dtype=float)
    positions = np.asarray(profile.positions, dtype=np.intp)

    def charge_of(codeword_bits: np.ndarray) -> np.ndarray:
        """Charged mask restricted to the at-risk positions."""
        if orientation is None:
            return codeword_bits[..., positions].astype(bool)
        return orientation.charged_mask(codeword_bits)[..., positions].astype(bool)

    identified_trace: list[frozenset[int]] = []
    observed_trace: list[frozenset[int]] = []
    failure_trace: list[tuple[int, ...]] = []

    if profiler.adaptive:
        written_rounds = None
    else:
        written_rounds = np.stack(
            [profiler.pattern_for_round(r) for r in range(num_rounds)]
        )
        if profile.count:
            codewords = code.encode(written_rounds)
            failed_matrix = charge_of(codewords) & (draws < probabilities)
        else:
            failed_matrix = np.zeros((num_rounds, 0), dtype=bool)

    for round_index in range(num_rounds):
        if written_rounds is None:
            written = profiler.pattern_for_round(round_index)
            if profile.count:
                codeword = code.encode(written)
                failed_mask = charge_of(codeword) & (draws[round_index] < probabilities)
            else:
                failed_mask = np.zeros(0, dtype=bool)
        else:
            written = written_rounds[round_index]
            failed_mask = failed_matrix[round_index]
        failed = tuple(int(p) for p in positions[failed_mask]) if failed_mask.any() else ()
        failure_trace.append(failed)

        if profiler.read_mode_for(round_index) == ReadMode.BYPASS:
            # Raw data bits: mismatches are exactly the failed data positions.
            mismatches = frozenset(p for p in failed if p < code.k)
        else:
            mismatches = post_correction_data_errors(code, failed)
        profiler.observe(round_index, written, mismatches)
        identified_trace.append(profiler.identified)
        observed_trace.append(profiler.identified_observed)

    return WordRunResult(
        identified_per_round=identified_trace,
        observed_per_round=observed_trace,
        failures_per_round=failure_trace,
    )
