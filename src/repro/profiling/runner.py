"""Per-word profiling simulation (the paper's Monte-Carlo inner loop).

For one ECC word — a code, an at-risk profile, and an error seed — this
module simulates ``R`` rounds of a profiler and records the cumulative
identified set after every round.

Fairness (paper §7.1.2: "each profiler is evaluated with the exact same set
of ECC words, pre-correction error patterns, and data patterns"): the
Bernoulli randomness is a pre-drawn uniform matrix ``U[round, at_risk_bit]``
derived from the word seed alone, so two profilers testing the same word
see identical draws; an at-risk bit fails in a round iff it is charged by
that profiler's pattern *and* its draw clears the per-bit probability.
Pattern-independent draws make the comparison deterministic and unbiased.

Decode semantics use the integer-syndrome shortcut: a round with failed
positions ``T`` has syndrome ``xor of H-columns over T``; the correction
lookup then yields the post-correction error set in O(|T|) — no dense
matrix decode in the hot loop.

The sweep engine simulates the same word once per (probability, profiler)
cell; :class:`WordArtifacts` lets it hand in the inputs those runs share
(standard pattern schedule, its encoding, failure draws) so they are
derived once per word instead of once per run — adaptive profilers also
serve their bootstrap/fallback rounds from the precomputed schedule via
``Profiler.attach_standard_schedule``.  Within a run, repeated failure
patterns memoize their decode consequences; crafted patterns memoize
their charge masks as integer bitmasks in a process-wide per-word scope
(shared across the cells that re-simulate the word), so the adaptive
per-round failure check is a single int AND; and the cumulative trace
sets are rebuilt only on rounds where the profiler's state actually
moved (tracked through ``Profiler.observation_count``).  All of it is
bit-identical to the straight-line loop — ``tests/test_sweep_engine.py``
and ``tests/test_adaptive_caches.py`` pin that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.memory.cells import CellOrientation
from repro.memory.error_model import WordErrorProfile, check_profile_positions
from repro.profiling.base import Profiler, ReadMode
from repro.utils.rng import derive_rng

__all__ = [
    "WordArtifacts",
    "WordRunResult",
    "simulate_word",
    "post_correction_data_errors",
    "clear_charge_mask_cache",
]


#: Cross-run charge-mask cache for adaptive (crafted) patterns: the mask
#: is pure in (code, at-risk positions, orientation, written dataword),
#: and the sweep engine re-simulates each word once per (probability,
#: profiler) cell with largely overlapping crafted patterns.  Two-level:
#: scope (code, positions, orientation) -> {pattern bytes -> int mask},
#: so the per-(word, run) inner dict is fetched once per simulation and
#: the hot path never re-hashes the code.  Masks are integer bitmasks
#: (bit i = at-risk position i), making the per-round failure check a
#: single int AND; process-local like every other engine cache.
_charge_mask_cache: dict = {}
_CHARGE_MASK_MAX_SCOPES = 8192


def _pack_bits(mask: np.ndarray) -> int:
    """Pack a boolean vector into an integer bitmask (bit i = element i)."""
    return int.from_bytes(
        np.packbits(mask, bitorder="little").tobytes(), "little"
    )


def clear_charge_mask_cache() -> None:
    """Empty the cross-run charge-mask cache (tests and benchmarks)."""
    _charge_mask_cache.clear()


def post_correction_data_errors(code: SystematicCode, failed: tuple[int, ...]) -> frozenset[int]:
    """Exact post-correction data-error positions for a failure pattern."""
    if not failed:
        return frozenset()
    syndrome = 0
    for position in failed:
        syndrome ^= code.column_int(position)
    correction = code.correction_for_syndrome(syndrome)
    post = set(failed)
    if correction:
        post ^= set(correction)
    return frozenset(p for p in post if p < code.k)


@dataclass
class WordRunResult:
    """Per-round identification trace of one (profiler, word) simulation.

    Attributes:
        identified_per_round: cumulative identified set (observation and
            prediction channels merged) after each round — what the repair
            mechanism would know.
        observed_per_round: cumulative observation-channel set after each
            round (used for the paper's direct-coverage metric, which
            footnote 5 defines identically for HARP-U and HARP-A).
        failures_per_round: the pre-correction failure pattern of each
            round (simulation ground truth, for analysis).
    """

    identified_per_round: list[frozenset[int]]
    observed_per_round: list[frozenset[int]]
    failures_per_round: list[tuple[int, ...]]

    @property
    def num_rounds(self) -> int:
        return len(self.identified_per_round)

    def final_identified(self) -> frozenset[int]:
        return self.identified_per_round[-1] if self.identified_per_round else frozenset()


def _failure_draws(
    profile: WordErrorProfile, num_rounds: int, word_seed: int
) -> np.ndarray:
    """Pre-drawn uniform variates, shape (num_rounds, at-risk count)."""
    rng = derive_rng(word_seed, "failure-draws")
    return rng.random((num_rounds, profile.count))


@dataclass(frozen=True)
class WordArtifacts:
    """Precomputed simulation inputs shared across repeated word runs.

    The sweep engine simulates the same ECC word many times — once per
    (probability, profiler) cell — and everything here is identical across
    those runs: the standard pattern schedule and its encoding depend only
    on (pattern, word seed, code), and the failure draws depend only on
    the word seed.  Passing them in avoids re-deriving per-round RNGs and
    re-encoding the schedule in every cell.

    Every field is optional; whatever is present must match the run's
    (profiler pattern, code, profile, ``num_rounds``, ``word_seed``)
    exactly — :func:`simulate_word` validates shapes but trusts contents.

    Attributes:
        schedule: ``(num_rounds, k)`` datawords of the *standard* pattern
            schedule.  Only used for profilers that follow the base
            schedule verbatim (adaptive profilers and subclasses that
            override ``pattern_for_round`` ignore it).
        codewords: ``(num_rounds, n)`` encoding of ``schedule``.
        draws: ``(num_rounds, profile.count)`` uniform failure variates,
            as produced by the ``word_seed``-derived stream.
    """

    schedule: np.ndarray | None = None
    codewords: np.ndarray | None = None
    draws: np.ndarray | None = None


def simulate_word(
    profiler: Profiler,
    profile: WordErrorProfile,
    num_rounds: int,
    word_seed: int,
    orientation: CellOrientation | None = None,
    artifacts: WordArtifacts | None = None,
) -> WordRunResult:
    """Run a profiler against one ECC word for ``num_rounds`` rounds.

    Non-adaptive profilers (pattern schedule independent of observations)
    take a vectorized fast path: all patterns are encoded in one batch and
    all failure draws resolved in one array operation.  Adaptive profilers
    (BEEP and hybrids) interleave pattern crafting with observations and
    run sequentially.  Both paths produce bit-identical traces for
    non-adaptive profilers because the draws are pattern-independent.

    Args:
        orientation: cell orientation; ``None`` (the paper's model) means
            all true cells, where a stored 1 is the charged/vulnerable
            state.  With anti cells a stored 0 is vulnerable instead.
        artifacts: optional precomputed inputs (see :class:`WordArtifacts`)
            supplied by the sweep engine; the result is bit-identical with
            or without them.
    """
    code = profiler.code
    check_profile_positions(profile, code.n)
    if artifacts is not None and artifacts.draws is not None:
        if artifacts.draws.shape != (num_rounds, profile.count):
            raise ValueError(
                f"precomputed draws shape {artifacts.draws.shape} != "
                f"({num_rounds}, {profile.count})"
            )
        draws = artifacts.draws
    else:
        draws = _failure_draws(profile, num_rounds, word_seed)
    probabilities = np.asarray(profile.probabilities, dtype=float)
    positions = np.asarray(profile.positions, dtype=np.intp)

    def charge_of(codeword_bits: np.ndarray) -> np.ndarray:
        """Charged mask restricted to the at-risk positions."""
        if orientation is None:
            return codeword_bits[..., positions].astype(bool)
        return orientation.charged_mask(codeword_bits)[..., positions].astype(bool)

    identified_trace: list[frozenset[int]] = []
    observed_trace: list[frozenset[int]] = []
    failure_trace: list[tuple[int, ...]] = []

    if profiler.adaptive:
        written_rounds = None
        if (
            artifacts is not None
            and artifacts.schedule is not None
            and artifacts.schedule.shape == (num_rounds, code.k)
        ):
            # Adaptive profilers fall back to the base schedule on
            # bootstrap rounds; serving those rows from the precomputed
            # artifact skips the per-round RNG re-derivation.
            profiler.attach_standard_schedule(artifacts.schedule)
    else:
        # The precomputed schedule is only valid for profilers that follow
        # the base schedule verbatim; a subclass overriding
        # pattern_for_round falls back to materializing its own rounds.
        standard_schedule = type(profiler).pattern_for_round is Profiler.pattern_for_round
        if (
            artifacts is not None
            and artifacts.schedule is not None
            and standard_schedule
            and artifacts.schedule.shape == (num_rounds, code.k)
        ):
            written_rounds = artifacts.schedule
            codewords = artifacts.codewords
            if codewords is None or codewords.shape != (num_rounds, code.n):
                codewords = code.encode(written_rounds) if profile.count else None
        else:
            written_rounds = np.stack(
                [profiler.pattern_for_round(r) for r in range(num_rounds)]
            )
            codewords = code.encode(written_rounds) if profile.count else None
        if profile.count:
            failed_matrix = charge_of(codewords) & (draws < probabilities)
            # One nonzero pass replaces per-round mask reductions; nonzero
            # returns row-major order, so columns stay ascending per round
            # (matching the sorted profile positions).
            position_values = profile.positions
            failed_by_round: list[tuple[int, ...]] = [()] * num_rounds
            grouped: dict[int, list[int]] = {}
            for row, col in zip(*(index.tolist() for index in np.nonzero(failed_matrix))):
                grouped.setdefault(row, []).append(position_values[col])
            for row, failed_positions in grouped.items():
                failed_by_round[row] = tuple(failed_positions)
        else:
            failed_by_round = [()] * num_rounds

    # Failure patterns repeat across rounds (always at p=1.0, often below),
    # and decode consequences are pure in the pattern — memoize per run.
    mismatch_cache: dict[tuple[str, tuple[int, ...]], frozenset[int]] = {}
    previous_observed_count = -1
    previous_predicted: frozenset[int] | None = None
    current_identified: frozenset[int] = frozenset()
    current_observed: frozenset[int] = frozenset()

    if written_rounds is None and profile.count:
        # The adaptive loop runs round by round; packing the Bernoulli
        # draws and charge masks into per-round integer bitmasks turns
        # the failure check into one int AND instead of numpy ops.
        below_rows = np.packbits(draws < probabilities, axis=1, bitorder="little")
        below_ints = [int.from_bytes(row.tobytes(), "little") for row in below_rows]
        position_values = profile.positions
        # Adaptive profilers revisit the same crafted pattern many times;
        # the encode + charge-mask pipeline is pure in the written
        # dataword, and the process-wide scope dict also collapses
        # repeats across the cells that re-simulate this word.
        charge_mask_scope = (
            code,
            profile.positions,
            None if orientation is None else orientation.true_cell_mask.tobytes(),
        )
        charged_cache = _charge_mask_cache.get(charge_mask_scope)
        if charged_cache is None:
            if len(_charge_mask_cache) >= _CHARGE_MASK_MAX_SCOPES:
                _charge_mask_cache.clear()
            charged_cache = _charge_mask_cache[charge_mask_scope] = {}

    for round_index in range(num_rounds):
        if written_rounds is None:
            written = profiler.pattern_for_round(round_index)
            if profile.count:
                pattern_key = written.tobytes()
                charged = charged_cache.get(pattern_key)
                if charged is None:
                    charged = _pack_bits(charge_of(code.encode(written)))
                    charged_cache[pattern_key] = charged
                failed_bits = charged & below_ints[round_index]
                if failed_bits:
                    failed_list = []
                    while failed_bits:
                        low_bit = failed_bits & -failed_bits
                        failed_list.append(position_values[low_bit.bit_length() - 1])
                        failed_bits ^= low_bit
                    failed = tuple(failed_list)
                else:
                    failed = ()
            else:
                failed = ()
        else:
            written = written_rounds[round_index]
            failed = failed_by_round[round_index]
        failure_trace.append(failed)

        mode = profiler.read_mode_for(round_index)
        key = (mode, failed)
        mismatches = mismatch_cache.get(key)
        if mismatches is None:
            if mode == ReadMode.BYPASS:
                # Raw data bits: mismatches are exactly the failed data
                # positions.
                mismatches = frozenset(p for p in failed if p < code.k)
            else:
                mismatches = post_correction_data_errors(code, failed)
            mismatch_cache[key] = mismatches
        profiler.observe(round_index, written, mismatches)
        # Rebuild the cumulative frozensets only when the profiler's state
        # moved: the observation channel is add-only (``observation_count``
        # is its change fingerprint) and the prediction channel is compared
        # by value.
        observed_count = profiler.observation_count
        predicted = profiler.identified_predicted
        if observed_count != previous_observed_count or predicted != previous_predicted:
            current_identified = profiler.identified
            current_observed = profiler.identified_observed
            previous_observed_count = observed_count
            previous_predicted = predicted
        identified_trace.append(current_identified)
        observed_trace.append(current_observed)

    return WordRunResult(
        identified_per_round=identified_trace,
        observed_per_round=observed_trace,
        failures_per_round=failure_trace,
    )
