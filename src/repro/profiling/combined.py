"""HARP-A + BEEP hybrid (paper §7.3.1).

Runs HARP-A's active phase (bypass reads, standard patterns, miscorrection
precomputation) for a fixed number of rounds, then hands the identified
at-risk set to a BEEP instance as its anchor pool and continues with BEEP's
crafted patterns through the normal read path.  The combination pairs
HARP's fast direct-error coverage with BEEP's ability to exploit *known*
at-risk bits to expose the remaining indirect errors — including those
caused by at-risk parity bits, which HARP-A alone cannot predict.

Both phases run on the code-level caches of :mod:`repro.analysis.memo`:
the active phase through HARP-A's memoized indirect prediction, the
crafted phase through the embedded :class:`BeepProfiler`'s shared
crafted-assignment and aliasing-pair caches — so the thousands of hybrid
words per sweep cell that share a code re-derive none of that state.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.profiling.base import Profiler, ReadMode
from repro.profiling.beep import BeepProfiler
from repro.profiling.harp import HarpAProfiler

__all__ = ["HarpABeepProfiler"]


class HarpABeepProfiler(Profiler):
    """HARP-A active phase followed by BEEP crafted-pattern exploration."""

    name = "HARP-A+BEEP"
    adaptive = True

    def __init__(
        self,
        code: SystematicCode,
        seed: int,
        pattern: str = "random",
        switch_round: int = 16,
    ) -> None:
        super().__init__(code, seed, pattern)
        if switch_round < 1:
            raise ValueError("switch_round must be >= 1")
        self.switch_round = switch_round
        self._harp = HarpAProfiler(code, seed, pattern)
        self._beep = BeepProfiler(code, seed, pattern)
        self._seeded_beep = False

    def attach_standard_schedule(self, schedule: np.ndarray) -> None:
        # Both phases draw their base-schedule rounds from the same
        # (pattern, seed) stream, so the precomputed rows serve each.
        super().attach_standard_schedule(schedule)
        self._harp.attach_standard_schedule(schedule)
        self._beep.attach_standard_schedule(schedule)

    def _in_active_phase(self, round_index: int) -> bool:
        return round_index < self.switch_round

    def read_mode_for(self, round_index: int) -> str:
        return ReadMode.BYPASS if self._in_active_phase(round_index) else ReadMode.NORMAL

    def pattern_for_round(self, round_index: int) -> np.ndarray:
        if self._in_active_phase(round_index):
            return self._harp.pattern_for_round(round_index)
        if not self._seeded_beep:
            # Seed BEEP's anchor pool with everything HARP-A identified.
            self._seeded_beep = True
            self._beep.observe(round_index, np.zeros(self.code.k, dtype=np.uint8), self._harp.identified)
        return self._beep.pattern_for_round(round_index)

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        if self._in_active_phase(round_index):
            self._harp.observe(round_index, written, mismatches)
        else:
            self._beep.observe(round_index, written, mismatches)

    @property
    def observation_count(self) -> int:
        # Both sub-pools are add-only, so the sum grows whenever either
        # does — a valid change fingerprint even when the union overlaps.
        return self._harp.observation_count + self._beep.observation_count

    @property
    def identified_observed(self) -> frozenset[int]:
        return self._harp.identified_observed | self._beep.identified_observed

    @property
    def identified_predicted(self) -> frozenset[int]:
        return self._harp.identified_predicted
