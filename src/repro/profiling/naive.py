"""Naive profiling (paper §7.1.1 baseline 1).

Represents the long line of prior profilers that operate without any
knowledge of on-die ECC: write a worst-case data pattern, read it back
through the normal (corrected) path, and mark every mismatching bit as
at risk.  On a chip with on-die ECC the mismatches are post-correction
errors, so the Naive profiler suffers all three challenges of the paper's
§4 — it can only learn from uncorrectable pre-correction error
combinations.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.base import Profiler

__all__ = ["NaiveProfiler"]


class NaiveProfiler(Profiler):
    """Round-based pattern testing through the corrected read path."""

    name = "Naive"
    adaptive = False
    #: Pure accumulate semantics: the base ``observe_many`` replays
    #: ``observe`` exactly, so whole cells batch through the kernel.
    batched = True

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        self._observed.update(mismatches)
