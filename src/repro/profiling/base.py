"""Profiler abstractions (paper §2.3, §6).

A profiler runs rounds of write-then-read testing against one ECC word.
Each round it chooses a dataword to program; the harness writes it through
on-die ECC, samples pre-correction errors, and hands the profiler back the
positions where the data it reads differs from what it wrote.  Two read
paths exist (paper §5.2):

* the **normal** path returns post-correction data — mismatches are
  post-correction errors (direct or indirect);
* the **bypass** path returns raw data bits — mismatches are exactly the
  pre-correction errors within the data portion.

Profilers accumulate an *identified* set of at-risk data positions, split
into an observation channel and (for HARP-A) a prediction channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.memory.patterns import DataPattern, make_pattern

__all__ = ["Profiler", "ReadMode"]


class ReadMode:
    """Read-path selectors (string enum kept trivial for speed)."""

    NORMAL = "normal"
    BYPASS = "bypass"


class Profiler(ABC):
    """Base class for round-based error profilers.

    Args:
        code: the on-die ECC code of the chip under test.  Knowledge of the
            *geometry* (k, n) is required by every profiler; whether the
            parity-check matrix contents may be used distinguishes
            ECC-aware profilers (BEEP, HARP-A) from unaware ones.
        seed: seed for the profiler's own pattern randomness.
        pattern: name of the standard data pattern schedule ("random",
            "charged", "checkered").
    """

    #: Human-readable profiler name used in reports.
    name: str = "abstract"
    #: Whether pattern choice depends on past observations.  Non-adaptive
    #: profilers can be simulated on the vectorized fast path.
    adaptive: bool = False
    #: Whether :meth:`observe_many` faithfully replays this profiler's
    #: :meth:`observe` semantics from distinct mismatch events alone.
    #: Declaring ``batched = True`` vouches for three properties the
    #: cell-batched kernel relies on: (1) the profiler's state after
    #: round ``r`` depends only on the *union* of the mismatch sets seen
    #: up to ``r`` (so repeated sets collapse to their first occurrence),
    #: (2) :meth:`read_mode_for` is round-independent, and (3) ``observe``
    #: ignores the ``written`` dataword.  Subclasses that break any of
    #: these must leave it ``False`` (the kernel then refuses them) or
    #: override :meth:`observe_many` accordingly, as the oracle does.
    batched: bool = False

    def __init__(self, code: SystematicCode, seed: int, pattern: str = "random") -> None:
        self.code = code
        self.seed = int(seed)
        self._pattern: DataPattern = make_pattern(pattern, seed)
        self._observed: set[int] = set()
        self._standard_schedule: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Per-round interface driven by the harness
    # ------------------------------------------------------------------

    def attach_standard_schedule(self, schedule: np.ndarray) -> None:
        """Serve base-schedule rounds from a precomputed schedule.

        ``schedule`` must be row-for-row identical to this profiler's
        ``self._pattern`` materialization (the sweep engine derives it
        from the same (pattern, seed, k) inputs), so attaching never
        changes behaviour — it only spares adaptive profilers the
        per-round RNG re-derivation on bootstrap and fallback rounds.
        """
        self._standard_schedule = schedule

    def read_mode_for(self, round_index: int) -> str:
        """Which read path this profiler uses in the given round."""
        return ReadMode.NORMAL

    def pattern_for_round(self, round_index: int) -> np.ndarray:
        """The dataword to program this round."""
        schedule = self._standard_schedule
        if schedule is not None and round_index < len(schedule):
            return schedule[round_index]
        return self._pattern.data_for_round(round_index, self.code.k)

    @abstractmethod
    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        """Record the mismatching data positions of this round's read-back."""

    def observe_many(
        self, events: list[tuple[int, frozenset[int]]]
    ) -> list[tuple[int, frozenset[int], frozenset[int]]]:
        """Consume a whole run's distinct mismatch events in one call.

        ``events`` holds one ``(first_round, mismatches)`` pair per
        distinct mismatch set of the run, ascending by round — the
        batched kernel's compressed replay of calling :meth:`observe`
        every round.  Returns the change points of the identification
        state as ``(round, identified, identified_observed)`` triples:
        the cumulative sets are materialized to frozensets only at those
        boundaries, never per round.  The default implementation covers
        plain accumulate semantics (``observe`` unions mismatches into
        the observed set); subclasses with extra per-observation state
        override it (see :class:`~repro.profiling.harp.HarpAProfiler`)
        and vouch for the replay with the :attr:`batched` flag.
        """
        changes: list[tuple[int, frozenset[int], frozenset[int]]] = []
        observed = self._observed
        for round_index, mismatches in events:
            before = len(observed)
            observed.update(mismatches)
            if len(observed) != before:
                # One snapshot per change point: for accumulate semantics
                # ``identified_observed`` is exactly frozenset(_observed)
                # and ``identified`` only adds the prediction channel.
                snapshot = frozenset(observed)
                predicted = self.identified_predicted
                identified = snapshot | predicted if predicted else snapshot
                changes.append((round_index, identified, snapshot))
        return changes

    # ------------------------------------------------------------------
    # Identification state
    # ------------------------------------------------------------------

    @property
    def observation_count(self) -> int:
        """Size of the observation-channel state (monotone non-decreasing).

        The simulation harness uses this, together with
        ``identified_predicted``, as a cheap change detector: it must
        increase whenever ``identified_observed`` changes.  Subclasses
        that store observations outside ``self._observed`` (e.g. in
        sub-profilers) must override it accordingly.
        """
        return len(self._observed)

    @property
    def identified_observed(self) -> frozenset[int]:
        """Data positions identified from read-back observations."""
        return frozenset(self._observed)

    @property
    def identified_predicted(self) -> frozenset[int]:
        """Data positions identified by precomputation (HARP-A only)."""
        return frozenset()

    @property
    def identified(self) -> frozenset[int]:
        """Everything this profiler would hand to the repair mechanism."""
        return self.identified_observed | self.identified_predicted
