"""HARP active-phase profilers (paper §6).

HARP-U reads through the on-die ECC *bypass* path, so every mismatch it
observes is a raw pre-correction error in the data bits — profiling becomes
equivalent to profiling a chip without on-die ECC, which defeats all three
challenges of the paper's §4 for direct errors.

HARP-A additionally knows the on-die ECC parity-check matrix and, after
every new direct-error identification, precomputes which data positions
combinations of the identified bits can miscorrect onto (paper §6.3.1).
The prediction cannot cover miscorrections caused by at-risk *parity* bits,
which the bypass path does not expose — the reactive phase (secondary ECC)
picks those up at runtime.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.memo import cached_predict_indirect
from repro.ecc.linear_code import SystematicCode
from repro.profiling.base import Profiler, ReadMode

__all__ = ["HarpUProfiler", "HarpAProfiler"]


class HarpUProfiler(Profiler):
    """HARP-Unaware: bypass reads, standard patterns, no H knowledge."""

    name = "HARP-U"
    adaptive = False

    def read_mode_for(self, round_index: int) -> str:
        return ReadMode.BYPASS

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        self._observed.update(mismatches)


class HarpAProfiler(HarpUProfiler):
    """HARP-Aware: HARP-U plus miscorrection precomputation from H."""

    name = "HARP-A"
    adaptive = False

    def __init__(self, code: SystematicCode, seed: int, pattern: str = "random") -> None:
        super().__init__(code, seed, pattern)
        self._predicted: frozenset[int] = frozenset()

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        before = len(self._observed)
        self._observed.update(mismatches)
        if len(self._observed) != before:
            # The direct-risk set grew: refresh the precomputed indirect set.
            # The memoized lookup collapses the repeats the sweep produces
            # (the same (code, observed set) recurs across probability
            # levels and words).
            self._predicted = cached_predict_indirect(self.code, self._observed)

    @property
    def identified_predicted(self) -> frozenset[int]:
        return self._predicted
