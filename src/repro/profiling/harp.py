"""HARP active-phase profilers (paper §6).

HARP-U reads through the on-die ECC *bypass* path, so every mismatch it
observes is a raw pre-correction error in the data bits — profiling becomes
equivalent to profiling a chip without on-die ECC, which defeats all three
challenges of the paper's §4 for direct errors.

HARP-A additionally knows the on-die ECC parity-check matrix and, after
every new direct-error identification, precomputes which data positions
combinations of the identified bits can miscorrect onto (paper §6.3.1).
The prediction cannot cover miscorrections caused by at-risk *parity* bits,
which the bypass path does not expose — the reactive phase (secondary ECC)
picks those up at runtime.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.memo import cached_predict_indirect
from repro.ecc.linear_code import SystematicCode
from repro.profiling.base import Profiler, ReadMode

__all__ = ["HarpUProfiler", "HarpAProfiler"]


class HarpUProfiler(Profiler):
    """HARP-Unaware: bypass reads, standard patterns, no H knowledge."""

    name = "HARP-U"
    adaptive = False
    #: Bypass reads accumulate raw mismatches — the base ``observe_many``
    #: replay is exact, and ``read_mode_for`` is round-independent.
    batched = True

    def read_mode_for(self, round_index: int) -> str:
        return ReadMode.BYPASS

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        self._observed.update(mismatches)


class HarpAProfiler(HarpUProfiler):
    """HARP-Aware: HARP-U plus miscorrection precomputation from H."""

    name = "HARP-A"
    adaptive = False

    def __init__(self, code: SystematicCode, seed: int, pattern: str = "random") -> None:
        super().__init__(code, seed, pattern)
        self._predicted: frozenset[int] = frozenset()

    def observe(
        self,
        round_index: int,
        written: np.ndarray,
        mismatches: frozenset[int],
    ) -> None:
        before = len(self._observed)
        self._observed.update(mismatches)
        if len(self._observed) != before:
            # The direct-risk set grew: refresh the precomputed indirect set.
            # The memoized lookup collapses the repeats the sweep produces
            # (the same (code, observed set) recurs across probability
            # levels and words).
            self._predicted = cached_predict_indirect(self.code, self._observed)

    def observe_many(
        self, events: list[tuple[int, frozenset[int]]]
    ) -> list[tuple[int, frozenset[int], frozenset[int]]]:
        """Batched replay: refresh the prediction at each growth event.

        The observed set after any round is the union of the distinct
        mismatch sets seen so far, and ``_predicted`` is a pure function
        of that union — so replaying only the distinct events visits
        exactly the same (observed, predicted) states, at the same
        rounds, as the per-round ``observe`` loop.
        """
        changes: list[tuple[int, frozenset[int], frozenset[int]]] = []
        observed = self._observed
        for round_index, mismatches in events:
            before = len(observed)
            observed.update(mismatches)
            if len(observed) != before:
                snapshot = frozenset(observed)
                self._predicted = cached_predict_indirect(self.code, observed)
                changes.append((round_index, snapshot | self._predicted, snapshot))
        return changes

    @property
    def identified_predicted(self) -> frozenset[int]:
        return self._predicted
