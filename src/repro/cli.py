"""Command-line interface: regenerate any paper exhibit from a terminal.

Usage::

    python -m repro fig6 --scale unit
    python -m repro fig10 --seed 7
    python -m repro all --scale unit
    python -m repro fig6 --scale full --jobs 4 --timings
    python -m repro fig6 --scale paper --backend socket://0.0.0.0:7071 \\
        --jobs 0 --resume fig6.shards.jsonl
    python -m repro worker --connect HOST:7071

Each exhibit subcommand prints the exhibit's text rendition (the same
output the benchmark harness saves under ``benchmarks/results/``).

Execution knobs (every choice is bit-identical to a serial run):

* ``--jobs N`` fans the Monte-Carlo work out over ``N`` worker processes
  (``0`` = one per CPU).  It applies to every sweep-based exhibit
  (fig6/7/8/9, ext-patterns, ext-codelength, headline) and to the
  sharded fig10 case study, and is ignored by the closed-form ones.
* ``--backend`` picks where shards execute: ``serial`` (in-process),
  ``process`` (local worker pool, the default for ``--jobs > 1``),
  ``socket`` (loopback socket server spawning ``--jobs`` local worker
  processes), or ``socket://HOST:PORT`` (socket server that also
  accepts remote workers started on other machines with
  ``python -m repro worker --connect HOST:PORT``; ``--jobs 0`` spawns
  no local workers and waits entirely for remote ones).
* ``--resume PATH`` streams each completed sweep cell to a JSONL shard
  store at ``PATH`` and, on restart, skips every cell already persisted
  there — an interrupted paper-scale sweep continues where it stopped.
  Applies to the sweep exhibits (fig6/7/8/9 and headline's sweep);
  other exhibits ignore it.
* ``--timings`` appends the engine's per-cell wall-clock table for the
  exhibits that expose a sweep result (fig6/7/8/9 and headline).

The ``worker`` subcommand turns the process into a socket-backend
worker: it connects to a running ``--backend socket://...`` server and
executes shard chunks.  Multi-sweep exhibits (ext-patterns, headline,
``all``) run one socket map per sweep, so after a server drains the
worker keeps retrying the address for ``--linger`` seconds (default 10)
and joins the next sweep before exiting.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable

from repro.experiments import (
    ext_code_length,
    ext_dec,
    ext_heterogeneous,
    ext_interleaving,
    ext_patterns,
    ext_rank,
    ext_scrubbing,
    fig2,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    headline,
    table2,
)
from repro.experiments.backends import run_worker
from repro.experiments.config import BENCH, FULL, PAPER, UNIT, CaseStudyConfig, SweepConfig
from repro.experiments.reporting import timing_table
from repro.experiments.runner import run_sweep

__all__ = ["main", "build_parser"]

SCALES: dict[str, SweepConfig] = {"unit": UNIT, "bench": BENCH, "full": FULL, "paper": PAPER}

#: Case-study scales matching the sweep presets.
CASE_SCALES: dict[str, CaseStudyConfig] = {
    "unit": CaseStudyConfig(
        num_codes=2, words_per_stratum=3, num_rounds=64, probabilities=(0.5, 0.75), max_at_risk=4
    ),
    "bench": CaseStudyConfig(num_codes=3, words_per_stratum=4, num_rounds=128, max_at_risk=5),
    "full": CaseStudyConfig(num_codes=6, words_per_stratum=10, num_rounds=128),
    "paper": CaseStudyConfig(num_codes=12, words_per_stratum=20, num_rounds=128),
}


def _sweep_config(args: argparse.Namespace) -> SweepConfig:
    return replace(SCALES[args.scale], seed=args.seed)


def _case_config(args: argparse.Namespace) -> CaseStudyConfig:
    return replace(CASE_SCALES[args.scale], seed=args.seed)


def _run_fig2(args: argparse.Namespace) -> str:
    return fig2.render(fig2.run())


def _run_table2(args: argparse.Namespace) -> str:
    return table2.render(table2.run(seed=args.seed))


def _run_fig4(args: argparse.Namespace) -> str:
    scale = {"unit": (3, 6), "bench": (6, 12), "full": (12, 25)}[args.scale]
    config = fig4.Fig4Config(num_codes=scale[0], words_per_code=scale[1], seed=args.seed)
    return fig4.render(fig4.run(config))


def _sweep_exhibit(module) -> Callable[[argparse.Namespace], str]:
    def runner(args: argparse.Namespace) -> str:
        sweep = run_sweep(
            _sweep_config(args), jobs=args.jobs, backend=args.backend, resume=args.resume
        )
        text = module.render(module.from_sweep(sweep))
        if args.timings:
            text += "\n\n" + timing_table(sweep)
        return text

    return runner


def _run_fig10(args: argparse.Namespace) -> str:
    return fig10.render(fig10.run(_case_config(args), jobs=args.jobs, backend=args.backend))


def _run_headline(args: argparse.Namespace) -> str:
    sweep = run_sweep(
        _sweep_config(args), jobs=args.jobs, backend=args.backend, resume=args.resume
    )
    case = fig10.run(_case_config(args), jobs=args.jobs, backend=args.backend)
    text = headline.render(
        active=headline.active_speedups(sweep),
        case_study=headline.case_study_speedups(case),
    )
    if args.timings:
        text += "\n\n" + timing_table(sweep)
    return text


def _run_ext_patterns(args: argparse.Namespace) -> str:
    return ext_patterns.render(ext_patterns.run(jobs=args.jobs, backend=args.backend))


def _run_ext_dec(args: argparse.Namespace) -> str:
    return ext_dec.render(ext_dec.run(seed=args.seed))


def _run_ext_code_length(args: argparse.Namespace) -> str:
    return ext_code_length.render(ext_code_length.run(jobs=args.jobs, backend=args.backend))


def _run_ext_heterogeneous(args: argparse.Namespace) -> str:
    return ext_heterogeneous.render(ext_heterogeneous.run(seed=args.seed))


def _run_ext_interleaving(args: argparse.Namespace) -> str:
    return ext_interleaving.render(ext_interleaving.run(seed=args.seed))


def _run_ext_scrubbing(args: argparse.Namespace) -> str:
    return ext_scrubbing.render(ext_scrubbing.run(seed=args.seed))


def _run_ext_rank(args: argparse.Namespace) -> str:
    return ext_rank.render(ext_rank.run(seed=args.seed))


COMMANDS: dict[str, tuple[str, Callable[[argparse.Namespace], str]]] = {
    "fig2": ("Fig 2: wasted storage vs repair granularity", _run_fig2),
    "table2": ("Table 2: at-risk bit amplification", _run_table2),
    "fig4": ("Fig 4: post-correction error probabilities", _run_fig4),
    "fig6": ("Fig 6: direct-error coverage", _sweep_exhibit(fig6)),
    "fig7": ("Fig 7: bootstrapping rounds", _sweep_exhibit(fig7)),
    "fig8": ("Fig 8: missed indirect-risk bits", _sweep_exhibit(fig8)),
    "fig9": ("Fig 9: secondary-ECC capability", _sweep_exhibit(fig9)),
    "fig10": ("Fig 10: data-retention case study", _run_fig10),
    "headline": ("Headline speedup numbers", _run_headline),
    "ext-patterns": ("Ablation: data patterns", _run_ext_patterns),
    "ext-dec": ("Extension: DEC BCH on-die ECC", _run_ext_dec),
    "ext-codelength": ("Extension: (136,128) geometry", _run_ext_code_length),
    "ext-heterogeneous": ("Extension: normal per-bit probabilities", _run_ext_heterogeneous),
    "ext-interleaving": ("Extension: secondary-ECC word layouts", _run_ext_interleaving),
    "ext-scrubbing": ("Extension: scrubbing identification latency", _run_ext_scrubbing),
    "ext-rank": ("Extension: rank-layout escape rates", _run_ext_rank),
}


def _jobs_type(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}") from None
    if jobs < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = one per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate exhibits of the HARP (MICRO 2021) reproduction.",
    )
    parser.add_argument(
        "command",
        choices=list(COMMANDS) + ["all", "worker"],
        help="exhibit to regenerate ('all' runs every one; 'worker' joins "
        "a socket-backend server instead of rendering an exhibit)",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default="unit",
        help="Monte-Carlo scale preset (default: unit)",
    )
    parser.add_argument("--seed", type=int, default=2021, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        help="sweep worker processes (0 = one per CPU; unset runs serial, "
        "except --backend process/socket default to one worker per CPU; "
        "results are bit-identical for every setting)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="append the sweep engine's per-cell wall-clock table "
        "(fig6/7/8/9 and headline; ignored elsewhere)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend: serial, process, socket, or "
        "socket://HOST:PORT (default: serial for --jobs 1, else a "
        "process pool; all backends are bit-identical)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="stream completed sweep cells to a JSONL shard store and "
        "skip cells already persisted there (fig6/7/8/9 and headline's "
        "sweep; ignored elsewhere)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="socket-backend server to join (worker subcommand only)",
    )
    parser.add_argument(
        "--linger",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="after a server drains, keep retrying the address this long "
        "so the worker joins an exhibit's next sweep (worker subcommand "
        "only; 0 exits after one session)",
    )
    parser.add_argument(
        # Set by SocketBackend on the workers it spawns itself: an idle
        # spawned worker (siblings drained the queue first) is normal
        # and must not alarm-exit like an operator-started one.
        "--spawned",
        action="store_true",
        help=argparse.SUPPRESS,
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "worker":
        if not args.connect:
            raise SystemExit("worker requires --connect HOST:PORT")
        executed, reached = run_worker(args.connect, linger=args.linger)
        if executed == 0 and not reached and not args.spawned:
            # Never reaching a server is almost always a typo'd address
            # — make that visible instead of exiting 0 silently across a
            # whole fleet.  A clean session with an already-empty queue
            # (e.g. joining a mostly-resumed sweep late) is healthy and
            # exits 0.
            print(
                f"worker never reached a server at {args.connect}",
                file=sys.stderr,
            )
            return 1
        return 0
    names = list(COMMANDS) if args.command == "all" else [args.command]
    for name in names:
        description, runner = COMMANDS[name]
        print(f"== {description} ==")
        print(runner(args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
