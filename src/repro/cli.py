"""Command-line interface: regenerate any paper exhibit from a terminal.

Usage::

    python -m repro fig6 --scale unit
    python -m repro fig10 --seed 7
    python -m repro all --scale unit
    python -m repro fig6 --scale full --jobs 4 --timings

Each subcommand prints the exhibit's text rendition (the same output the
benchmark harness saves under ``benchmarks/results/``).

``--jobs N`` fans the Monte-Carlo work out over ``N`` worker processes
(``0`` = one per CPU); results are bit-identical to a serial run.  It
applies to every sweep-based exhibit (fig6/7/8/9, ext-patterns,
ext-codelength, headline) and to the sharded fig10 case study, and is
ignored by the closed-form ones.  ``--timings`` appends the engine's
per-cell wall-clock table for the exhibits that expose a sweep result
(fig6/7/8/9 and headline); other exhibits ignore it.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Callable

from repro.experiments import (
    ext_code_length,
    ext_dec,
    ext_heterogeneous,
    ext_interleaving,
    ext_patterns,
    ext_rank,
    ext_scrubbing,
    fig2,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    headline,
    table2,
)
from repro.experiments.config import BENCH, FULL, UNIT, CaseStudyConfig, SweepConfig
from repro.experiments.reporting import timing_table
from repro.experiments.runner import run_sweep

__all__ = ["main", "build_parser"]

SCALES: dict[str, SweepConfig] = {"unit": UNIT, "bench": BENCH, "full": FULL}

#: Case-study scales matching the sweep presets.
CASE_SCALES: dict[str, CaseStudyConfig] = {
    "unit": CaseStudyConfig(
        num_codes=2, words_per_stratum=3, num_rounds=64, probabilities=(0.5, 0.75), max_at_risk=4
    ),
    "bench": CaseStudyConfig(num_codes=3, words_per_stratum=4, num_rounds=128, max_at_risk=5),
    "full": CaseStudyConfig(num_codes=6, words_per_stratum=10, num_rounds=128),
}


def _sweep_config(args: argparse.Namespace) -> SweepConfig:
    return replace(SCALES[args.scale], seed=args.seed)


def _case_config(args: argparse.Namespace) -> CaseStudyConfig:
    return replace(CASE_SCALES[args.scale], seed=args.seed)


def _run_fig2(args: argparse.Namespace) -> str:
    return fig2.render(fig2.run())


def _run_table2(args: argparse.Namespace) -> str:
    return table2.render(table2.run(seed=args.seed))


def _run_fig4(args: argparse.Namespace) -> str:
    scale = {"unit": (3, 6), "bench": (6, 12), "full": (12, 25)}[args.scale]
    config = fig4.Fig4Config(num_codes=scale[0], words_per_code=scale[1], seed=args.seed)
    return fig4.render(fig4.run(config))


def _sweep_exhibit(module) -> Callable[[argparse.Namespace], str]:
    def runner(args: argparse.Namespace) -> str:
        sweep = run_sweep(_sweep_config(args), jobs=args.jobs)
        text = module.render(module.from_sweep(sweep))
        if args.timings:
            text += "\n\n" + timing_table(sweep)
        return text

    return runner


def _run_fig10(args: argparse.Namespace) -> str:
    return fig10.render(fig10.run(_case_config(args), jobs=args.jobs))


def _run_headline(args: argparse.Namespace) -> str:
    sweep = run_sweep(_sweep_config(args), jobs=args.jobs)
    case = fig10.run(_case_config(args), jobs=args.jobs)
    text = headline.render(
        active=headline.active_speedups(sweep),
        case_study=headline.case_study_speedups(case),
    )
    if args.timings:
        text += "\n\n" + timing_table(sweep)
    return text


def _run_ext_patterns(args: argparse.Namespace) -> str:
    return ext_patterns.render(ext_patterns.run(jobs=args.jobs))


def _run_ext_dec(args: argparse.Namespace) -> str:
    return ext_dec.render(ext_dec.run(seed=args.seed))


def _run_ext_code_length(args: argparse.Namespace) -> str:
    return ext_code_length.render(ext_code_length.run(jobs=args.jobs))


def _run_ext_heterogeneous(args: argparse.Namespace) -> str:
    return ext_heterogeneous.render(ext_heterogeneous.run(seed=args.seed))


def _run_ext_interleaving(args: argparse.Namespace) -> str:
    return ext_interleaving.render(ext_interleaving.run(seed=args.seed))


def _run_ext_scrubbing(args: argparse.Namespace) -> str:
    return ext_scrubbing.render(ext_scrubbing.run(seed=args.seed))


def _run_ext_rank(args: argparse.Namespace) -> str:
    return ext_rank.render(ext_rank.run(seed=args.seed))


COMMANDS: dict[str, tuple[str, Callable[[argparse.Namespace], str]]] = {
    "fig2": ("Fig 2: wasted storage vs repair granularity", _run_fig2),
    "table2": ("Table 2: at-risk bit amplification", _run_table2),
    "fig4": ("Fig 4: post-correction error probabilities", _run_fig4),
    "fig6": ("Fig 6: direct-error coverage", _sweep_exhibit(fig6)),
    "fig7": ("Fig 7: bootstrapping rounds", _sweep_exhibit(fig7)),
    "fig8": ("Fig 8: missed indirect-risk bits", _sweep_exhibit(fig8)),
    "fig9": ("Fig 9: secondary-ECC capability", _sweep_exhibit(fig9)),
    "fig10": ("Fig 10: data-retention case study", _run_fig10),
    "headline": ("Headline speedup numbers", _run_headline),
    "ext-patterns": ("Ablation: data patterns", _run_ext_patterns),
    "ext-dec": ("Extension: DEC BCH on-die ECC", _run_ext_dec),
    "ext-codelength": ("Extension: (136,128) geometry", _run_ext_code_length),
    "ext-heterogeneous": ("Extension: normal per-bit probabilities", _run_ext_heterogeneous),
    "ext-interleaving": ("Extension: secondary-ECC word layouts", _run_ext_interleaving),
    "ext-scrubbing": ("Extension: scrubbing identification latency", _run_ext_scrubbing),
    "ext-rank": ("Extension: rank-layout escape rates", _run_ext_rank),
}


def _jobs_type(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}") from None
    if jobs < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = one per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate exhibits of the HARP (MICRO 2021) reproduction.",
    )
    parser.add_argument(
        "command",
        choices=list(COMMANDS) + ["all"],
        help="exhibit to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default="unit",
        help="Monte-Carlo scale preset (default: unit)",
    )
    parser.add_argument("--seed", type=int, default=2021, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=1,
        help="sweep worker processes (0 = one per CPU; results are "
        "bit-identical to --jobs 1)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="append the sweep engine's per-cell wall-clock table "
        "(fig6/7/8/9 and headline; ignored elsewhere)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(COMMANDS) if args.command == "all" else [args.command]
    for name in names:
        description, runner = COMMANDS[name]
        print(f"== {description} ==")
        print(runner(args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
