"""Command-line interface: regenerate any paper exhibit from a terminal.

Usage::

    python -m repro fig6 --scale unit
    python -m repro fig10 --seed 7
    python -m repro all --scale unit
    python -m repro fig6 --scale full --jobs 4 --timings
    python -m repro fig6 --scale paper --backend socket://0.0.0.0:7071 \\
        --jobs 0 --workers-expected 8 --resume fig6.shards.jsonl \\
        --status-port 7072 --continue-past-quarantine --progress
    python -m repro fig10 --scale paper --resume fig10.shards.jsonl
    python -m repro worker --connect HOST:7071
    python -m repro status HOST:7072
    python -m repro store fig6.shards.jsonl summary

Each exhibit subcommand prints the exhibit's text rendition (the same
output the benchmark harness saves under ``benchmarks/results/``).

Execution knobs (every choice is bit-identical to a serial run):

* ``--jobs N`` fans the Monte-Carlo work out over ``N`` worker processes
  (``0`` = one per CPU).  It applies to every sweep-based exhibit
  (fig6/7/8/9, ext-patterns, ext-codelength, headline) and to the
  sharded fig10 case study, and is ignored by the closed-form ones.
* ``--backend`` picks where shards execute: ``serial`` (in-process),
  ``process`` (local worker pool, the default for ``--jobs > 1``),
  ``socket`` (loopback socket server spawning ``--jobs`` local worker
  processes), or ``socket://HOST:PORT`` (socket server that also
  accepts remote workers started on other machines with
  ``python -m repro worker --connect HOST:PORT``; ``--jobs 0`` spawns
  no local workers and waits entirely for remote ones).
* ``--resume PATH`` streams each completed work unit to a JSONL shard
  store at ``PATH`` and, on restart, skips everything already persisted
  there — an interrupted paper-scale run continues where it stopped.
  Applies to the sweep exhibits (fig6/7/8/9), to fig10 (which persists
  its case-study shards), and to headline (sweep cells at ``PATH``, its
  case-study shards at ``PATH.fig10``); other exhibits ignore it.  An
  ``all`` run shares ``PATH`` across the sweep exhibits (they run one
  config) and routes fig10's shards to ``PATH.fig10`` too.
* ``--shared-cache`` precomputes the sweep's cache artifacts (word
  contexts, schedules, failure draws, aliasing tables) once in the
  parent and publishes them in a shared-memory block that local pool
  workers map zero-copy instead of re-deriving (fig6/7/8/9 and
  headline; socket workers keep their own warm-up).
* ``--timings`` appends the engine's per-cell wall-clock table for the
  exhibits that expose a sweep result (fig6/7/8/9 and headline).
* ``--progress`` prints a periodic grid-coverage/ETA line to stderr as
  cells complete (fig6/7/8/9, fig10, headline; every backend) — stdout
  stays exactly the exhibit rendition.

Socket-fleet hardening (``--backend socket[://HOST:PORT]`` only; see
``docs/distributed.md`` for the campaign runbook and
``docs/operations.md`` for the monitoring one):

* ``--auth-token SECRET`` requires every worker to present the same
  shared secret when joining (workers pass ``--auth-token`` too, or set
  ``REPRO_AUTH_TOKEN``; the server reads the variable as its default as
  well, and hands the secret to self-spawned workers through it).
* ``--workers-expected N`` holds all task dispatch until ``N`` workers
  have joined, so a paper-scale campaign cannot start against a
  half-booted fleet.
* ``--heartbeat-timeout SECONDS`` requeues a chunk whose worker has
  been silent this long (workers heartbeat at a quarter of it;
  ``0`` disables the deadline and waits forever).
* ``--status-port PORT`` serves a live one-line JSON status snapshot
  of the running map (fleet, heartbeat ages, queue depth, chunk
  progress, retries, quarantines); ``python -m repro status HOST:PORT``
  renders it.
* ``--continue-past-quarantine`` sets a chunk that exhausts its retry
  budget aside instead of aborting the campaign: the rest of the grid
  completes, an end-of-map auto-retry pass re-runs each quarantined
  chunk one shard at a time (healing the shards that were merely
  collateral of a poison chunk-mate), and the shard keys still poison
  after that are printed (and recorded in the ``--resume`` store) for
  a targeted re-run.  A run that quarantined anything exits with
  status 3 so scripts cannot mistake the partial exhibit for success.
* ``--wire {v1,pickle}`` selects the frame codec on the work port:
  ``v1`` (the default) speaks authenticated ``repro-wire-v1`` frames
  (no pickle on the wire, per-frame HMAC-SHA256); ``pickle`` is the
  legacy unauthenticated codec for old trusted fleets.  Server and
  workers must agree.
* ``--max-buffered-chunks N`` pauses dispatch while N completed chunks
  sit unconsumed (backpressure for a slow consumer, e.g. a stalled
  ``--resume`` disk).

The ``worker`` subcommand turns the process into a socket-backend
worker: it connects to a running ``--backend socket://...`` server and
executes shard chunks.  Multi-sweep exhibits (ext-patterns, headline,
``all``) run one socket map per sweep, so after a server drains the
worker keeps retrying the address for ``--linger`` seconds (default 10,
with jittered exponential backoff between attempts) and joins the next
sweep before exiting.  ``--max-chunks N`` makes the worker elastic: it
executes at most N chunks, then sends a clean ``leave`` goodbye and
exits (no retry-budget charge server-side); SIGTERM drains the same
way.

The ``store`` subcommand is the shard-store toolbox
(:mod:`repro.experiments.storetools`): ``python -m repro store PATH
{summary,compact,merge}`` summarizes, dedupes, or merges the JSONL
files ``--resume`` leaves behind, streaming record by record;
``summary`` also reports the store's grid coverage (cells done/total,
ETA, grid dimensions) and any quarantined shards awaiting a re-run.

The ``status`` subcommand (:mod:`repro.experiments.monitor`) reads one
live snapshot from a campaign server started with ``--status-port``:
``python -m repro status HOST:PORT`` (``--json`` for the raw snapshot).
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import Callable

from repro.experiments import (
    ext_code_length,
    ext_dec,
    ext_heterogeneous,
    ext_interleaving,
    ext_patterns,
    ext_rank,
    ext_scrubbing,
    fig2,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fleet,
    headline,
    table2,
)
from repro.experiments.backends import (
    AUTH_TOKEN_ENV,
    WorkerRejectedError,
    resolve_backend,
    run_worker,
)
from repro.experiments.config import (
    BENCH,
    FULL,
    PAPER,
    UNIT,
    CaseStudyConfig,
    FleetConfig,
    SweepConfig,
)
from repro.experiments.monitor import quarantine_report
from repro.experiments.reporting import timing_table
from repro.experiments.runner import run_sweep

__all__ = ["main", "build_parser", "EXIT_INCOMPLETE_GRID", "IncompleteGridError"]

#: Exit status of a run that completed but quarantined shards — the
#: rendition is missing cells, so scripts must not treat it as success
#: (distinct from 1, the generic usage/IO failure).
EXIT_INCOMPLETE_GRID = 3


class IncompleteGridError(Exception):
    """An exhibit ran under --continue-past-quarantine and skipped shards.

    Carries the operator-facing report (and any best-effort rendition)
    as its message; :func:`main` prints it and exits
    :data:`EXIT_INCOMPLETE_GRID` so pipelines notice the grid is
    incomplete instead of publishing a partial exhibit as success.
    """

SCALES: dict[str, SweepConfig] = {"unit": UNIT, "bench": BENCH, "full": FULL, "paper": PAPER}

#: Case-study scales matching the sweep presets.
CASE_SCALES: dict[str, CaseStudyConfig] = {
    "unit": CaseStudyConfig(
        num_codes=2, words_per_stratum=3, num_rounds=64, probabilities=(0.5, 0.75), max_at_risk=4
    ),
    "bench": CaseStudyConfig(num_codes=3, words_per_stratum=4, num_rounds=128, max_at_risk=5),
    "full": CaseStudyConfig(num_codes=6, words_per_stratum=10, num_rounds=128),
    "paper": CaseStudyConfig(num_codes=12, words_per_stratum=20, num_rounds=128),
}


#: Fleet-simulation scales: population sizes chosen so unit stays in
#: test-suite seconds while paper exercises a >= 10k-chip field study.
FLEET_SCALES: dict[str, FleetConfig] = {
    "unit": FleetConfig(
        num_chips=48, k=16, num_codes=2, num_rounds=16, rows=8, words_per_row=2,
        chips_per_shard=8, slice_words=4,
    ),
    "bench": FleetConfig(num_chips=400, num_rounds=32),
    "full": FleetConfig(num_chips=4000),
    "paper": FleetConfig(num_chips=20000),
}


def _sweep_config(args: argparse.Namespace) -> SweepConfig:
    return replace(SCALES[args.scale], seed=args.seed)


def _fleet_config(args: argparse.Namespace) -> FleetConfig:
    overrides: dict = {"seed": args.seed}
    if args.chips is not None:
        overrides["num_chips"] = args.chips
    if args.slice_words is not None:
        overrides["slice_words"] = args.slice_words
    return replace(FLEET_SCALES[args.scale], **overrides)


def _case_config(args: argparse.Namespace) -> CaseStudyConfig:
    return replace(CASE_SCALES[args.scale], seed=args.seed)


def _execution_backend(args: argparse.Namespace):
    """The ``backend=`` value runners forward: a spec string or an instance.

    The campaign-hardening flags only exist on the socket backend, so
    when any of them is set the spec resolves to a configured
    :class:`~repro.experiments.backends.SocketBackend` here; otherwise
    the raw spec (or ``None``) passes through and the engine resolves it
    as before.  An *explicit* hardening flag with a non-socket backend
    is an error — silently ignoring ``--auth-token`` would run an open
    fleet.  The ambient ``REPRO_AUTH_TOKEN`` variable, by contrast, only
    takes effect when a socket backend is actually in play: exporting it
    for a campaign must not break ordinary serial runs in the same
    shell.
    """
    explicit = [
        flag
        for flag, given in (
            ("--auth-token", args.auth_token is not None),
            ("--workers-expected", bool(args.workers_expected)),
            ("--heartbeat-timeout", args.heartbeat_timeout is not None),
            ("--status-port", args.status_port is not None),
            ("--continue-past-quarantine", args.continue_past_quarantine),
            ("--wire", args.wire is not None),
            ("--max-buffered-chunks", args.max_buffered_chunks is not None),
        )
        if given
    ]
    spec = args.backend
    # Match resolve_backend's normalization, or a capitalized spec would
    # be classified non-socket here yet still resolve to a socket server
    # downstream — with the env token silently unapplied.
    if spec is None or not str(spec).strip().lower().startswith("socket"):
        if explicit:
            raise SystemExit(
                f"{'/'.join(explicit)} harden the socket fleet and require "
                "--backend socket or socket://HOST:PORT"
            )
        return spec
    options: dict = {}
    token = args.auth_token
    if token is None:
        token = os.environ.get(AUTH_TOKEN_ENV)
    if token is not None:
        if not token:
            # An empty secret is a failed shell substitution, not a
            # request for an open fleet.
            raise SystemExit(
                "the fleet auth token is empty (--auth-token \"\" or a blank "
                f"{AUTH_TOKEN_ENV}); refusing to run an unauthenticated fleet "
                "by accident — unset it or provide a real secret"
            )
        options["auth_token"] = token
    if args.workers_expected:
        options["workers_expected"] = args.workers_expected
    if args.heartbeat_timeout is not None:
        # 0 disables the deadline entirely (wait forever on every peer).
        options["heartbeat_timeout"] = args.heartbeat_timeout or None
    if args.status_port is not None:
        options["status_port"] = args.status_port
    if args.continue_past_quarantine:
        options["continue_past_quarantine"] = True
    if args.wire is not None:
        options["wire"] = args.wire
    if args.max_buffered_chunks is not None:
        options["max_buffered_chunks"] = args.max_buffered_chunks
    if not options:
        return spec
    return resolve_backend(spec, args.jobs, **options)


def _run_fig2(args: argparse.Namespace) -> str:
    return fig2.render(fig2.run())


def _run_table2(args: argparse.Namespace) -> str:
    return table2.render(table2.run(seed=args.seed))


def _run_fig4(args: argparse.Namespace) -> str:
    scale = {"unit": (3, 6), "bench": (6, 12), "full": (12, 25)}[args.scale]
    config = fig4.Fig4Config(num_codes=scale[0], words_per_code=scale[1], seed=args.seed)
    return fig4.render(fig4.run(config))


def _sweep_exhibit(module) -> Callable[[argparse.Namespace], str]:
    def runner(args: argparse.Namespace) -> str:
        sweep = run_sweep(
            _sweep_config(args),
            jobs=args.jobs,
            backend=_execution_backend(args),
            resume=args.resume,
            progress=args.progress,
            shared_cache=args.shared_cache,
        )
        if sweep.quarantined:
            # The exhibit reductions index the full grid; an incomplete
            # one cannot render faithfully.  Name what is missing and
            # how to fill it — the targeted re-run renders everything.
            raise IncompleteGridError(
                quarantine_report(sweep.quarantined, unit="sweep cell")
                + "\n(exhibit rendition skipped: the grid is incomplete until "
                "the quarantined cells are recomputed)"
            )
        text = module.render(module.from_sweep(sweep))
        if args.timings:
            text += "\n\n" + timing_table(sweep)
        return text

    return runner


def _run_fig10(args: argparse.Namespace) -> str:
    result = fig10.run(
        _case_config(args),
        jobs=args.jobs,
        backend=_execution_backend(args),
        resume=args.resume,
        progress=args.progress,
    )
    text = fig10.render(result)
    if result.quarantined:
        # The BER panels render from the words that did complete; show
        # them, but exit incomplete so scripts don't publish them as the
        # full-grid exhibit.
        raise IncompleteGridError(
            text
            + "\n\n"
            + quarantine_report(result.quarantined, unit="case shard")
            + "\n(the panels above average only the completed words)"
        )
    return text


def _run_fleet(args: argparse.Namespace) -> str:
    result = fleet.run(
        _fleet_config(args),
        jobs=args.jobs,
        backend=_execution_backend(args),
        resume=args.resume,
        progress=args.progress,
        shared_cache=args.shared_cache,
    )
    text = fleet.render(result)
    if result.quarantined:
        # Fleet-level rates render from the chips that did complete;
        # show them, but exit incomplete so scripts don't publish a
        # partial population study as the full one.
        raise IncompleteGridError(
            text
            + "\n\n"
            + quarantine_report(result.quarantined, unit="fleet shard")
            + "\n(the report above excludes the incomplete chips)"
        )
    return text


def _run_headline(args: argparse.Namespace) -> str:
    backend = _execution_backend(args)
    sweep = run_sweep(
        _sweep_config(args),
        jobs=args.jobs,
        backend=backend,
        resume=args.resume,
        progress=args.progress,
        shared_cache=args.shared_cache,
    )
    # The sweep cells and the case-study shards are different record
    # kinds; give the case study its own sibling store.
    case_resume = f"{args.resume}.fig10" if args.resume else None
    case = fig10.run(
        _case_config(args),
        jobs=args.jobs,
        backend=backend,
        resume=case_resume,
        progress=args.progress,
    )
    if sweep.quarantined or case.quarantined:
        quarantined = list(sweep.quarantined) + list(case.quarantined)
        raise IncompleteGridError(
            quarantine_report(quarantined, unit="shard")
            + "\n(headline speedups skipped: they compare full grids)"
        )
    text = headline.render(
        active=headline.active_speedups(sweep),
        case_study=headline.case_study_speedups(case),
    )
    if args.timings:
        text += "\n\n" + timing_table(sweep)
    return text


def _run_ext_patterns(args: argparse.Namespace) -> str:
    return ext_patterns.render(ext_patterns.run(jobs=args.jobs, backend=_execution_backend(args)))


def _run_ext_dec(args: argparse.Namespace) -> str:
    return ext_dec.render(ext_dec.run(seed=args.seed))


def _run_ext_code_length(args: argparse.Namespace) -> str:
    return ext_code_length.render(
        ext_code_length.run(jobs=args.jobs, backend=_execution_backend(args))
    )


def _run_ext_heterogeneous(args: argparse.Namespace) -> str:
    return ext_heterogeneous.render(ext_heterogeneous.run(seed=args.seed))


def _run_ext_interleaving(args: argparse.Namespace) -> str:
    return ext_interleaving.render(ext_interleaving.run(seed=args.seed))


def _run_ext_scrubbing(args: argparse.Namespace) -> str:
    return ext_scrubbing.render(ext_scrubbing.run(seed=args.seed))


def _run_ext_rank(args: argparse.Namespace) -> str:
    return ext_rank.render(ext_rank.run(seed=args.seed))


COMMANDS: dict[str, tuple[str, Callable[[argparse.Namespace], str]]] = {
    "fig2": ("Fig 2: wasted storage vs repair granularity", _run_fig2),
    "table2": ("Table 2: at-risk bit amplification", _run_table2),
    "fig4": ("Fig 4: post-correction error probabilities", _run_fig4),
    "fig6": ("Fig 6: direct-error coverage", _sweep_exhibit(fig6)),
    "fig7": ("Fig 7: bootstrapping rounds", _sweep_exhibit(fig7)),
    "fig8": ("Fig 8: missed indirect-risk bits", _sweep_exhibit(fig8)),
    "fig9": ("Fig 9: secondary-ECC capability", _sweep_exhibit(fig9)),
    "fig10": ("Fig 10: data-retention case study", _run_fig10),
    "fleet": ("Fleet-scale field simulation and repair economics", _run_fleet),
    "headline": ("Headline speedup numbers", _run_headline),
    "ext-patterns": ("Ablation: data patterns", _run_ext_patterns),
    "ext-dec": ("Extension: DEC BCH on-die ECC", _run_ext_dec),
    "ext-codelength": ("Extension: (136,128) geometry", _run_ext_code_length),
    "ext-heterogeneous": ("Extension: normal per-bit probabilities", _run_ext_heterogeneous),
    "ext-interleaving": ("Extension: secondary-ECC word layouts", _run_ext_interleaving),
    "ext-scrubbing": ("Extension: scrubbing identification latency", _run_ext_scrubbing),
    "ext-rank": ("Extension: rank-layout escape rates", _run_ext_rank),
}


def _jobs_type(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}") from None
    if jobs < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = one per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate exhibits of the HARP (MICRO 2021) reproduction.",
    )
    parser.add_argument(
        "command",
        choices=list(COMMANDS) + ["all", "worker", "store", "status", "serve", "jobs"],
        help="exhibit to regenerate ('all' runs every one; 'worker' joins "
        "a socket-backend server instead of rendering an exhibit; 'store' "
        "is the shard-store toolbox — see python -m repro store --help; "
        "'status' reads a live --status-port snapshot — see "
        "python -m repro status --help; 'serve' runs the campaign daemon "
        "and 'jobs' is its HTTP client — see python -m repro serve --help "
        "and docs/service.md)",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default="unit",
        help="Monte-Carlo scale preset (default: unit)",
    )
    parser.add_argument("--seed", type=int, default=2021, help="experiment seed")
    parser.add_argument(
        "--chips",
        type=int,
        default=None,
        metavar="N",
        help="fleet only: override the scale preset's population size "
        "(chips drawn from the fault-mix model; ignored elsewhere)",
    )
    parser.add_argument(
        "--slice-words",
        type=int,
        default=None,
        metavar="W",
        help="fleet only: sub-cell shard granularity — a chip profiling "
        "more than W words is split into W-word cell slices that many "
        "workers share (0 disables sub-cell sharding; ignored elsewhere)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        help="sweep worker processes (0 = one per CPU; unset runs serial, "
        "except --backend process/socket default to one worker per CPU; "
        "results are bit-identical for every setting)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="append the sweep engine's per-cell wall-clock table "
        "(fig6/7/8/9 and headline; ignored elsewhere)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a periodic grid-coverage/ETA line to stderr as cells "
        "complete (fig6/7/8/9, fig10, fleet, headline; every backend; "
        "ignored elsewhere)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend: serial, process, socket, or "
        "socket://HOST:PORT (default: serial for --jobs 1, else a "
        "process pool; all backends are bit-identical)",
    )
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        help="precompute the sweep's cache artifacts once and publish "
        "them in a shared-memory block that pool workers map zero-copy "
        "instead of re-deriving (fig6/7/8/9, fleet, and headline; "
        "bit-identical either way; local process pools only — the socket "
        "backend's workers warm their own caches as before)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="stream completed work units to a JSONL shard store and "
        "skip everything already persisted there (fig6/7/8/9, fig10, "
        "fleet, and headline — whose case-study shards land at "
        "PATH.fig10; ignored elsewhere)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        metavar="SECRET",
        help="shared secret for the socket fleet: servers require it from "
        "every joining worker, workers present it when connecting "
        f"(falls back to the {AUTH_TOKEN_ENV} environment variable "
        "whenever a socket backend is used)",
    )
    parser.add_argument(
        "--workers-expected",
        type=int,
        default=0,
        metavar="N",
        help="socket backend only: hold every task until N workers have "
        "joined, so a campaign cannot start against a half-booted fleet "
        "(default: dispatch to the first worker)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="socket backend only: requeue a chunk whose worker has been "
        "silent this long; workers heartbeat at a quarter of it "
        "(default: 60; 0 disables the deadline)",
    )
    parser.add_argument(
        "--status-port",
        type=int,
        default=None,
        metavar="PORT",
        help="socket backend only: serve a live one-line JSON status "
        "snapshot of the running map (fleet, heartbeat ages, queue depth, "
        "chunk progress, retries, quarantines) on this TCP port; read it "
        "with python -m repro status HOST:PORT",
    )
    parser.add_argument(
        "--continue-past-quarantine",
        action="store_true",
        help="socket backend only: when a chunk exhausts its retry budget, "
        "set it aside and finish the rest of the grid instead of aborting; "
        "the quarantined shard keys are reported at the end (and recorded "
        "in the --resume store) for a targeted re-run",
    )
    parser.add_argument(
        "--wire",
        choices=["v1", "pickle"],
        default=None,
        help="socket fleet frame codec: v1 (authenticated repro-wire-v1 "
        "frames, the default) or pickle (legacy unauthenticated codec "
        "for old trusted fleets); the server and its workers must agree",
    )
    parser.add_argument(
        "--max-buffered-chunks",
        type=int,
        default=None,
        metavar="N",
        help="socket backend only: pause dispatching new chunks while N "
        "completed chunks sit unconsumed by a slow consumer "
        "(backpressure; default: unbounded)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="socket-backend server to join (worker subcommand only)",
    )
    parser.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N chunks, then leave the fleet cleanly "
        "with a drain goodbye (worker subcommand only; elastic "
        "scale-down with no retry-budget charge)",
    )
    parser.add_argument(
        "--linger",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="after a server drains, keep retrying the address this long "
        "so the worker joins an exhibit's next sweep (worker subcommand "
        "only; 0 exits after one session)",
    )
    parser.add_argument(
        # Set by SocketBackend on the workers it spawns itself: an idle
        # spawned worker (siblings drained the queue first) is normal
        # and must not alarm-exit like an operator-started one.
        "--spawned",
        action="store_true",
        help=argparse.SUPPRESS,
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        # The store toolbox has its own positional grammar (PATH ACTION
        # [MORE...]); dispatch before the exhibit parser sees it.
        from repro.experiments.storetools import store_main

        return store_main(argv[1:])
    if argv and argv[0] == "status":
        # Same reason: the status reader's grammar is HOST:PORT, not an
        # exhibit's option set.
        from repro.experiments.monitor import status_main

        return status_main(argv[1:])
    if argv and argv[0] == "serve":
        # The campaign daemon has its own flag set (ports, state dir,
        # fleet knobs); dispatch before the exhibit parser sees it.
        from repro.experiments.service import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "jobs":
        # The daemon's HTTP client: URL ACTION [TARGET] grammar.
        from repro.experiments.service import jobs_main

        return jobs_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "status":
        # Reachable only when options precede the subcommand, mirroring
        # the store guard below.
        raise SystemExit(
            "the status reader takes no exhibit options; invoke it as "
            "`python -m repro status HOST:PORT` with 'status' first"
        )
    if args.command == "store":
        # Reachable only when options precede the subcommand (the plain
        # `repro store ...` spelling is dispatched above, before this
        # parser runs, because the toolbox has its own positional
        # grammar).
        raise SystemExit(
            "the store toolbox takes no exhibit options; invoke it as "
            "`python -m repro store PATH {summary,compact,merge}` with "
            "'store' first"
        )
    if args.command in ("serve", "jobs"):
        # Reachable only when options precede the subcommand, mirroring
        # the store/status guards above.
        raise SystemExit(
            f"the campaign daemon takes no exhibit options; invoke it as "
            f"`python -m repro {args.command} ...` with {args.command!r} first "
            "(see python -m repro serve --help)"
        )
    if args.command == "worker":
        if not args.connect:
            raise SystemExit("worker requires --connect HOST:PORT")
        try:
            executed, reached = run_worker(
                args.connect,
                linger=args.linger,
                auth_token=args.auth_token or os.environ.get(AUTH_TOKEN_ENV) or None,
                wire=args.wire or "v1",
                max_chunks=args.max_chunks,
            )
        except WorkerRejectedError as error:
            # A wrong secret will be wrong on every retry; fail loudly
            # so a misconfigured fleet is one glance at stderr, not a
            # silently idle campaign.
            print(
                f"worker rejected by server at {args.connect}: {error}",
                file=sys.stderr,
            )
            return 1
        if executed == 0 and not reached and not args.spawned:
            # Never reaching a server is almost always a typo'd address
            # — make that visible instead of exiting 0 silently across a
            # whole fleet.  A clean session with an already-empty queue
            # (e.g. joining a mostly-resumed sweep late) is healthy and
            # exits 0.
            print(
                f"worker never reached a server at {args.connect}",
                file=sys.stderr,
            )
            return 1
        return 0
    if args.command == "all":
        incomplete = False
        for name in COMMANDS:
            description, runner = COMMANDS[name]
            print(f"== {description} ==")
            try:
                print(runner(_args_for_all(name, args)))
            except IncompleteGridError as error:
                # Report and keep going: later exhibits may be whole,
                # but the overall run must still exit incomplete.
                print(error)
                incomplete = True
            print()
        return EXIT_INCOMPLETE_GRID if incomplete else 0
    description, runner = COMMANDS[args.command]
    print(f"== {description} ==")
    try:
        print(runner(args))
    except IncompleteGridError as error:
        print(error)
        print()
        return EXIT_INCOMPLETE_GRID
    print()
    return 0


def _args_for_all(name: str, args: argparse.Namespace) -> argparse.Namespace:
    """Per-exhibit argument view for an ``all`` run sharing one ``--resume``.

    The sweep exhibits all run the same config, so sharing one sweep
    store is exactly right — but fig10's and fleet's stores are
    different record families, and handing them the sweep path would
    refuse to load.  Give each the suffixed sibling its own runs use
    (``PATH.fig10`` matches what headline already writes, so the two
    share the case-study shards, which also run the same config).
    """
    if name not in ("fig10", "fleet") or not args.resume:
        return args
    return argparse.Namespace(**{**vars(args), "resume": f"{args.resume}.{name}"})


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
