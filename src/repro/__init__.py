"""repro: a from-scratch reproduction of HARP (MICRO 2021).

HARP — Hybrid Active-Reactive Profiling — identifies bits at risk of
uncorrectable error in memory chips that use on-die ECC.  This library
implements the paper's full stack: the on-die ECC substrate, a simulated
DRAM chip with data-retention errors, the profiling algorithms (Naive,
BEEP, HARP-U, HARP-A, HARP-A+BEEP), repair mechanisms with a secondary
ECC, and the Monte-Carlo experiment harness regenerating every figure and
table in the paper's evaluation.

Quickstart::

    import numpy as np
    from repro.ecc import random_sec_code
    from repro.memory import sample_word_profile
    from repro.profiling import HarpUProfiler, simulate_word
    from repro.analysis import compute_ground_truth

    rng = np.random.default_rng(7)
    code = random_sec_code(64, rng)                     # (71, 64) on-die ECC
    word = sample_word_profile(code, 4, 0.5, rng)       # 4 at-risk bits
    truth = compute_ground_truth(code, word)
    profiler = HarpUProfiler(code, seed=1)
    result = simulate_word(profiler, word, num_rounds=64, word_seed=1)
    covered = result.final_identified() & truth.direct_at_risk
"""

__version__ = "1.0.0"

__all__ = [
    "ecc",
    "memory",
    "analysis",
    "profiling",
    "repair",
    "controller",
    "experiments",
    "sat",
    "utils",
]
