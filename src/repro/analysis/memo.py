"""Process-local memoization for the exponential at-risk analyses.

:func:`repro.analysis.atrisk.compute_ground_truth` enumerates every
nonempty subset of a word's at-risk positions, and
:func:`repro.analysis.atrisk.predict_indirect_from_direct` enumerates
every combination of identified direct-risk bits — both exponential in
their input size and both pure functions of (parity-check matrix, input
positions).  The Monte-Carlo sweep engine re-encounters the same inputs
constantly: every probability level of a sweep shares the same sampled
at-risk positions, and HARP-A rediscovers the same observed sets across
probability levels and words.

The adaptive profilers add a third family of repeated work: BEEP solves a
GF(2) charge system per crafted round whose inputs are (parity-check
matrix, anchor set, hypothesis pair), and expands an O(n²) aliasing-pair
table per observed target — both pure in the code, yet re-derived by
every word of a sweep cell that shares that code.  The caches here
collapse those too: crafted-pattern epochs holding one eliminated
anchor-set base plus its lazily-resolved pair assignments
(:data:`crafted_pattern_cache`, which stores **read-only** arrays —
callers that hand patterns out must copy), and per-target aliasing pairs
(:data:`beep_expansion_cache`).

This module provides bounded LRU caches for these functions, keyed on the
parity-check matrix bytes plus the input positions (and cell orientation
where applicable).  The caches are **process-local**: each worker process
of the parallel sweep engine owns an independent cache, so no locking or
shared state is needed — results are deterministic regardless of cache
state, making this safe under any ``multiprocessing`` start method
(``fork`` inherits a snapshot; ``spawn`` starts cold; both converge to
identical outputs).

Above the process-local tier sits an optional **shared tier**
(:mod:`repro.analysis.shared_memo`): when a sweep runs with
``shared_cache=True`` the parent precomputes the per-code artifacts once
and exposes them to pool workers through a shared-memory overlay.
:meth:`Memo.get` consults that overlay on every local miss — same keys,
same values — so a cold worker resolves precomputed entries without
re-deriving them; hits land in the local store and count as
``stats.shared_hits``.

Cache statistics (:class:`CacheStats`) are exposed for tests and
benchmarks to verify, e.g., that a sweep enumerates each word's ground
truth exactly once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

import numpy as np

from repro.analysis import shared_memo
from repro.analysis.atrisk import (
    ChargeSystem,
    GroundTruth,
    compute_ground_truth,
    predict_indirect_from_direct,
    unpack_dataword,
)
from repro.ecc.code_analysis import aliasing_pairs_for_target
from repro.ecc.linear_code import SystematicCode
from repro.memory.cells import CellOrientation
from repro.memory.error_model import WordErrorProfile

__all__ = [
    "CacheStats",
    "CodeAnalysisCaches",
    "CraftedEpoch",
    "Memo",
    "code_caches",
    "ground_truth_cache",
    "indirect_prediction_cache",
    "crafted_pattern_cache",
    "beep_expansion_cache",
    "mismatch_consequence_cache",
    "cached_ground_truth",
    "cached_predict_indirect",
    "cached_crafted_assignment",
    "cached_aliasing_pairs",
    "clear_analysis_caches",
]

T = TypeVar("T")


@dataclass
class CacheStats:
    """Hit/miss counters of one memo cache.

    ``shared_hits`` counts local misses that were resolved from the
    shared overlay (:mod:`repro.analysis.shared_memo`) instead of being
    recomputed; they are *not* included in ``hits`` or ``misses``, so
    existing exactly-once assertions on ``misses`` keep their meaning.
    """

    hits: int = 0
    misses: int = 0
    shared_hits: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses + self.shared_hits

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0


class Memo:
    """A bounded LRU key-value memo with hit/miss accounting.

    Values are computed at most once per key while resident; the least
    recently used entry is evicted when ``max_entries`` is exceeded.
    Not thread-safe by design — each process (and each sweep worker)
    owns its own instance.
    """

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._store: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Hashable, compute: Callable[[], T]) -> T:
        """The cached value for ``key``, computing and inserting on miss.

        A local miss consults the shared overlay first (see module
        docstring); only keys absent from both tiers are computed.
        """
        if key in self._store:
            self._store.move_to_end(key)
            self.stats.hits += 1
            return self._store[key]  # type: ignore[return-value]
        value = shared_memo.overlay_lookup(key)
        if value is shared_memo.MISS:
            value = compute()
            self.stats.misses += 1
        else:
            self.stats.shared_hits += 1
        self._store[key] = value
        if len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return value

    def peek(self, key: Hashable, default: T | None = None) -> T | None:
        """The cached value for ``key`` without computing anything on a miss.

        Consults the shared overlay like :meth:`get` (a resolved overlay
        entry lands in the local store and counts as a shared hit); an
        absent key returns ``default`` and leaves the statistics alone,
        so batch producers can probe-then-:meth:`insert` without
        double-counting misses.
        """
        value = self._store.get(key, shared_memo.MISS)
        if value is not shared_memo.MISS:
            self._store.move_to_end(key)
            self.stats.hits += 1
            return value  # type: ignore[return-value]
        value = shared_memo.overlay_lookup(key)
        if value is shared_memo.MISS:
            return default
        self.stats.shared_hits += 1
        self._store[key] = value
        if len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return value  # type: ignore[return-value]

    def peek_many(self, keys: list) -> list:
        """:meth:`peek` over a key batch in one call.

        Returns one entry per key — the cached value or ``None`` — with
        the same statistics accounting as per-key :meth:`peek` (local
        hits, overlay resolutions as shared hits, absences untouched).
        The batched simulation kernel probes every distinct pattern of a
        cell through this path, so the per-call overhead of ``peek``
        matters at the ~10^3-keys-per-cell scale.
        """
        store = self._store
        move_to_end = store.move_to_end
        miss = shared_memo.MISS
        out: list = []
        append = out.append
        hits = 0
        for key in keys:
            value = store.get(key, miss)
            if value is not miss:
                move_to_end(key)
                hits += 1
                append(value)
                continue
            value = shared_memo.overlay_lookup(key)
            if value is miss:
                append(None)
                continue
            self.stats.shared_hits += 1
            store[key] = value
            if len(store) > self.max_entries:
                store.popitem(last=False)
            append(value)
        self.stats.hits += hits
        return out

    def insert(self, key: Hashable, value: T) -> T:
        """Insert a value computed outside the memo (counts as one miss).

        The batched simulation kernel resolves whole groups of keys in
        one vectorized pass instead of calling :meth:`get` per key; each
        insert still increments ``stats.misses`` exactly once, so the
        exactly-once accounting the tests pin keeps its meaning.
        """
        self.stats.misses += 1
        self._store[key] = value
        self._store.move_to_end(key)
        if len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return value

    def clear(self) -> None:
        self._store.clear()
        self.stats.reset()


def _code_key(code: SystematicCode) -> tuple:
    """Hashable identity of a code: capability + parity-check matrix bytes."""
    return (code.t, code.parity_submatrix.shape, code.parity_bytes)


def _orientation_key(orientation: CellOrientation | None) -> bytes | None:
    return None if orientation is None else orientation.true_cell_mask.tobytes()


#: Process-local caches (one set per worker process of a parallel sweep).
ground_truth_cache = Memo(max_entries=8192)
indirect_prediction_cache = Memo(max_entries=8192)
#: Crafted-pattern epochs, one per (code, anchor set); each holds its
#: lazily-resolved pair -> read-only assignment dict (see CraftedEpoch).
#: Epochs are small (a dict of shared k-byte arrays), but a paper-scale
#: sweep touches tens of thousands of distinct anchor sets — the bound
#: must exceed that working set or the LRU thrashes mid-sweep.
crafted_pattern_cache = Memo(max_entries=131072)
#: Per-(code, target) aliasing-pair tables for BEEP hypothesis expansion.
beep_expansion_cache = Memo(max_entries=8192)
#: Decode consequences of one (code, read mode, failure pattern): the
#: mismatch set a profiler observes when that pattern fails.  Promoted
#: out of ``simulate_word``'s per-run dict so repeated cells on the same
#: code — every (probability, profiler) cell re-simulates the same words
#: — share resolved patterns across runs and shared-memory workers.  A
#: paper-scale cell sees tens of thousands of distinct patterns per
#: code; the bound must hold a sweep's working set or the LRU thrashes.
mismatch_consequence_cache = Memo(max_entries=131072)


def cached_ground_truth(
    code: SystematicCode,
    at_risk: tuple[int, ...] | WordErrorProfile,
    orientation: CellOrientation | None = None,
) -> GroundTruth:
    """Memoized :func:`~repro.analysis.atrisk.compute_ground_truth`.

    Keyed on (parity-check matrix bytes, at-risk positions, orientation);
    the word's per-bit probabilities are irrelevant to ground truth, so a
    sweep's probability levels all share one enumeration.
    """
    positions = (
        at_risk.positions if isinstance(at_risk, WordErrorProfile) else tuple(at_risk)
    )
    key = ("gt", _code_key(code), positions, _orientation_key(orientation))
    return ground_truth_cache.get(
        key, lambda: compute_ground_truth(code, positions, orientation)
    )


def cached_predict_indirect(
    code: SystematicCode,
    direct_bits: frozenset[int] | set[int],
    max_pattern_size: int | None = None,
) -> frozenset[int]:
    """Memoized :func:`~repro.analysis.atrisk.predict_indirect_from_direct`.

    Keyed on (parity-check matrix bytes, sorted direct bits, pattern-size
    bound).  HARP-A refreshes its prediction after every direct-risk
    discovery, and the same (code, observed set) pairs recur across the
    sweep's probability levels — this cache collapses those repeats.
    """
    bits = tuple(sorted(int(b) for b in direct_bits))
    key = ("ind", _code_key(code), bits, max_pattern_size)
    return indirect_prediction_cache.get(
        key, lambda: predict_indirect_from_direct(code, frozenset(bits), max_pattern_size)
    )


class CraftedEpoch:
    """Lazily-resolved crafted assignments of one (code, anchor set).

    The eliminated anchor-set base is built at most once; each hypothesis
    pair resolves through a two-constraint
    :meth:`~repro.analysis.atrisk.ChargeSystem.with_charged` update into
    a plain dict, so a profiler's per-round lookup is a single dict hit —
    and every word, round, and run that reaches the same (code, anchors)
    shares the already-resolved pairs.  All-data systems (anchors and
    pair within the data bits) short-circuit: data bits are free
    variables, so the canonical solution is just the OR of the pinned
    bits.  Values are read-only arrays (or None for infeasible pairs).
    """

    __slots__ = ("code", "anchors", "_anchor_mask", "_base", "patterns")

    def __init__(self, code: SystematicCode, anchors: tuple[int, ...]) -> None:
        self.code = code
        self.anchors = anchors
        #: OR of the anchor bits, or None when an anchor is a parity
        #: position (generic solver path only).
        self._anchor_mask: int | None = 0
        for anchor in anchors:
            if 0 <= anchor < code.k:
                self._anchor_mask |= 1 << anchor
            else:
                self._anchor_mask = None
                break
        self._base: ChargeSystem | None = None
        self.patterns: dict[tuple[int, int], np.ndarray | None] = {}

    def assignment(self, pair: tuple[int, int]) -> np.ndarray | None:
        """The shared crafted assignment for ``pair``, resolving on miss."""
        patterns = self.patterns
        if pair in patterns:
            return patterns[pair]
        code = self.code
        a, b = pair
        if self._anchor_mask is not None and 0 <= a < code.k and 0 <= b < code.k:
            solved = unpack_dataword(code.k, self._anchor_mask | (1 << a) | (1 << b))
        else:
            base = self._base
            if base is None:
                base = self._base = ChargeSystem(code, self.anchors)
            solved = base.with_charged(pair).solution()
        if solved is not None:
            solved.setflags(write=False)
        patterns[pair] = solved
        return solved


class CodeAnalysisCaches:
    """Per-code bound view of the adaptive-profiler caches (hot-path handle).

    BEEP performs a cache lookup per crafted round; binding the code key
    once per profiler instance keeps that lookup to a tuple build plus
    one :class:`Memo` access instead of re-deriving the parity-matrix key
    every round.  Obtain instances through :func:`code_caches` — they are
    shared per code contents, and all state lives in the module caches.
    """

    __slots__ = ("code", "_key")

    def __init__(self, code: SystematicCode) -> None:
        self.code = code
        self._key = _code_key(code)

    def crafted_epoch(self, anchors: tuple[int, ...]) -> CraftedEpoch:
        """The shared :class:`CraftedEpoch` for one sorted anchor tuple.

        Profilers re-fetch this only when their anchor set grows (a
        handful of times per run); the per-round pair lookup then
        bypasses the memo entirely via :meth:`CraftedEpoch.assignment`.
        """
        key = ("epoch", self._key, anchors)
        return crafted_pattern_cache.get(key, lambda: CraftedEpoch(self.code, anchors))

    def crafted_assignment(
        self, anchors: tuple[int, ...], pair: tuple[int, int]
    ) -> np.ndarray | None:
        """Memoized crafted-pattern solve for one (anchor set, pair).

        Bit-identical to
        ``solve_charge_assignment(code, set(anchors) | set(pair))`` (the
        canonical-solution property of :class:`ChargeSystem`), but the
        anchor-set elimination is shared across pairs, rounds, and every
        word of the sweep that shares the code.  The returned array is
        **read-only** and shared — callers that expose it must copy.
        """
        return self.crafted_epoch(anchors).assignment(pair)

    def decode_consequences(
        self,
        mode: str,
        failed: tuple[int, ...],
        compute: Callable[[], frozenset[int]],
    ) -> frozenset[int]:
        """Memoized mismatch set of one (read mode, failure pattern).

        The pattern's decode consequence is pure in (parity-check matrix,
        read mode, failed positions): bypass reads observe the failed
        data positions verbatim, normal reads observe the post-correction
        data errors.  ``compute`` supplies the mode-appropriate resolver
        (the caches stay import-free of the profiling layer); the scalar
        ``simulate_word`` keeps a per-run dict in front of this shared
        tier, so the memo is consulted once per distinct pattern per run.
        """
        return mismatch_consequence_cache.get(("mis", self._key, mode, failed), compute)

    def peek_decode_consequences(
        self, mode: str, failed: tuple[int, ...]
    ) -> frozenset[int] | None:
        """The cached mismatch set for one pattern, or ``None`` if absent."""
        return mismatch_consequence_cache.peek(("mis", self._key, mode, failed))

    def peek_decode_consequences_many(
        self, mode: str, patterns: list[tuple[int, ...]]
    ) -> list[frozenset[int] | None]:
        """Bulk :meth:`peek_decode_consequences` over a pattern batch."""
        key = self._key
        return mismatch_consequence_cache.peek_many(
            [("mis", key, mode, failed) for failed in patterns]
        )

    def insert_decode_consequences(
        self, mode: str, failed: tuple[int, ...], mismatches: frozenset[int]
    ) -> frozenset[int]:
        """Share a mismatch set resolved by a batched producer."""
        return mismatch_consequence_cache.insert(("mis", self._key, mode, failed), mismatches)

    def aliasing_pairs(self, target: int) -> tuple[tuple[int, int], ...]:
        """Memoized :func:`repro.ecc.code_analysis.aliasing_pairs_for_target`.

        The pair table is pure in (parity-check matrix, target); without
        the cache every word sharing a code rebuilds the same O(n²) table
        for every newly observed post-correction error.
        """
        key = ("pairs", self._key, target)
        return beep_expansion_cache.get(
            key, lambda: aliasing_pairs_for_target(self.code, target)
        )


#: Shared per-code handles (content-addressed; cleared with the caches).
_code_caches_registry: dict[tuple, CodeAnalysisCaches] = {}


def code_caches(code: SystematicCode) -> CodeAnalysisCaches:
    """The shared :class:`CodeAnalysisCaches` handle for ``code``."""
    key = _code_key(code)
    handle = _code_caches_registry.get(key)
    if handle is None:
        handle = CodeAnalysisCaches(code)
        _code_caches_registry[key] = handle
    return handle


def cached_crafted_assignment(
    code: SystematicCode, anchors: tuple[int, ...], pair: tuple[int, int]
) -> np.ndarray | None:
    """Functional spelling of :meth:`CodeAnalysisCaches.crafted_assignment`."""
    return code_caches(code).crafted_assignment(anchors, pair)


def cached_aliasing_pairs(
    code: SystematicCode, target: int
) -> tuple[tuple[int, int], ...]:
    """Functional spelling of :meth:`CodeAnalysisCaches.aliasing_pairs`."""
    return code_caches(code).aliasing_pairs(target)


def clear_analysis_caches() -> None:
    """Empty all analysis caches and reset their statistics (tests/benchmarks)."""
    ground_truth_cache.clear()
    indirect_prediction_cache.clear()
    crafted_pattern_cache.clear()
    beep_expansion_cache.clear()
    mismatch_consequence_cache.clear()
    _code_caches_registry.clear()
