"""Process-local memoization for the exponential at-risk analyses.

:func:`repro.analysis.atrisk.compute_ground_truth` enumerates every
nonempty subset of a word's at-risk positions, and
:func:`repro.analysis.atrisk.predict_indirect_from_direct` enumerates
every combination of identified direct-risk bits — both exponential in
their input size and both pure functions of (parity-check matrix, input
positions).  The Monte-Carlo sweep engine re-encounters the same inputs
constantly: every probability level of a sweep shares the same sampled
at-risk positions, and HARP-A rediscovers the same observed sets across
probability levels and words.

This module provides bounded LRU caches for both functions, keyed on the
parity-check matrix bytes plus the input positions (and cell orientation
where applicable).  The caches are **process-local**: each worker process
of the parallel sweep engine owns an independent cache, so no locking or
shared state is needed — results are deterministic regardless of cache
state, making this safe under any ``multiprocessing`` start method
(``fork`` inherits a snapshot; ``spawn`` starts cold; both converge to
identical outputs).

Cache statistics (:class:`CacheStats`) are exposed for tests and
benchmarks to verify, e.g., that a sweep enumerates each word's ground
truth exactly once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

from repro.analysis.atrisk import (
    GroundTruth,
    compute_ground_truth,
    predict_indirect_from_direct,
)
from repro.ecc.linear_code import SystematicCode
from repro.memory.cells import CellOrientation
from repro.memory.error_model import WordErrorProfile

__all__ = [
    "CacheStats",
    "Memo",
    "ground_truth_cache",
    "indirect_prediction_cache",
    "cached_ground_truth",
    "cached_predict_indirect",
    "clear_analysis_caches",
]

T = TypeVar("T")


@dataclass
class CacheStats:
    """Hit/miss counters of one memo cache."""

    hits: int = 0
    misses: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class Memo:
    """A bounded LRU key-value memo with hit/miss accounting.

    Values are computed at most once per key while resident; the least
    recently used entry is evicted when ``max_entries`` is exceeded.
    Not thread-safe by design — each process (and each sweep worker)
    owns its own instance.
    """

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._store: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Hashable, compute: Callable[[], T]) -> T:
        """The cached value for ``key``, computing and inserting on miss."""
        if key in self._store:
            self._store.move_to_end(key)
            self.stats.hits += 1
            return self._store[key]  # type: ignore[return-value]
        value = compute()
        self.stats.misses += 1
        self._store[key] = value
        if len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return value

    def clear(self) -> None:
        self._store.clear()
        self.stats.reset()


def _code_key(code: SystematicCode) -> tuple:
    """Hashable identity of a code: capability + parity-check matrix bytes."""
    parity = code.parity_submatrix
    return (code.t, parity.shape, parity.tobytes())


def _orientation_key(orientation: CellOrientation | None) -> bytes | None:
    return None if orientation is None else orientation.true_cell_mask.tobytes()


#: Process-local caches (one pair per worker process of a parallel sweep).
ground_truth_cache = Memo(max_entries=8192)
indirect_prediction_cache = Memo(max_entries=8192)


def cached_ground_truth(
    code: SystematicCode,
    at_risk: tuple[int, ...] | WordErrorProfile,
    orientation: CellOrientation | None = None,
) -> GroundTruth:
    """Memoized :func:`~repro.analysis.atrisk.compute_ground_truth`.

    Keyed on (parity-check matrix bytes, at-risk positions, orientation);
    the word's per-bit probabilities are irrelevant to ground truth, so a
    sweep's probability levels all share one enumeration.
    """
    positions = (
        at_risk.positions if isinstance(at_risk, WordErrorProfile) else tuple(at_risk)
    )
    key = ("gt", _code_key(code), positions, _orientation_key(orientation))
    return ground_truth_cache.get(
        key, lambda: compute_ground_truth(code, positions, orientation)
    )


def cached_predict_indirect(
    code: SystematicCode,
    direct_bits: frozenset[int] | set[int],
    max_pattern_size: int | None = None,
) -> frozenset[int]:
    """Memoized :func:`~repro.analysis.atrisk.predict_indirect_from_direct`.

    Keyed on (parity-check matrix bytes, sorted direct bits, pattern-size
    bound).  HARP-A refreshes its prediction after every direct-risk
    discovery, and the same (code, observed set) pairs recur across the
    sweep's probability levels — this cache collapses those repeats.
    """
    bits = tuple(sorted(int(b) for b in direct_bits))
    key = ("ind", _code_key(code), bits, max_pattern_size)
    return indirect_prediction_cache.get(
        key, lambda: predict_indirect_from_direct(code, frozenset(bits), max_pattern_size)
    )


def clear_analysis_caches() -> None:
    """Empty both caches and reset their statistics (tests/benchmarks)."""
    ground_truth_cache.clear()
    indirect_prediction_cache.clear()
