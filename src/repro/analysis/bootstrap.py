"""Bootstrapping metrics (paper §4.2, Fig 7).

A profiler that observes only post-correction errors learns nothing until
some uncorrectable combination of pre-correction errors happens to occur —
the paper calls escaping this blind phase *bootstrapping*.  These helpers
extract bootstrapping statistics from per-round identification traces.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["rounds_to_first_identification", "censored_rounds"]


def rounds_to_first_identification(
    identified_counts: Sequence[int],
    max_rounds: int | None = None,
) -> int:
    """1-based round of the first identification, censored at ``max_rounds``.

    Args:
        identified_counts: cumulative identified-bit counts per round.
        max_rounds: censoring bound; defaults to ``len(identified_counts)``.
            The paper conservatively plots words with no identification as
            requiring the maximum simulated round count (its Fig 7).
    """
    bound = len(identified_counts) if max_rounds is None else max_rounds
    for round_index, count in enumerate(identified_counts):
        if count > 0:
            return round_index + 1
    return bound


def censored_rounds(
    traces: Sequence[Sequence[int]],
    max_rounds: int | None = None,
) -> list[int]:
    """First-identification rounds for a batch of traces (one per word)."""
    return [rounds_to_first_identification(trace, max_rounds) for trace in traces]
