"""Secondary-ECC correction-capability analysis (paper §7.3.2, Fig 9).

HARP's reactive phase is safe only if the memory-controller-side secondary
ECC can correct every error pattern that can still occur after active
profiling.  These helpers compute the required capability per word and the
number of active rounds needed to bound it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.atrisk import GroundTruth, max_simultaneous_post_errors
from repro.utils.stats import percentile

__all__ = [
    "required_capability",
    "capability_trajectory",
    "rounds_to_bound_capability",
]


def required_capability(ground_truth: GroundTruth, identified: frozenset[int] | set[int]) -> int:
    """Secondary-ECC correction capability this word needs right now.

    Equals the worst-case number of simultaneous post-correction errors at
    positions the repair mechanism has *not* yet profiled.
    """
    missed = ground_truth.post_correction_at_risk - frozenset(identified)
    return max_simultaneous_post_errors(ground_truth, missed)


def capability_trajectory(
    ground_truth: GroundTruth,
    identified_per_round: Sequence[frozenset[int] | set[int]],
) -> list[int]:
    """Required capability after each profiling round."""
    return [required_capability(ground_truth, identified) for identified in identified_per_round]


def rounds_to_bound_capability(
    trajectories: Sequence[Sequence[int]],
    bound: int,
    q: float = 99.0,
) -> int | None:
    """Earliest round where the q-th percentile capability is <= ``bound``.

    This is the paper's Fig 9b metric ("number of profiling rounds required
    to achieve 99th-percentile values of the maximum number of simultaneous
    post-correction errors").  Returns a 1-based round index, or ``None``
    when the bound is never reached within the simulated rounds.
    """
    if not trajectories:
        raise ValueError("need at least one trajectory")
    num_rounds = len(trajectories[0])
    for trajectory in trajectories:
        if len(trajectory) != num_rounds:
            raise ValueError("trajectories must have equal length")
    for round_index in range(num_rounds):
        values = [trajectory[round_index] for trajectory in trajectories]
        if percentile(values, q) <= bound:
            return round_index + 1
    return None
