"""Zero-copy shared tier for the analysis and engine caches.

The memo layer (:mod:`repro.analysis.memo`) and the engine caches
(:mod:`repro.experiments.runner`) are process-local: every pool worker
re-derives the sweep's codes, sampled words, ground truths, pattern
schedules, failure draws, and aliasing tables for itself.  Under a
``fork`` start method the workers inherit the parent's warm caches
copy-on-write, but a ``spawn`` worker starts cold and a pool whose
workers outlive many chunks still pays one warm-up per worker.

This module promotes those caches to a **shared tier**:

1. :func:`publish_sweep_artifacts` precomputes every per-code artifact of
   a sweep once in the parent — word contexts (with their exponential
   ground-truth enumerations), pattern schedules and their encodings,
   Bernoulli failure draws, and the full aliasing-pair tables of every
   code — and serializes them into one
   :class:`multiprocessing.shared_memory.SharedMemory` block.
2. Pool workers attach with :func:`attach_worker` (wired up as the
   :class:`~repro.experiments.backends.ProcessPoolBackend` initializer by
   ``run_sweep(..., shared_cache=True)``).  Numpy payloads are mapped as
   **read-only zero-copy views** over the shared block — no unpickling,
   no per-worker copy of the big draw matrices; object payloads (ground
   truths, pair tables) unpickle lazily on first use, at most once per
   worker.
3. Cache lookups consult the overlay on a local miss:
   :meth:`repro.analysis.memo.Memo.get` checks :func:`overlay_lookup`
   before computing, and the runner's ``lru_cache``-ed artifact builders
   do the same inside their bodies, so a worker's first touch of any
   precomputed key costs a dict hit instead of a re-derivation.

On Linux the default ``fork`` start makes step 2 a no-op: the parent
installs the *original* objects in its own overlay before the pool is
created, so children inherit the warm overlay (and the warm caches
themselves) copy-on-write, and :func:`attach_worker` detects the
inherited block by name and skips re-attaching.  The shared block earns
its keep under ``spawn`` (cold workers) and as an explicit lifetime: the
parent unlinks it after the map, bounding the sweep's residency.

Lifecycle contract: the block lives strictly within one
``run_sweep(shared_cache=True)`` call — publish before the pool exists,
attach at worker start, destroy (close + unlink) in the parent after the
map drains.  Attached workers keep their mapping alive until process
exit; POSIX keeps the segment valid for them after the unlink.

Results are bit-identical with the shared tier on or off — the overlay
stores exactly the values the caches would have computed (the tests pin
this) — so like every cache layer in this repo it is purely a
performance feature.  The socket backend is out of scope: its workers
may live on other machines, where shared memory cannot reach; they rely
on their own process-local warm-up exactly as before.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Hashable

import numpy as np

__all__ = [
    "MISS",
    "SharedCacheBlock",
    "overlay_lookup",
    "overlay_install",
    "overlay_size",
    "clear_shared_overlay",
    "publish_sweep_artifacts",
    "publish_entries",
    "attach_worker",
]

#: Sentinel returned by :func:`overlay_lookup` when a key has no shared value.
MISS = object()

#: Payload offsets are aligned so zero-copy views keep natural alignment.
_ALIGN = 16

#: key -> materialized shared value (original objects in the publishing
#: parent; zero-copy views / lazily-unpickled objects in attached workers).
_overlay: dict[Hashable, Any] = {}

#: key -> (offset, length) of a pickle payload not yet materialized.
_lazy_pickles: dict[Hashable, tuple[int, int]] = {}

#: The attached block's buffer (kept referenced so views stay valid).
_attached: shared_memory.SharedMemory | None = None

#: Name of the block this process's overlay came from (publish or attach).
_block_name: str | None = None


def overlay_lookup(key: Hashable, default: Any = MISS) -> Any:
    """The shared value for ``key``, or ``default`` when absent.

    Zero-copy array entries are resolved eagerly at attach time; pickled
    object entries materialize here on first lookup and are then cached
    in the overlay, so repeated lookups are single dict hits.
    """
    value = _overlay.get(key, MISS)
    if value is not MISS:
        return value
    location = _lazy_pickles.pop(key, None)
    if location is None or _attached is None:
        return default
    offset, length = location
    value = pickle.loads(bytes(_attached.buf[offset : offset + length]))
    _overlay[key] = value
    return value


def overlay_install(entries: dict[Hashable, Any]) -> None:
    """Install already-materialized values into this process's overlay."""
    _overlay.update(entries)


def overlay_size() -> int:
    """Number of resolvable shared keys (materialized + lazy)."""
    return len(_overlay) + len(_lazy_pickles)


def clear_shared_overlay() -> None:
    """Drop every shared entry (tests; also run on block destruction)."""
    global _attached, _block_name
    _overlay.clear()
    _lazy_pickles.clear()
    if _attached is not None:
        try:
            _attached.close()
        except BufferError:  # pragma: no cover - views still exported
            pass
        _attached = None
    _block_name = None


@dataclass
class SharedCacheBlock:
    """Handle on a published block, owned by the publishing parent."""

    name: str
    size: int
    entries: int
    _shm: shared_memory.SharedMemory

    def destroy(self) -> None:
        """Close and unlink the block (idempotent).

        Attached workers that already mapped the segment keep it alive
        until they exit; new attaches fail, which is the point — the
        block's lifetime is the map it was published for.
        """
        global _block_name
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - parent holds no views
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double destroy
            pass
        if _block_name == self.name:
            _block_name = None


def _serialize(entries: dict[Hashable, tuple[str, Any]]) -> tuple[bytes, list, int]:
    """Lay out payloads: returns (payload bytes, index, payload size).

    ``entries`` maps key -> ("array", ndarray) | ("pickle", object).
    Index rows are ``(key, kind, offset, length, dtype_str, shape)`` with
    offsets relative to the payload base.
    """
    index: list[tuple] = []
    parts: list[bytes] = []
    offset = 0
    for key, (kind, value) in entries.items():
        if kind == "array":
            data = np.ascontiguousarray(value)
            blob = data.tobytes()
            index.append((key, "array", offset, data.nbytes, data.dtype.str, data.shape))
        else:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            index.append((key, "pickle", offset, len(blob), None, None))
        parts.append(blob)
        offset += len(blob)
        padding = (-offset) % _ALIGN
        if padding:
            parts.append(b"\0" * padding)
            offset += padding
    return b"".join(parts), index, offset


def publish_entries(
    entries: dict[Hashable, tuple[str, Any]], install: bool = True
) -> SharedCacheBlock:
    """Serialize ``entries`` into a fresh shared-memory block.

    ``entries`` maps cache key -> ``("array", ndarray)`` or
    ``("pickle", object)``.  With ``install`` (the default) the original
    objects also go straight into this process's overlay, so children
    forked afterwards inherit warm values without touching the block.
    """
    global _block_name
    payload, index, _ = _serialize(entries)
    index_blob = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    header = len(index_blob).to_bytes(8, "little")
    total = len(header) + len(index_blob) + len(payload)
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    cursor = 0
    for blob in (header, index_blob, payload):
        shm.buf[cursor : cursor + len(blob)] = blob
        cursor += len(blob)
    if install:
        overlay_install({key: value for key, (_, value) in entries.items()})
        _block_name = shm.name
    return SharedCacheBlock(name=shm.name, size=total, entries=len(index), _shm=shm)


def attach_worker(name: str) -> None:
    """Pool-worker initializer: map the published block into this process.

    A ``fork`` child that already inherited the publisher's overlay (the
    block name matches) returns immediately — its values are the
    parent's own objects, shared copy-on-write.  Otherwise the block is
    attached, array entries become read-only zero-copy views over the
    shared buffer, and pickle entries are recorded for lazy
    materialization.
    """
    global _attached, _block_name
    if _block_name == name:
        return
    clear_shared_overlay()
    shm = shared_memory.SharedMemory(name=name)
    # The resource tracker would otherwise unlink the segment again when
    # this worker exits (and warn about a leak it did not cause): the
    # publishing parent owns the lifetime, attachers only borrow it.
    try:  # pragma: no cover - tracker registration varies by platform
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
    header = bytes(shm.buf[:8])
    index_length = int.from_bytes(header, "little")
    index = pickle.loads(bytes(shm.buf[8 : 8 + index_length]))
    base = 8 + index_length
    for key, kind, offset, length, dtype, shape in index:
        if kind == "array":
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=int(np.prod(shape, dtype=np.int64)),
                offset=base + offset,
            ).reshape(shape)
            view.setflags(write=False)
            _overlay[key] = view
        else:
            _lazy_pickles[key] = (base + offset, length)
    _attached = shm
    _block_name = name


def sweep_entries(config) -> dict[Hashable, tuple[str, Any]]:
    """Precompute every shareable artifact of one sweep config.

    Walks the same builders the engine uses (warming the parent's own
    caches as a side effect, which the fork path inherits directly) and
    returns the overlay entries keyed exactly as the caches look them
    up:

    * ``("swords", config, error_count)`` — the word contexts, including
      each word's enumerated :class:`~repro.analysis.atrisk.GroundTruth`
      (consumed by ``runner._words_for``);
    * ``("sched", pattern, seed, k, rounds)`` /
      ``("enc", code_key, pattern, seed, rounds)`` /
      ``("draws", word_seed, rounds, count)`` — the per-word simulation
      arrays (zero-copy views in attached workers);
    * ``("bstack", config, error_count, part)`` — the error count's
      pre-stacked batched-kernel inputs (``part`` in ``codewords`` /
      ``draws`` / ``positions``), published once per sweep so every
      (probability, profiler) cell of every worker slices the same
      zero-copy arrays (consumed by ``runner._batch_stacks_for``);
    * ``("pairs", code_key, target)`` for every codeword position of
      every sweep code — the BEEP aliasing tables, keyed as
      :mod:`repro.analysis.memo` keys them.
    """
    # Function-local imports: this module sits below memo/runner in the
    # import graph (memo consults the overlay on every miss).
    from repro.analysis.memo import _code_key, cached_aliasing_pairs
    from repro.experiments import runner
    from repro.memory.patterns import pattern_is_seeded

    entries: dict[Hashable, tuple[str, Any]] = {}
    codes = {}
    for error_count in config.error_counts:
        words = runner._words_for(config, error_count)
        entries[("swords", config, error_count)] = ("pickle", words)
        stacks = runner._batch_stacks_for(config, error_count)
        if stacks is not None:
            entries[("bstack", config, error_count, "codewords")] = ("array", stacks.codewords)
            entries[("bstack", config, error_count, "draws")] = ("array", stacks.draws)
            entries[("bstack", config, error_count, "positions")] = ("array", stacks.positions)
        for ctx in words:
            codes[_code_key(ctx.code)] = ctx.code
            schedule_seed = ctx.word_seed if pattern_is_seeded(config.pattern) else 0
            entries[("sched", config.pattern, schedule_seed, ctx.code.k, config.num_rounds)] = (
                "array",
                runner._schedule_for(
                    config.pattern, schedule_seed, ctx.code.k, config.num_rounds
                ),
            )
            entries[
                ("enc", _code_key(ctx.code), config.pattern, schedule_seed, config.num_rounds)
            ] = (
                "array",
                runner._encoded_schedule_for(
                    ctx.code, config.pattern, schedule_seed, config.num_rounds
                ),
            )
            draws_key = ("draws", ctx.word_seed, config.num_rounds, len(ctx.positions))
            entries[draws_key] = (
                "array",
                runner._draws_for(ctx.word_seed, config.num_rounds, len(ctx.positions)),
            )
    for code_key, code in codes.items():
        for target in range(code.n):
            entries[("pairs", code_key, target)] = (
                "pickle",
                cached_aliasing_pairs(code, target),
            )
    return entries


def publish_sweep_artifacts(config) -> SharedCacheBlock:
    """Precompute a sweep's shared artifacts and publish them in one block.

    The parent's caches come out warm (fork children inherit them), the
    returned block serves ``spawn``/late-joining workers, and the caller
    owns its lifetime: destroy it once the map has drained.
    """
    return publish_entries(sweep_entries(config))
