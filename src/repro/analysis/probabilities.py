"""Exact per-bit post-correction error probabilities (paper §3, Fig 4).

Given a word's at-risk profile and a concrete stored data pattern, the
probability that data bit ``i`` is erroneous after on-die ECC correction is

    P(E_i) = sum over subsets T of the *charged* at-risk bits
             P(exactly T fails) * [i in E(T)]

where ``E(T)`` is the exact post-correction error set of pattern ``T``.
With at most 8 at-risk bits per word this enumerates exactly — no
Monte-Carlo noise — which is how the library computes both the Fig 4
distributions and the Fig 10 bit error rates.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.ecc.syndrome import analyze_error_pattern
from repro.memory.cells import CellOrientation, all_true_cells
from repro.memory.error_model import WordErrorProfile

__all__ = [
    "charged_at_risk_bits",
    "per_bit_post_error_probabilities",
    "expected_unrepaired_ber",
    "expected_residual_ber_after_secondary",
    "WordBerAnalyzer",
]


def charged_at_risk_bits(
    code: SystematicCode,
    profile: WordErrorProfile,
    data: np.ndarray,
    orientation: CellOrientation | None = None,
) -> list[tuple[int, float]]:
    """(position, probability) pairs for at-risk cells that hold charge.

    Only charged cells can fail under the retention model, so these are the
    bits that participate in this data pattern's error process.
    """
    codeword = code.encode(np.asarray(data, dtype=np.uint8))
    cells = orientation or all_true_cells(code.n)
    charged = cells.charged_mask(codeword)
    return [
        (position, probability)
        for position, probability in zip(profile.positions, profile.probabilities)
        if charged[position]
    ]


def _pattern_probabilities(
    charged: list[tuple[int, float]],
) -> list[tuple[frozenset[int], float]]:
    """Probability of each exact failure subset of the charged at-risk bits."""
    positions = [p for p, _ in charged]
    probabilities = [q for _, q in charged]
    results: list[tuple[frozenset[int], float]] = []
    count = len(positions)
    for size in range(0, count + 1):
        for index_subset in combinations(range(count), size):
            probability = 1.0
            chosen = set(index_subset)
            for index in range(count):
                probability *= probabilities[index] if index in chosen else 1.0 - probabilities[index]
            if probability > 0.0:
                results.append((frozenset(positions[i] for i in index_subset), probability))
    return results


def per_bit_post_error_probabilities(
    code: SystematicCode,
    profile: WordErrorProfile,
    data: np.ndarray,
    orientation: CellOrientation | None = None,
) -> dict[int, float]:
    """Exact P(post-correction error) for every data position with P > 0."""
    charged = charged_at_risk_bits(code, profile, data, orientation)
    result: dict[int, float] = {}
    for pattern, probability in _pattern_probabilities(charged):
        if not pattern:
            continue
        outcome = analyze_error_pattern(code, pattern)
        for position in outcome.data_errors:
            result[position] = result.get(position, 0.0) + probability
    return result


def expected_unrepaired_ber(
    code: SystematicCode,
    profile: WordErrorProfile,
    data: np.ndarray,
    repaired: frozenset[int] | set[int],
    orientation: CellOrientation | None = None,
) -> float:
    """Expected fraction of this word's data bits in error after repair.

    The ideal repair mechanism masks every profiled (repaired) bit, so only
    errors at *unrepaired* positions contribute (paper Fig 10, left).
    """
    probabilities = per_bit_post_error_probabilities(code, profile, data, orientation)
    repaired_set = set(repaired)
    total = sum(q for position, q in probabilities.items() if position not in repaired_set)
    return total / code.k


def expected_residual_ber_after_secondary(
    code: SystematicCode,
    profile: WordErrorProfile,
    data: np.ndarray,
    repaired: frozenset[int] | set[int],
    secondary_capability: int = 1,
    orientation: CellOrientation | None = None,
) -> float:
    """Expected data BER after repair *and* the secondary ECC (Fig 10, right).

    For each failure pattern, the unrepaired post-correction errors form the
    word the secondary ECC sees.  If their count is within the secondary
    correction capability they are corrected (and reactively profiled);
    otherwise they escape.  Escaped errors are counted without modelling
    secondary-ECC miscorrections, a conservative lower bound the paper's
    qualitative claims do not depend on.
    """
    charged = charged_at_risk_bits(code, profile, data, orientation)
    repaired_set = set(repaired)
    expected_errors = 0.0
    for pattern, probability in _pattern_probabilities(charged):
        if not pattern:
            continue
        outcome = analyze_error_pattern(code, pattern)
        unrepaired = outcome.data_errors - repaired_set
        if len(unrepaired) > secondary_capability:
            expected_errors += probability * len(unrepaired)
    return expected_errors / code.k


class WordBerAnalyzer:
    """Cached expected-BER evaluator for one (word, data pattern) pair.

    The Fig 10 case study evaluates the word's BER at every round where the
    repair profile grows; precomputing the (probability, post-correction
    error set) table once makes each evaluation a handful of set
    operations.
    """

    def __init__(
        self,
        code: SystematicCode,
        profile: WordErrorProfile,
        data: np.ndarray,
        orientation: CellOrientation | None = None,
    ) -> None:
        self.code = code
        charged = charged_at_risk_bits(code, profile, data, orientation)
        self._outcomes: list[tuple[float, frozenset[int]]] = []
        for pattern, probability in _pattern_probabilities(charged):
            if not pattern:
                continue
            outcome = analyze_error_pattern(code, pattern)
            if outcome.data_errors:
                self._outcomes.append((probability, outcome.data_errors))

    def unrepaired_ber(self, repaired: frozenset[int] | set[int]) -> float:
        """Expected data BER with the given bits repaired (Fig 10, left)."""
        repaired_set = set(repaired)
        total = 0.0
        for probability, data_errors in self._outcomes:
            total += probability * len(data_errors - repaired_set)
        return total / self.code.k

    def residual_ber_after_secondary(
        self,
        repaired: frozenset[int] | set[int],
        secondary_capability: int = 1,
    ) -> float:
        """Expected data BER after repair plus secondary ECC (Fig 10, right)."""
        repaired_set = set(repaired)
        total = 0.0
        for probability, data_errors in self._outcomes:
            unrepaired = data_errors - repaired_set
            if len(unrepaired) > secondary_capability:
                total += probability * len(unrepaired)
        return total / self.code.k
