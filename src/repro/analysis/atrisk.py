"""Exact ground-truth at-risk-bit computation.

The paper computes "the total number of post-correction errors that are
possible for a given (1) parity-check matrix; (2) set of pre-correction
errors; and (3) set of already-discovered post-correction errors" with the
Z3 SAT solver (its §7.1.2).  For a systematic linear code the underlying
decision problems are linear over GF(2), so this module solves them exactly
with Gaussian elimination instead:

* *Realizability* — can some data pattern charge a given set of cells
  simultaneously?  Data-bit cells are free variables; a parity-bit cell's
  charge is an affine function of the data.  Feasibility of the resulting
  linear system decides the question (`repro.sat` cross-checks this with a
  CNF encoding in the test suite).
* *Ground truth* — enumerate every nonempty subset of the word's at-risk
  bits (at most ``2^|S|`` with ``|S| <= 8`` in all paper configurations),
  keep the realizable ones, and apply the exact decode semantics of
  :func:`repro.ecc.syndrome.analyze_error_pattern` to map each to its
  post-correction consequences.

Incremental solver contract
===========================

Adaptive profilers (BEEP and hybrids) solve thousands of systems per word
that share one *anchor set* and differ only in a two-position hypothesis
pair.  :class:`ChargeSystem` factors that structure out: it holds the
eliminated (linear-basis) state of a constraint set and extends it with
further constraints via :meth:`ChargeSystem.with_charged` without
re-eliminating what is already reduced.

Both solve paths return the *canonical minimally-charged* dataword: the
unique solution whose non-pivot (free) variables are all zero, where the
pivot columns are those of the lowest-bit GF(2) linear basis of the
constraint rows.  That pivot-column set depends only on the constraint
*set* — never on insertion order — so

``ChargeSystem(code, A).with_charged(B).solution_int()``

is bit-identical to ``_solve_charge_ints(code, A | B, frozenset())`` for
every split of the constraints, and cached eliminated states may be
shared freely (``tests/test_charge_system.py`` pins this property over
random SEC codes).

Kernel tiers
============

The basis rows live in one of two representations, following the
process-wide ``REPRO_GF2_TIER`` dispatch of :mod:`repro.ecc.gf2`:

* default / ``unpacked`` — rows as Python integers (bit ``i`` = data bit
  ``i``).  A CPython integer is already a word-packed bit vector, so for
  the paper's ``k = 64`` this is a single machine word per row with zero
  numpy overhead: the fastest representation for the Monte-Carlo hot
  loop.
* forced ``packed`` — rows as ``uint64`` word arrays in a
  :class:`repro.ecc.gf2w.PackedBasis`, the same elimination expressed in
  the packed kernel tier.  CI runs the full suite in this mode to pin
  that both bases produce bit-identical canonical solutions.

:func:`_solve_charge_ints` follows the same dispatch, so ground truth,
crafted-pattern solving, and realizability all ride the selected tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import combinations

import numpy as np

from repro.ecc import gf2, gf2w
from repro.ecc.linear_code import SystematicCode
from repro.ecc.syndrome import PatternOutcome, analyze_error_pattern
from repro.memory.cells import CellOrientation
from repro.memory.error_model import WordErrorProfile

__all__ = [
    "ChargeSystem",
    "is_charge_realizable",
    "solve_charge_assignment",
    "unpack_dataword",
    "GroundTruth",
    "compute_ground_truth",
    "max_simultaneous_post_errors",
    "predict_indirect_from_direct",
]

#: Enumerating subsets is exponential in the at-risk count; the paper never
#: exceeds 8 and we guard against accidental blow-ups.
_MAX_AT_RISK_FOR_ENUMERATION = 16


def _packed_basis_selected() -> bool:
    """Whether the charge solvers should use the packed word basis.

    Auto dispatch keeps the integer basis — the constraint rows span at
    most ``k`` columns and a Python int *is* a packed bit vector there —
    so only an explicit ``REPRO_GF2_TIER=packed`` switches over.
    """
    return gf2.active_tier(0) == "packed"


def _solve_charge_ints(
    code: SystematicCode,
    charged_ones: frozenset[int] | set[int],
    forced_zeros: frozenset[int] | set[int],
) -> int | None:
    """Integer-bitmask core of the charge-constraint solver.

    With all-true cells, cell ``b`` is charged iff codeword bit ``b`` is 1.
    Data-position constraints pin data bits directly; parity-position
    constraints are XOR rows over the data bits (rows of ``P``).  Forced
    bits are substituted first, then the residual (at most ``p``-row)
    system is eliminated with whole-row integer XOR.

    Returns the dataword as a bitmask (free bits 0), or ``None`` if the
    system is inconsistent.  All arithmetic stays in Python integers —
    this runs inside the Monte-Carlo hot loop.  Under a forced
    ``REPRO_GF2_TIER=packed`` the solve routes through the packed
    :class:`ChargeSystem` basis instead; both return the canonical
    minimally-charged solution (module docstring), so the dispatch is
    invisible to callers.
    """
    if _packed_basis_selected():
        return ChargeSystem(code, tuple(charged_ones), tuple(forced_zeros)).solution_int()
    k = code.k
    forced_mask = 0  # data bits with a pinned value
    forced_values = 0  # the pinned values
    parity_rows: list[tuple[int, int]] = []  # (row mask over data bits, rhs)
    for target, positions in ((1, charged_ones), (0, forced_zeros)):
        for position in positions:
            if not 0 <= position < code.n:
                raise IndexError(f"position {position} out of range [0, {code.n})")
            if position < k:
                bit = 1 << position
                forced_mask |= bit
                if target:
                    forced_values |= bit
            else:
                parity_rows.append((code.parity_row_ints[position - k], target))
    # Substitute pinned bits into the parity rows.
    reduced: list[tuple[int, int]] = []
    for row, rhs in parity_rows:
        rhs ^= (row & forced_values).bit_count() & 1
        reduced.append((row & ~forced_mask, rhs))
    # Gaussian elimination over the handful of residual rows.
    pivots: list[tuple[int, int, int]] = []  # (pivot bit, row, rhs)
    for row, rhs in reduced:
        for pivot_bit, pivot_row, pivot_rhs in pivots:
            if row & pivot_bit:
                row ^= pivot_row
                rhs ^= pivot_rhs
        if row == 0:
            if rhs:
                return None
            continue
        pivots.append((row & -row, row, rhs))
    solution = forced_values
    # Back-substitute: free variables are 0, so each pivot variable equals
    # its row's rhs once later pivots are resolved.  Process in reverse.
    for pivot_bit, row, rhs in reversed(pivots):
        value = rhs ^ ((row & solution & ~pivot_bit).bit_count() & 1)
        if value:
            solution |= pivot_bit
    return solution


class ChargeSystem:
    """Eliminated state of a charge-constraint system, extensible in place.

    Every constraint is one GF(2) row over the ``k`` data-bit variables:
    a data-position constraint is the singleton row ``{b}``, a
    parity-position constraint is the corresponding row of ``P``; the
    right-hand side is the target charge.  Rows are kept as a lowest-bit
    linear basis (each insertion is reduced against the existing pivots),
    so adding a constraint to an already-eliminated system costs one row
    reduction instead of a full re-elimination — the incremental update
    BEEP's crafted rounds rely on.

    Instances are cheap to fork (:meth:`with_charged` copies only the
    basis rows) and safe to cache: extending a fork never mutates its
    base, and the solution is canonical regardless of the order the
    constraints arrived in (see the module docstring).

    The basis representation follows the kernel-tier dispatch (module
    docstring): integer rows by default, a
    :class:`repro.ecc.gf2w.PackedBasis` under a forced packed tier.  The
    representation is fixed at construction; forks inherit it.
    """

    __slots__ = ("code", "_basis", "_infeasible")

    def __init__(
        self,
        code: SystematicCode,
        charged_ones: frozenset[int] | set[int] | tuple[int, ...] = (),
        forced_zeros: frozenset[int] | set[int] | tuple[int, ...] = (),
    ) -> None:
        self.code = code
        #: Integer tier: (pivot bit, row, rhs) triples — rows never
        #: contain an earlier pivot's bit, so reverse-order
        #: back-substitution is valid.  Packed tier: the same invariants
        #: inside a PackedBasis.
        self._basis: list[tuple[int, int, int]] | gf2w.PackedBasis
        if _packed_basis_selected():
            self._basis = gf2w.PackedBasis(code.k)
        else:
            self._basis = []
        self._infeasible = False
        self.constrain(charged_ones, 1)
        self.constrain(forced_zeros, 0)

    @property
    def feasible(self) -> bool:
        """Whether the constraints admit any dataword."""
        return not self._infeasible

    @property
    def _pivots(self) -> list[tuple[int, int, int]]:
        """The eliminated basis as (pivot bit, row, rhs) integer triples.

        For the integer tier this is the live list; for the packed tier a
        freshly-decoded snapshot.  Exposed for tests and debugging.
        """
        if isinstance(self._basis, gf2w.PackedBasis):
            return self._basis.pivot_triples()
        return self._basis

    def constrain(self, positions, target: int) -> None:
        """Pin the charge of codeword ``positions`` to ``target`` (0 or 1)."""
        code = self.code
        k = code.k
        basis = self._basis
        if isinstance(basis, gf2w.PackedBasis):
            for position in positions:
                if not 0 <= position < code.n:
                    raise IndexError(f"position {position} out of range [0, {code.n})")
                if position < k:
                    basis.insert_bit(position, target)
                else:
                    basis.insert(code.parity_row_words[position - k], target)
            self._infeasible = basis.infeasible
            return
        for position in positions:
            if not 0 <= position < code.n:
                raise IndexError(f"position {position} out of range [0, {code.n})")
            if position < k:
                self._insert(1 << position, target)
            else:
                self._insert(code.parity_row_ints[position - k], target)

    def _insert(self, row: int, rhs: int) -> None:
        """Reduce one constraint row against the basis; extend or refute."""
        if self._infeasible:
            return
        for pivot_bit, pivot_row, pivot_rhs in self._basis:
            if row & pivot_bit:
                row ^= pivot_row
                rhs ^= pivot_rhs
        if row == 0:
            if rhs:
                self._infeasible = True
            return
        self._basis.append((row & -row, row, rhs))

    def with_charged(self, positions) -> ChargeSystem:
        """A fork of this system with ``positions`` additionally charged.

        The receiver is not modified; the fork shares no mutable state, so
        one eliminated anchor-set base can serve every hypothesis pair.
        """
        fork = ChargeSystem.__new__(ChargeSystem)
        fork.code = self.code
        if isinstance(self._basis, gf2w.PackedBasis):
            fork._basis = self._basis.copy()
        else:
            fork._basis = list(self._basis)
        fork._infeasible = self._infeasible
        fork.constrain(positions, 1)
        return fork

    def solution_int(self) -> int | None:
        """The canonical minimally-charged dataword as a bitmask, or None.

        Free (non-pivot) data bits are 0; each pivot variable equals its
        row's rhs once later pivots are resolved, exactly as in
        :func:`_solve_charge_ints`.
        """
        if self._infeasible:
            return None
        if isinstance(self._basis, gf2w.PackedBasis):
            return self._basis.solution_int()
        solution = 0
        for pivot_bit, row, rhs in reversed(self._basis):
            if rhs ^ ((row & solution & ~pivot_bit).bit_count() & 1):
                solution |= pivot_bit
        return solution

    def solution(self) -> np.ndarray | None:
        """The canonical solution as a length-``k`` uint8 dataword, or None."""
        solution = self.solution_int()
        if solution is None:
            return None
        return unpack_dataword(self.code.k, solution)


def unpack_dataword(k: int, bitmask: int) -> np.ndarray:
    """Unpack an integer data bitmask into a length-``k`` uint8 array.

    Vectorized (bytes -> ``np.unpackbits``) because it runs once per
    crafted profiling round.
    """
    buffer = bitmask.to_bytes((k + 7) // 8, "little")
    return np.unpackbits(
        np.frombuffer(buffer, dtype=np.uint8), count=k, bitorder="little"
    )


def is_charge_realizable(
    code: SystematicCode,
    charged_ones: frozenset[int] | set[int],
    forced_zeros: frozenset[int] | set[int] = frozenset(),
) -> bool:
    """Does a data pattern exist charging ``charged_ones`` (and discharging
    ``forced_zeros``)?

    Assumes all-true cells, matching the paper's evaluation model.
    """
    if set(charged_ones) & set(forced_zeros):
        return False
    # Fast path: constraints touching only data bits are always satisfiable
    # because systematic data bits are free variables.
    if all(p < code.k for p in charged_ones) and all(p < code.k for p in forced_zeros):
        return True
    return _solve_charge_ints(code, charged_ones, forced_zeros) is not None


def solve_charge_assignment(
    code: SystematicCode,
    charged_ones: frozenset[int] | set[int],
    forced_zeros: frozenset[int] | set[int] = frozenset(),
) -> np.ndarray | None:
    """One dataword satisfying the charge constraints, or None.

    Free data bits are set to 0, yielding the minimally-charged pattern —
    the property BEEP's crafted patterns rely on (charge only what the test
    targets).
    """
    if set(charged_ones) & set(forced_zeros):
        return None
    solution = _solve_charge_ints(code, charged_ones, forced_zeros)
    if solution is None:
        return None
    return unpack_dataword(code.k, solution)


@dataclass(frozen=True)
class GroundTruth:
    """Exact at-risk characterization of one ECC word.

    Attributes:
        code: the on-die ECC code.
        at_risk: the word's pre-correction at-risk codeword positions.
        realizable_outcomes: outcome of every realizable nonempty error
            pattern (the word's complete post-correction behaviour).
    """

    code: SystematicCode
    at_risk: tuple[int, ...]
    realizable_outcomes: tuple[PatternOutcome, ...]

    @cached_property
    def direct_at_risk(self) -> frozenset[int]:
        """Data positions at risk of direct error: ``S`` ∩ data bits."""
        return frozenset(p for p in self.at_risk if p < self.code.k)

    @cached_property
    def parity_at_risk(self) -> frozenset[int]:
        """At-risk positions hidden in the parity bits."""
        return frozenset(p for p in self.at_risk if p >= self.code.k)

    @cached_property
    def indirect_at_risk(self) -> frozenset[int]:
        """Data positions reachable by a miscorrection of some realizable
        pattern (paper: bits at risk of indirect error)."""
        result: set[int] = set()
        for outcome in self.realizable_outcomes:
            result.update(outcome.indirect_errors)
        return frozenset(result)

    @cached_property
    def post_correction_at_risk(self) -> frozenset[int]:
        """All data positions that can be erroneous after correction."""
        result: set[int] = set()
        for outcome in self.realizable_outcomes:
            result.update(outcome.data_errors)
        return frozenset(result)

    @cached_property
    def observable_direct_at_risk(self) -> frozenset[int]:
        """Direct-risk bits that can ever appear as post-correction errors.

        A lone at-risk bit is always corrected by SEC, so it is invisible to
        any profiler that observes only post-correction data (Naive/BEEP);
        HARP's bypass path still sees it.
        """
        result: set[int] = set()
        for outcome in self.realizable_outcomes:
            result.update(outcome.direct_errors)
        return frozenset(result)


def compute_ground_truth(
    code: SystematicCode,
    at_risk: tuple[int, ...] | WordErrorProfile,
    orientation: CellOrientation | None = None,
) -> GroundTruth:
    """Enumerate all realizable error patterns of a word and their outcomes.

    Args:
        code: the on-die ECC code.
        at_risk: at-risk codeword positions (or a profile carrying them).
        orientation: cell orientation; ``None`` means all true cells (the
            paper's model).  An error pattern is realizable iff some data
            pattern *charges* every cell in it — logical 1 for true cells,
            logical 0 for anti cells.
    """
    positions = at_risk.positions if isinstance(at_risk, WordErrorProfile) else tuple(at_risk)
    if len(positions) > _MAX_AT_RISK_FOR_ENUMERATION:
        raise ValueError(
            f"{len(positions)} at-risk bits exceeds the enumeration bound "
            f"{_MAX_AT_RISK_FOR_ENUMERATION}"
        )
    outcomes: list[PatternOutcome] = []
    for size in range(1, len(positions) + 1):
        for subset in combinations(positions, size):
            pattern = frozenset(subset)
            if orientation is None:
                realizable = is_charge_realizable(code, pattern)
            else:
                mask = orientation.true_cell_mask
                charged_ones = frozenset(p for p in pattern if mask[p])
                charged_zeros = frozenset(p for p in pattern if not mask[p])
                realizable = is_charge_realizable(code, charged_ones, charged_zeros)
            if not realizable:
                continue
            outcomes.append(analyze_error_pattern(code, pattern))
    return GroundTruth(code=code, at_risk=tuple(positions), realizable_outcomes=tuple(outcomes))


def max_simultaneous_post_errors(
    ground_truth: GroundTruth,
    missed: frozenset[int] | set[int],
) -> int:
    """Worst-case count of simultaneous unrepaired post-correction errors.

    This is the paper's Fig 9 metric: with every profiled bit repaired, the
    secondary ECC must correct up to this many concurrent errors in the
    word.  ``missed`` holds the data positions *not* covered by the repair
    mechanism's profile.
    """
    missed_set = set(missed)
    worst = 0
    for outcome in ground_truth.realizable_outcomes:
        worst = max(worst, len(outcome.data_errors & missed_set))
    return worst


def predict_indirect_from_direct(
    code: SystematicCode,
    direct_bits: frozenset[int] | set[int],
    max_pattern_size: int | None = None,
) -> frozenset[int]:
    """HARP-A's precomputation (paper §6.3.1).

    Given the bits at risk of direct error identified by active profiling,
    compute every data position a combination of those bits can miscorrect
    onto.  Patterns confined to data bits are always realizable (data bits
    are free), so no feasibility check is needed.  Parity-bit at-risk
    positions are unknown to HARP-A, so indirect errors caused by patterns
    touching parity bits are *not* predicted — exactly the limitation the
    paper describes.
    """
    direct = sorted(int(b) for b in direct_bits)
    for bit in direct:
        if not 0 <= bit < code.k:
            raise IndexError(f"direct bit {bit} is not a data position")
    limit = len(direct) if max_pattern_size is None else min(max_pattern_size, len(direct))
    predicted: set[int] = set()
    for size in range(2, limit + 1):
        for subset in combinations(direct, size):
            outcome = analyze_error_pattern(code, frozenset(subset))
            predicted.update(outcome.indirect_errors)
    return frozenset(predicted)
