"""Exact analysis of on-die ECC behaviour: at-risk sets, probabilities."""

from repro.analysis.atrisk import (
    ChargeSystem,
    GroundTruth,
    compute_ground_truth,
    is_charge_realizable,
    max_simultaneous_post_errors,
    predict_indirect_from_direct,
    solve_charge_assignment,
    unpack_dataword,
)
from repro.analysis.bootstrap import censored_rounds, rounds_to_first_identification
from repro.analysis.memo import (
    CacheStats,
    beep_expansion_cache,
    cached_aliasing_pairs,
    cached_crafted_assignment,
    cached_ground_truth,
    cached_predict_indirect,
    clear_analysis_caches,
    crafted_pattern_cache,
    ground_truth_cache,
    indirect_prediction_cache,
)
from repro.analysis.combinatorics import (
    AmplificationRow,
    amplification_row,
    empirical_amplification,
)
from repro.analysis.probabilities import (
    WordBerAnalyzer,
    charged_at_risk_bits,
    expected_residual_ber_after_secondary,
    expected_unrepaired_ber,
    per_bit_post_error_probabilities,
)
from repro.analysis.secondary_ecc import (
    capability_trajectory,
    required_capability,
    rounds_to_bound_capability,
)

__all__ = [
    "ChargeSystem",
    "GroundTruth",
    "compute_ground_truth",
    "is_charge_realizable",
    "solve_charge_assignment",
    "unpack_dataword",
    "max_simultaneous_post_errors",
    "predict_indirect_from_direct",
    "CacheStats",
    "cached_aliasing_pairs",
    "cached_crafted_assignment",
    "cached_ground_truth",
    "cached_predict_indirect",
    "clear_analysis_caches",
    "beep_expansion_cache",
    "crafted_pattern_cache",
    "ground_truth_cache",
    "indirect_prediction_cache",
    "censored_rounds",
    "rounds_to_first_identification",
    "AmplificationRow",
    "amplification_row",
    "empirical_amplification",
    "WordBerAnalyzer",
    "charged_at_risk_bits",
    "per_bit_post_error_probabilities",
    "expected_unrepaired_ber",
    "expected_residual_ber_after_secondary",
    "capability_trajectory",
    "required_capability",
    "rounds_to_bound_capability",
]
