"""At-risk-bit amplification combinatorics (paper Table 2).

``n`` bits at risk of pre-correction error admit ``2^n - 1`` nonempty error
patterns; ``n`` of those are single-bit (correctable by SEC), leaving
``2^n - n - 1`` uncorrectable patterns.  In the worst case each
uncorrectable pattern miscorrects onto a distinct bit, so the bits at risk
of post-correction error number up to ``2^n - 1`` (direct ∪ indirect).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.linear_code import SystematicCode

__all__ = ["AmplificationRow", "amplification_row", "empirical_amplification"]


@dataclass(frozen=True)
class AmplificationRow:
    """One column of the paper's Table 2."""

    pre_correction_at_risk: int
    unique_error_patterns: int
    uncorrectable_error_patterns: int
    worst_case_post_correction_at_risk: int


def amplification_row(n: int, correction_capability: int = 1) -> AmplificationRow:
    """Closed-form Table 2 row for ``n`` at-risk bits.

    The ``correction_capability`` generalization counts all patterns of
    weight <= t as correctable (the paper's SEC case is t = 1).
    """
    if n < 0:
        raise ValueError("at-risk bit count must be non-negative")
    total_patterns = (1 << n) - 1
    correctable = 0
    binomial = 1  # C(n, 0)
    for weight in range(1, correction_capability + 1):
        binomial = binomial * (n - weight + 1) // weight
        correctable += binomial
    correctable = min(correctable, total_patterns)
    return AmplificationRow(
        pre_correction_at_risk=n,
        unique_error_patterns=total_patterns,
        uncorrectable_error_patterns=total_patterns - correctable,
        worst_case_post_correction_at_risk=total_patterns,
    )


def empirical_amplification(code: SystematicCode, at_risk: tuple[int, ...]) -> int:
    """Measured post-correction at-risk count for a concrete word.

    Counts data positions at risk after correction plus at-risk parity
    positions' contribution via miscorrection; bounded above by the
    worst case ``2^n - 1`` of :func:`amplification_row`.
    """
    ground_truth = compute_ground_truth(code, at_risk)
    return len(ground_truth.post_correction_at_risk)
