"""Field-calibrated chip fault topologies for fleet-scale simulation.

HARP's sweeps inject uniform-random at-risk bits into isolated ECC
words; real DRAM populations do not fail that way.  Field studies of
production fleets (the DDR4 field-fault corrigendum by Beigi et al.,
and the earlier Sridharan surveys) report a *mode mix*: most faulty
chips exhibit single-cell faults, with a long tail of row, column, and
bank faults whose footprints span many ECC words at once — and the
per-chip fault rate itself varies over orders of magnitude, which a
lognormal multiplier captures well.

This module is the population model behind
:mod:`repro.experiments.fleet`:

* :class:`ChipGeometry` — the simulated region of one chip, a grid of
  ``rows × words_per_row`` ECC words.
* :class:`FaultMixModel` — per-mode Poisson fault rates, the lognormal
  per-chip rate variability, and the per-mode at-risk densities.
  :data:`FIELD_DDR4` carries calibrated defaults.
* :func:`sample_chip_faults` — draw one chip's fault topology.  Every
  random draw derives from ``derive_seed(seed, "fleet-chip",
  chip_index, ...)``: sampling is **chip-indexed**, never draw-order
  dependent, so chip ``i``'s topology is identical no matter how many
  other chips the population holds or in what order they are sampled.
* :func:`word_profiles` — lower a topology onto the library's per-cell
  error model (:class:`~repro.memory.error_model.WordErrorProfile`),
  the same substrate every profiler simulation consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp

import numpy as np

from repro.memory.error_model import WordErrorProfile
from repro.utils.rng import derive_rng

__all__ = [
    "FAULT_MODES",
    "ChipGeometry",
    "FaultMixModel",
    "FIELD_DDR4",
    "ChipFaults",
    "sample_chip_faults",
    "word_profiles",
]

#: Fault modes of the field-study taxonomy, in sampling order.
FAULT_MODES = ("single", "row", "column", "bank")


@dataclass(frozen=True)
class ChipGeometry:
    """The simulated region of one chip: a ``rows × words_per_row`` grid.

    Word index ``w`` lives in row ``w // words_per_row`` at slot
    ``w % words_per_row``; a *column* spans one (slot, bit) position
    across every row, mirroring how a DRAM column fault pierces every
    row of its bank.
    """

    rows: int = 32
    words_per_row: int = 4

    def __post_init__(self) -> None:
        if self.rows < 1 or self.words_per_row < 1:
            raise ValueError("geometry dimensions must be positive")

    @property
    def num_words(self) -> int:
        return self.rows * self.words_per_row

    def row_of(self, word_index: int) -> int:
        return word_index // self.words_per_row


@dataclass(frozen=True)
class FaultMixModel:
    """Per-mode fault rates and per-chip variability of a population.

    ``*_rate`` fields are the *mean faults per chip* of each mode — the
    Poisson intensity before the per-chip lognormal multiplier.  The
    multiplier is ``exp(sigma·Z − sigma²/2)`` with ``Z`` standard
    normal, so its mean is exactly 1 and the rates stay calibrated
    population-wide while individual chips spread over orders of
    magnitude (the field studies' heavy per-chip variation).

    ``*_density`` fields set how much of a multi-word fault's footprint
    is actually at risk: a row fault marks each bit of its row's words
    at risk with probability ``row_density``, a column fault marks its
    (slot, bit) position at risk in each row with probability
    ``column_density``, and a bank fault sprays the whole chip at
    ``bank_density``.  A row/column fault that would otherwise be empty
    deterministically keeps one at-risk bit — a fault with no footprint
    is not a fault.
    """

    single_rate: float = 0.30
    row_rate: float = 0.09
    column_rate: float = 0.06
    bank_rate: float = 0.03
    variability_sigma: float = 1.2
    row_density: float = 0.25
    column_density: float = 0.25
    bank_density: float = 0.01

    def __post_init__(self) -> None:
        for mode in FAULT_MODES:
            if self.rate_of(mode) < 0:
                raise ValueError("fault rates must be >= 0")
        if self.variability_sigma < 0:
            raise ValueError("variability_sigma must be >= 0")
        for density in (self.row_density, self.column_density, self.bank_density):
            if not 0.0 <= density <= 1.0:
                raise ValueError("fault densities must be within [0, 1]")

    def rate_of(self, mode: str) -> float:
        """The Poisson intensity of ``mode`` (mean faults per chip)."""
        return {
            "single": self.single_rate,
            "row": self.row_rate,
            "column": self.column_rate,
            "bank": self.bank_rate,
        }[mode]


#: Calibrated defaults from the DDR4 field-study mode mix: among faulty
#: chips roughly half show single-cell faults, with row ≈ 15%, column ≈
#: 10%, and bank-level faults ≈ 5-15% — encoded here as relative Poisson
#: rates summing to an expected 0.48 faults/chip, i.e. ~38% of chips
#: exhibit at least one fault over the observation window before the
#: lognormal spread.  ``variability_sigma = 1.2`` reproduces the studies'
#: orders-of-magnitude per-chip rate variation.
FIELD_DDR4 = FaultMixModel()


@dataclass(frozen=True)
class ChipFaults:
    """One chip's sampled fault topology.

    ``word_positions`` is the lowered at-risk map: ``(word_index,
    (positions...))`` pairs sorted by word, positions sorted and unique
    within a word — ready for :func:`word_profiles`.
    """

    chip_index: int
    #: The chip's lognormal rate multiplier (mean-1 across the fleet).
    rate_scale: float
    #: Fault count per mode, aligned with :data:`FAULT_MODES`.
    mode_counts: tuple[int, ...]
    word_positions: tuple[tuple[int, tuple[int, ...]], ...]

    @property
    def total_at_risk(self) -> int:
        return sum(len(positions) for _, positions in self.word_positions)

    def count_of(self, mode: str) -> int:
        return self.mode_counts[FAULT_MODES.index(mode)]


def _place_single(rng, geometry: ChipGeometry, n: int, marks: dict) -> None:
    word = int(rng.integers(geometry.num_words))
    marks.setdefault(word, set()).add(int(rng.integers(n)))


def _place_row(rng, geometry: ChipGeometry, n: int, density: float, marks: dict) -> None:
    row = int(rng.integers(geometry.rows))
    mask = rng.random((geometry.words_per_row, n)) < density
    if not mask.any():
        mask[int(rng.integers(geometry.words_per_row)), int(rng.integers(n))] = True
    base = row * geometry.words_per_row
    for slot, bit in zip(*np.nonzero(mask)):
        marks.setdefault(base + int(slot), set()).add(int(bit))


def _place_column(rng, geometry: ChipGeometry, n: int, density: float, marks: dict) -> None:
    slot = int(rng.integers(geometry.words_per_row))
    bit = int(rng.integers(n))
    rows = rng.random(geometry.rows) < density
    if not rows.any():
        rows[int(rng.integers(geometry.rows))] = True
    for row in np.flatnonzero(rows):
        marks.setdefault(int(row) * geometry.words_per_row + slot, set()).add(bit)


def _place_bank(rng, geometry: ChipGeometry, n: int, density: float, marks: dict) -> None:
    mask = rng.random((geometry.num_words, n)) < density
    for word, bit in zip(*np.nonzero(mask)):
        marks.setdefault(int(word), set()).add(int(bit))


def sample_chip_faults(
    seed: int,
    chip_index: int,
    model: FaultMixModel,
    geometry: ChipGeometry,
    n: int,
    max_per_word: int | None = None,
) -> ChipFaults:
    """Draw chip ``chip_index``'s fault topology from the population model.

    Chip-indexed seeding: every stream derives from ``(seed,
    "fleet-chip", chip_index, ...)`` — the per-chip rate scale, each
    mode's fault count, and each individual fault's placement all get
    their own derived stream, so no draw ever shifts another chip's (or
    another fault's) topology.  Inserting or removing chips from the
    population leaves every other chip's faults bit-identical.

    ``max_per_word`` truncates a word's at-risk set to its lowest
    positions (model truncation: the profiler/ground-truth machinery is
    exponential in a word's at-risk count, and field words essentially
    never exceed a handful of at-risk cells).
    """
    sigma = model.variability_sigma
    scale_rng = derive_rng(seed, "fleet-chip", chip_index, "scale")
    rate_scale = float(exp(sigma * scale_rng.standard_normal() - sigma * sigma / 2.0))
    marks: dict[int, set[int]] = {}
    mode_counts = []
    for mode in FAULT_MODES:
        count_rng = derive_rng(seed, "fleet-chip", chip_index, "count", mode)
        count = int(count_rng.poisson(model.rate_of(mode) * rate_scale))
        mode_counts.append(count)
        for fault_index in range(count):
            rng = derive_rng(seed, "fleet-chip", chip_index, mode, fault_index)
            if mode == "single":
                _place_single(rng, geometry, n, marks)
            elif mode == "row":
                _place_row(rng, geometry, n, model.row_density, marks)
            elif mode == "column":
                _place_column(rng, geometry, n, model.column_density, marks)
            else:
                _place_bank(rng, geometry, n, model.bank_density, marks)
    lowered = []
    for word in sorted(marks):
        positions = tuple(sorted(marks[word]))
        if max_per_word is not None and len(positions) > max_per_word:
            positions = positions[:max_per_word]
        lowered.append((word, positions))
    return ChipFaults(
        chip_index=chip_index,
        rate_scale=rate_scale,
        mode_counts=tuple(mode_counts),
        word_positions=tuple(lowered),
    )


def word_profiles(
    faults: ChipFaults, probability: float
) -> list[tuple[int, WordErrorProfile]]:
    """Lower a topology onto the per-cell error model, word by word.

    Every at-risk bit errs with the same per-bit ``probability`` while
    charged — the paper's uniform model; heterogeneous probabilities
    layer on the same :class:`~repro.memory.error_model.WordErrorProfile`
    substrate.
    """
    return [
        (word, WordErrorProfile(positions, tuple(probability for _ in positions)))
        for word, positions in faults.word_positions
    ]
