"""Simulated main-memory substrate: cells, arrays, error models, chips."""

from repro.memory.address import AddressMap, LogicalAddress, PhysicalAddress
from repro.memory.array import MemoryArray
from repro.memory.batch_engine import BatchInjectionEngine, BatchObservation
from repro.memory.cells import CellOrientation, all_true_cells, alternating_cells
from repro.memory.chip import OnDieEccChip, ReadOutcome
from repro.memory.faults import (
    FAULT_MODES,
    FIELD_DDR4,
    ChipFaults,
    ChipGeometry,
    FaultMixModel,
    sample_chip_faults,
    word_profiles,
)
from repro.memory.error_model import (
    RetentionErrorModel,
    WordErrorProfile,
    normal_probability_profile,
    sample_profile_by_rate,
    sample_word_profile,
)
from repro.memory.patterns import (
    PATTERN_NAMES,
    ChargedPattern,
    CheckeredPattern,
    DataPattern,
    FixedPattern,
    RandomPattern,
    ZeroPattern,
    make_pattern,
)

__all__ = [
    "AddressMap",
    "LogicalAddress",
    "PhysicalAddress",
    "MemoryArray",
    "BatchInjectionEngine",
    "BatchObservation",
    "CellOrientation",
    "all_true_cells",
    "alternating_cells",
    "OnDieEccChip",
    "ReadOutcome",
    "FAULT_MODES",
    "FIELD_DDR4",
    "ChipFaults",
    "ChipGeometry",
    "FaultMixModel",
    "sample_chip_faults",
    "word_profiles",
    "RetentionErrorModel",
    "WordErrorProfile",
    "normal_probability_profile",
    "sample_profile_by_rate",
    "sample_word_profile",
    "DataPattern",
    "ChargedPattern",
    "CheckeredPattern",
    "RandomPattern",
    "FixedPattern",
    "ZeroPattern",
    "make_pattern",
    "PATTERN_NAMES",
]
