"""Simulated memory chip with on-die ECC (paper Fig 1 / Fig 3).

The chip encodes every write through its proprietary on-die ECC and decodes
every read, silently correcting what it can.  The memory controller never
sees the parity bits.  Two read paths exist:

* :meth:`OnDieEccChip.read` — the normal path: decode, correct, return the
  post-correction dataword.  Correction events are *not* reported (the
  defining obfuscation the paper studies).
* :meth:`OnDieEccChip.read_raw` — the decode-bypass path HARP requires
  (paper §5.2): returns the raw stored values of the *data* bits only,
  skipping correction.  Parity bits remain hidden even on this path.

Retention errors are injected at read time from each word's
:class:`~repro.memory.error_model.WordErrorProfile`: every read models one
refresh window in which each charged at-risk cell independently fails with
its per-bit probability.  Errors do not persist across reads because the
profiling methodology rewrites the pattern each round.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.memory.address import AddressMap
from repro.memory.array import MemoryArray
from repro.memory.error_model import RetentionErrorModel, WordErrorProfile

__all__ = ["OnDieEccChip", "ReadOutcome"]


class ReadOutcome:
    """A read result plus the hidden internal state (for instrumentation).

    The ``data`` attribute is all a real memory controller would see;
    ``injected_positions`` and ``corrected_positions`` exist so tests and
    the ground-truth analysis can verify behaviour ("white-box" access that
    the paper's simulator also relies on).
    """

    def __init__(
        self,
        data: np.ndarray,
        injected_positions: tuple[int, ...],
        corrected_positions: tuple[int, ...],
    ) -> None:
        self.data = data
        self.injected_positions = injected_positions
        self.corrected_positions = corrected_positions


class OnDieEccChip:
    """A memory chip whose storage is protected by proprietary on-die ECC.

    Args:
        code: the on-die ECC code (e.g. a (71, 64) SEC Hamming code).
        num_words: number of ECC words of capacity.
        error_model: retention error model used at read time.
        rng: generator driving error injection.
    """

    def __init__(
        self,
        code: SystematicCode,
        num_words: int,
        error_model: RetentionErrorModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.code = code
        self.address_map = AddressMap(code.k, code.n, num_words)
        self._array = MemoryArray(num_words, code.n)
        self._error_model = error_model or RetentionErrorModel()
        self._rng = rng or np.random.default_rng(0)
        self._profiles: dict[int, WordErrorProfile] = {}

    # ------------------------------------------------------------------
    # Error profile plumbing (simulation-side, not controller-visible)
    # ------------------------------------------------------------------

    def set_error_profile(self, word_index: int, profile: WordErrorProfile) -> None:
        """Attach the at-risk bit profile of one word (simulation input)."""
        if profile.positions and max(profile.positions) >= self.code.n:
            raise IndexError("profile position out of codeword range")
        self._profiles[word_index] = profile

    def error_profile(self, word_index: int) -> WordErrorProfile:
        """The word's at-risk profile (empty if never set)."""
        return self._profiles.get(word_index, WordErrorProfile((), ()))

    # ------------------------------------------------------------------
    # Controller-visible interface
    # ------------------------------------------------------------------

    @property
    def num_words(self) -> int:
        return self.address_map.num_words

    def write(self, word_index: int, data: np.ndarray) -> None:
        """Encode a dataword through on-die ECC and store the codeword."""
        arr = np.asarray(data, dtype=np.uint8)
        if arr.shape != (self.code.k,):
            raise ValueError(f"expected dataword of shape ({self.code.k},), got {arr.shape}")
        self._array.write(word_index, self.code.encode(arr))

    def _corrupted_read(self, word_index: int) -> tuple[np.ndarray, tuple[int, ...]]:
        stored = self._array.read(word_index)
        profile = self.error_profile(word_index)
        corrupted, failures = self._error_model.corrupt(stored, profile, self._rng)
        injected = tuple(
            position for position, failed in zip(profile.positions, failures) if failed
        )
        return corrupted, injected

    def read(self, word_index: int) -> ReadOutcome:
        """Normal read: sample retention errors, decode, correct, return data."""
        corrupted, injected = self._corrupted_read(word_index)
        result = self.code.decode(corrupted)
        return ReadOutcome(
            data=result.data,
            injected_positions=injected,
            corrected_positions=result.corrected_positions,
        )

    def read_raw(self, word_index: int) -> ReadOutcome:
        """Decode-bypass read: raw data-portion bits, no correction.

        Parity bits are *not* returned — the bypass path exposes only the
        systematically-encoded data bits (paper §5.2).
        """
        corrupted, injected = self._corrupted_read(word_index)
        return ReadOutcome(
            data=corrupted[: self.code.k],
            injected_positions=injected,
            corrected_positions=(),
        )
