"""Pre-correction error model (paper §2.4, §3.1).

Errors are modelled as the paper specifies:

1. **Bernoulli process** — each access, an at-risk bit fails independently
   of history;
2. **Isolated** — independent of errors in other bits;
3. **Data-dependent** — a (true) cell can only fail while it holds charge.

Each simulated ECC word carries a :class:`WordErrorProfile`: the set of
codeword positions at risk of pre-correction error and their per-bit failure
probabilities.  The paper's main sweep fixes the per-bit probability to one
of {0.25, 0.5, 0.75, 1.0} and the at-risk count to 2..5 per word; the
REAPER-style normal distribution of per-bit probabilities is provided as an
extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.memory.cells import CellOrientation, all_true_cells

__all__ = [
    "WordErrorProfile",
    "check_profile_positions",
    "sample_word_profile",
    "sample_profile_by_rate",
    "normal_probability_profile",
    "RetentionErrorModel",
]


@dataclass(frozen=True)
class WordErrorProfile:
    """At-risk codeword positions of one ECC word and their probabilities.

    Attributes:
        positions: sorted codeword positions at risk of pre-correction error.
        probabilities: per-position Bernoulli failure probability (while the
            cell is charged), aligned with ``positions``.
    """

    positions: tuple[int, ...]
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.positions) != len(self.probabilities):
            raise ValueError("positions and probabilities must have equal length")
        if list(self.positions) != sorted(set(self.positions)):
            raise ValueError("positions must be sorted and unique")
        for probability in self.probabilities:
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"probability {probability} outside [0, 1]")

    @property
    def count(self) -> int:
        return len(self.positions)

    def probability_of(self, position: int) -> float:
        """Failure probability of a position (0.0 if not at risk)."""
        try:
            index = self.positions.index(position)
        except ValueError:
            return 0.0
        return self.probabilities[index]

    def restricted_to(self, keep: set[int]) -> "WordErrorProfile":
        """Profile containing only the positions present in ``keep``."""
        pairs = [(p, q) for p, q in zip(self.positions, self.probabilities) if p in keep]
        return WordErrorProfile(
            positions=tuple(p for p, _ in pairs),
            probabilities=tuple(q for _, q in pairs),
        )


def check_profile_positions(profile: WordErrorProfile, n: int) -> None:
    """Validate that every at-risk position lies inside ``[0, n)``.

    Both simulation engines (the per-word runner and the batch injection
    engine) fancy-index codeword arrays with ``profile.positions``; a
    negative position would silently wrap around and an overlarge one
    would raise a cryptic downstream IndexError.  This is the single
    shared bounds check, raising one uniform message.
    """
    # Positions are sorted and unique (enforced by WordErrorProfile), so
    # checking the two ends covers every entry.
    if profile.positions and not (0 <= profile.positions[0] and profile.positions[-1] < n):
        bad = next(p for p in profile.positions if not 0 <= p < n)
        raise IndexError(f"profile position {bad} out of codeword range [0, {n})")


def sample_word_profile(
    code: SystematicCode,
    count: int,
    probability: float,
    rng: np.random.Generator,
) -> WordErrorProfile:
    """Sample ``count`` uniform-random at-risk positions over the codeword.

    This is the paper's main methodology: a fixed number of pre-correction
    at-risk bits per ECC word, placed anywhere in the codeword (data or
    parity), each failing with the same per-bit probability.
    """
    if count > code.n:
        raise ValueError(f"cannot place {count} at-risk bits in a {code.n}-bit codeword")
    positions = sorted(int(p) for p in rng.choice(code.n, size=count, replace=False))
    return WordErrorProfile(tuple(positions), tuple(probability for _ in positions))


def sample_profile_by_rate(
    code: SystematicCode,
    at_risk_rate: float,
    probability: float,
    rng: np.random.Generator,
) -> WordErrorProfile:
    """Sample at-risk positions i.i.d. with the given per-bit rate.

    Used by the Fig 10 case study where the number of at-risk bits per word
    follows a binomial distribution determined by the raw bit error rate.
    """
    if not 0.0 <= at_risk_rate <= 1.0:
        raise ValueError(f"at-risk rate {at_risk_rate} outside [0, 1]")
    mask = rng.random(code.n) < at_risk_rate
    positions = tuple(int(p) for p in np.flatnonzero(mask))
    return WordErrorProfile(positions, tuple(probability for _ in positions))


def normal_probability_profile(
    code: SystematicCode,
    count: int,
    mean: float,
    std: float,
    rng: np.random.Generator,
) -> WordErrorProfile:
    """REAPER-style profile: per-bit probabilities ~ N(mean, std), clipped.

    Prior work [147] observes normally-distributed per-bit retention error
    probabilities; this extension exercises heterogeneous-probability
    handling in the profilers.
    """
    positions = sorted(int(p) for p in rng.choice(code.n, size=count, replace=False))
    probabilities = np.clip(rng.normal(mean, std, size=count), 0.0, 1.0)
    return WordErrorProfile(tuple(positions), tuple(float(q) for q in probabilities))


class RetentionErrorModel:
    """Samples pre-correction error patterns for stored codewords.

    Args:
        orientation: cell orientation (defaults to all true cells, per the
            paper's assumption).
    """

    def __init__(self, orientation: CellOrientation | None = None) -> None:
        self._orientation = orientation

    def orientation_for(self, n: int) -> CellOrientation:
        if self._orientation is not None:
            if self._orientation.n != n:
                raise ValueError(
                    f"orientation covers {self._orientation.n} cells, codeword has {n}"
                )
            return self._orientation
        return all_true_cells(n)

    def vulnerable_mask(self, codeword: np.ndarray, profile: WordErrorProfile) -> np.ndarray:
        """Which at-risk positions can fail for the stored codeword.

        Returns a boolean array aligned with ``profile.positions``: True
        where the at-risk cell currently holds charge.  Accepts ``(n,)`` or
        ``(batch, n)`` codewords; the result has a matching leading axis.
        """
        arr = np.asarray(codeword, dtype=np.uint8)
        charged = self.orientation_for(arr.shape[-1]).charged_mask(arr)
        index = np.asarray(profile.positions, dtype=np.intp)
        return charged[..., index].astype(bool)

    def sample_failures(
        self,
        codeword: np.ndarray,
        profile: WordErrorProfile,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample which at-risk positions fail.

        Returns a boolean array aligned with ``profile.positions`` (with a
        leading batch axis if ``codeword`` has one).  A position fails iff
        it is charged and its Bernoulli draw comes up.
        """
        vulnerable = self.vulnerable_mask(codeword, profile)
        probabilities = np.asarray(profile.probabilities, dtype=float)
        draws = rng.random(vulnerable.shape) < probabilities
        return vulnerable & draws

    def corrupt(
        self,
        codeword: np.ndarray,
        profile: WordErrorProfile,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply sampled failures to codeword(s).

        Returns ``(corrupted_codewords, failure_mask)`` where the mask is
        aligned with ``profile.positions``.
        """
        arr = np.asarray(codeword, dtype=np.uint8)
        failures = self.sample_failures(arr, profile, rng)
        corrupted = arr.copy()
        if profile.count:
            index = np.asarray(profile.positions, dtype=np.intp)
            flips = np.zeros(arr.shape, dtype=np.uint8)
            flips[..., index] = failures.astype(np.uint8)
            corrupted ^= flips
        return corrupted, failures
