"""EINSim-style batch error-injection engine.

The paper's artifact builds on EINSim [2], a standalone simulator that
injects errors into batches of ECC words and decodes them in bulk.  This
module provides the equivalent: a fully vectorized, profiler-agnostic
engine that takes a population of words and produces per-round
post-correction error observations.

It is intentionally an *independent implementation* of the physics in
:mod:`repro.profiling.runner` (dense matrix decode instead of integer
syndromes, batch sampling instead of per-word draws): the test suite
cross-validates the two engines statistically, which guards the hot-path
shortcuts against silent drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.memory.cells import CellOrientation, all_true_cells
from repro.memory.error_model import WordErrorProfile, check_profile_positions

__all__ = ["BatchObservation", "BatchInjectionEngine"]


@dataclass(frozen=True)
class BatchObservation:
    """One round of batch simulation.

    Attributes:
        raw_failures: boolean ``(num_words, n)`` pre-correction error mask.
        post_data_errors: boolean ``(num_words, k)`` post-correction data
            error mask (what the controller observes on normal reads).
    """

    raw_failures: np.ndarray
    post_data_errors: np.ndarray


class BatchInjectionEngine:
    """Vectorized error injection + decoding for a population of words.

    Args:
        code: the on-die ECC code shared by all words.
        profiles: one at-risk profile per word.
        orientation: cell orientation (default: all true cells).
    """

    def __init__(
        self,
        code: SystematicCode,
        profiles: list[WordErrorProfile],
        orientation: CellOrientation | None = None,
    ) -> None:
        self.code = code
        self.profiles = profiles
        self.orientation = orientation or all_true_cells(code.n)
        self.num_words = len(profiles)
        for profile in profiles:
            check_profile_positions(profile, code.n)
        # Dense (num_words, n) probability matrix: zero where not at risk,
        # built with one fancy-indexed scatter instead of a Python loop.
        self._probability = np.zeros((self.num_words, code.n), dtype=float)
        counts = [profile.count for profile in profiles]
        total = sum(counts)
        if total:
            rows = np.repeat(np.arange(self.num_words, dtype=np.intp), counts)
            cols = np.fromiter(
                (p for profile in profiles for p in profile.positions),
                dtype=np.intp,
                count=total,
            )
            values = np.fromiter(
                (q for profile in profiles for q in profile.probabilities),
                dtype=float,
                count=total,
            )
            self._probability[rows, cols] = values

    def run_round(self, data: np.ndarray, rng: np.random.Generator) -> BatchObservation:
        """Inject one round of errors against a common dataword.

        Args:
            data: the ``(k,)`` dataword programmed into every word.
            rng: generator for this round's Bernoulli draws.
        """
        dataword = np.asarray(data, dtype=np.uint8)
        if dataword.shape != (self.code.k,):
            raise ValueError(f"expected dataword of shape ({self.code.k},)")
        codeword = self.code.encode(dataword)
        charged = self.orientation.charged_mask(codeword).astype(bool)
        draws = rng.random((self.num_words, self.code.n))
        raw_failures = charged[None, :] & (draws < self._probability)
        corrupted = np.bitwise_xor(
            np.tile(codeword, (self.num_words, 1)), raw_failures.astype(np.uint8)
        )
        decoded = self.code.decode_batch(corrupted)
        post_data_errors = decoded != dataword[None, :]
        return BatchObservation(raw_failures=raw_failures, post_data_errors=post_data_errors)

    def estimate_post_error_rates(
        self,
        data: np.ndarray,
        num_rounds: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Empirical per-(word, bit) post-correction error frequencies.

        The batch counterpart of
        :func:`repro.analysis.probabilities.per_bit_post_error_probabilities`,
        estimated by simulation instead of exact enumeration.
        """
        if num_rounds < 1:
            raise ValueError("need at least one round")
        counts = np.zeros((self.num_words, self.code.k), dtype=np.int64)
        for _ in range(num_rounds):
            counts += self.run_round(data, rng).post_data_errors
        return counts / num_rounds
