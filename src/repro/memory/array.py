"""Raw bit storage backing a simulated memory chip."""

from __future__ import annotations

import numpy as np

__all__ = ["MemoryArray"]


class MemoryArray:
    """A fixed-geometry array of raw storage bits.

    The array stores one codeword per row; it knows nothing about ECC or
    errors — it is the "error-prone data store" box of the paper's Fig 1,
    with error injection layered on top by :class:`repro.memory.chip.OnDieEccChip`.
    """

    def __init__(self, num_words: int, bits_per_word: int) -> None:
        if num_words < 0 or bits_per_word <= 0:
            raise ValueError("array geometry must be positive")
        self.num_words = num_words
        self.bits_per_word = bits_per_word
        self._storage = np.zeros((num_words, bits_per_word), dtype=np.uint8)

    def _check_index(self, word_index: int) -> int:
        if not 0 <= word_index < self.num_words:
            raise IndexError(f"word index {word_index} out of range [0, {self.num_words})")
        return word_index

    def write(self, word_index: int, bits: np.ndarray) -> None:
        """Store a full word of raw bits."""
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (self.bits_per_word,):
            raise ValueError(f"expected {(self.bits_per_word,)} bits, got shape {arr.shape}")
        self._storage[self._check_index(word_index)] = arr

    def read(self, word_index: int) -> np.ndarray:
        """Read a full word of raw bits (a copy)."""
        return self._storage[self._check_index(word_index)].copy()

    def flip(self, word_index: int, positions: tuple[int, ...] | list[int]) -> None:
        """Flip stored bits in place (error injection hook)."""
        row = self._storage[self._check_index(word_index)]
        for position in positions:
            if not 0 <= position < self.bits_per_word:
                raise IndexError(f"bit position {position} out of range")
            row[position] ^= 1

    @property
    def total_bits(self) -> int:
        return self.num_words * self.bits_per_word
