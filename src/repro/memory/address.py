"""Logical vs. physical bit addressing (paper §3.2).

The memory controller sees the *logical* address space: dataword bits only,
``k`` per ECC word.  Inside the chip, codewords occupy the *physical*
address space of ``n = k + p`` bits per word; the parity bits are invisible
outside the chip.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AddressMap", "LogicalAddress", "PhysicalAddress"]


@dataclass(frozen=True)
class LogicalAddress:
    """A data bit as seen by the memory controller."""

    word_index: int
    bit_offset: int  # 0 <= bit_offset < k


@dataclass(frozen=True)
class PhysicalAddress:
    """A storage bit inside the chip (data or parity)."""

    word_index: int
    bit_offset: int  # 0 <= bit_offset < n


class AddressMap:
    """Translates between logical and physical bit addresses.

    Args:
        k: data bits per ECC word.
        n: codeword bits per ECC word.
        num_words: number of ECC words in the chip.
    """

    def __init__(self, k: int, n: int, num_words: int) -> None:
        if not 0 < k <= n:
            raise ValueError(f"need 0 < k <= n, got k={k} n={n}")
        if num_words < 0:
            raise ValueError("num_words must be non-negative")
        self.k = k
        self.n = n
        self.num_words = num_words

    @property
    def logical_bits(self) -> int:
        return self.k * self.num_words

    @property
    def physical_bits(self) -> int:
        return self.n * self.num_words

    def logical_to_flat(self, address: LogicalAddress) -> int:
        """Flat logical bit index over the whole chip."""
        self._check_logical(address)
        return address.word_index * self.k + address.bit_offset

    def flat_to_logical(self, flat_index: int) -> LogicalAddress:
        """Inverse of :meth:`logical_to_flat`."""
        if not 0 <= flat_index < self.logical_bits:
            raise IndexError(f"flat logical index {flat_index} out of range")
        return LogicalAddress(flat_index // self.k, flat_index % self.k)

    def logical_to_physical(self, address: LogicalAddress) -> PhysicalAddress:
        """Data bits map one-to-one thanks to systematic encoding."""
        self._check_logical(address)
        return PhysicalAddress(address.word_index, address.bit_offset)

    def physical_to_logical(self, address: PhysicalAddress) -> LogicalAddress | None:
        """Inverse mapping; parity bits have no logical address (None)."""
        self._check_physical(address)
        if address.bit_offset >= self.k:
            return None
        return LogicalAddress(address.word_index, address.bit_offset)

    def is_parity(self, address: PhysicalAddress) -> bool:
        self._check_physical(address)
        return address.bit_offset >= self.k

    def _check_logical(self, address: LogicalAddress) -> None:
        if not 0 <= address.word_index < self.num_words:
            raise IndexError(f"word index {address.word_index} out of range")
        if not 0 <= address.bit_offset < self.k:
            raise IndexError(f"logical bit offset {address.bit_offset} out of range [0, {self.k})")

    def _check_physical(self, address: PhysicalAddress) -> None:
        if not 0 <= address.word_index < self.num_words:
            raise IndexError(f"word index {address.word_index} out of range")
        if not 0 <= address.bit_offset < self.n:
            raise IndexError(f"physical bit offset {address.bit_offset} out of range [0, {self.n})")
