"""Memory test data patterns (paper §7.1.2).

The paper evaluates three patterns written by the profiler each round:

* ``random`` — a uniform-random dataword, inverted every other round, with a
  fresh base pattern every two rounds (so each base and its inverse are both
  tested before moving on);
* ``charged`` (0xFF) — all ones, the worst case for true cells;
* ``checkered`` (0xAA) — alternating bits, inverted every round.

A pattern is a pure function of ``(round_index, k)`` plus a seed, so any
round's pattern can be queried out of order (the vectorized Monte-Carlo
runner materializes all rounds at once).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.bits import invert_bits
from repro.utils.rng import derive_rng

__all__ = [
    "DataPattern",
    "ChargedPattern",
    "ZeroPattern",
    "CheckeredPattern",
    "RandomPattern",
    "FixedPattern",
    "make_pattern",
    "pattern_is_seeded",
    "PATTERN_NAMES",
    "SEEDED_PATTERNS",
]


class DataPattern(ABC):
    """A deterministic per-round dataword schedule."""

    name: str = "abstract"

    @abstractmethod
    def data_for_round(self, round_index: int, k: int) -> np.ndarray:
        """The ``(k,)`` dataword the profiler writes in the given round."""

    def rounds(self, num_rounds: int, k: int) -> np.ndarray:
        """Materialize all rounds at once as a ``(num_rounds, k)`` array."""
        return np.stack([self.data_for_round(r, k) for r in range(num_rounds)])


class ChargedPattern(DataPattern):
    """All ones every round (0xFF): every true cell holds charge."""

    name = "charged"

    def data_for_round(self, round_index: int, k: int) -> np.ndarray:
        return np.ones(k, dtype=np.uint8)


class ZeroPattern(DataPattern):
    """All zeros every round (0x00): no true cell holds charge."""

    name = "zero"

    def data_for_round(self, round_index: int, k: int) -> np.ndarray:
        return np.zeros(k, dtype=np.uint8)


class CheckeredPattern(DataPattern):
    """Alternating 0/1 bits (0xAA), inverted on odd rounds."""

    name = "checkered"

    def data_for_round(self, round_index: int, k: int) -> np.ndarray:
        base = (np.arange(k) % 2).astype(np.uint8)
        return invert_bits(base) if round_index % 2 else base


class RandomPattern(DataPattern):
    """Fresh uniform-random base every two rounds; odd rounds invert.

    This is the paper's default pattern ("performs on par or better than the
    static charged and checkered patterns", §7.1.2).
    """

    name = "random"

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    def data_for_round(self, round_index: int, k: int) -> np.ndarray:
        block = round_index // 2
        rng = derive_rng(self._seed, "random-pattern", block)
        base = rng.integers(0, 2, size=k, dtype=np.uint8)
        return invert_bits(base) if round_index % 2 else base

    def rounds(self, num_rounds: int, k: int) -> np.ndarray:
        """Materialize all rounds block-wise, bit-identical to the per-round
        path: each base pattern is drawn once and its inverse filled in,
        halving the RNG derivations of the generic implementation."""
        out = np.empty((num_rounds, k), dtype=np.uint8)
        for block in range((num_rounds + 1) // 2):
            rng = derive_rng(self._seed, "random-pattern", block)
            base = rng.integers(0, 2, size=k, dtype=np.uint8)
            even = 2 * block
            out[even] = base
            if even + 1 < num_rounds:
                out[even + 1] = invert_bits(base)
        return out


class FixedPattern(DataPattern):
    """A caller-supplied constant dataword (used by tests and BEEP)."""

    name = "fixed"

    def __init__(self, data: np.ndarray) -> None:
        self._data = np.asarray(data, dtype=np.uint8).copy()

    def data_for_round(self, round_index: int, k: int) -> np.ndarray:
        if self._data.shape[0] != k:
            raise ValueError(f"fixed pattern length {self._data.shape[0]} != k={k}")
        return self._data.copy()


PATTERN_NAMES = ("random", "charged", "checkered", "zero")

#: Patterns whose schedule depends on the profiler seed.  Static patterns
#: produce identical schedules for every seed, which lets per-word caches
#: collapse to one entry per (pattern, k, rounds).
SEEDED_PATTERNS = frozenset({"random"})


def pattern_is_seeded(name: str) -> bool:
    """Whether ``name``'s schedule varies with the seed."""
    if name not in PATTERN_NAMES:
        raise ValueError(f"unknown data pattern {name!r}; expected one of {PATTERN_NAMES}")
    return name in SEEDED_PATTERNS


def make_pattern(name: str, seed: int = 0) -> DataPattern:
    """Factory over the pattern registry used by experiment configs."""
    if name == "random":
        return RandomPattern(seed)
    if name == "charged":
        return ChargedPattern()
    if name == "checkered":
        return CheckeredPattern()
    if name == "zero":
        return ZeroPattern()
    raise ValueError(f"unknown data pattern {name!r}; expected one of {PATTERN_NAMES}")
