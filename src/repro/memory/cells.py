"""DRAM cell orientation model.

DRAM arrays mix *true cells* (charged when storing logical 1) and
*anti cells* (charged when storing logical 0).  Data-retention errors
discharge cells, so a cell can only fail when it holds charge.  The paper
assumes all true cells (§7.1.2, consistent with [96, 145]); the anti-cell
support here is an extension used to stress data-dependence handling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CellOrientation", "all_true_cells", "alternating_cells", "random_cells"]


class CellOrientation:
    """Per-bit cell orientation for one codeword geometry.

    Args:
        true_cell_mask: ``(n,)`` 0/1 array; 1 marks a true cell.
    """

    def __init__(self, true_cell_mask: np.ndarray) -> None:
        mask = np.asarray(true_cell_mask, dtype=np.uint8)
        if mask.ndim != 1:
            raise ValueError("orientation mask must be one-dimensional")
        if mask.size and not np.all((mask == 0) | (mask == 1)):
            raise ValueError("orientation mask must contain only 0/1")
        self._mask = mask

    @property
    def n(self) -> int:
        return int(self._mask.shape[0])

    @property
    def true_cell_mask(self) -> np.ndarray:
        return self._mask

    def charged_mask(self, stored_bits: np.ndarray) -> np.ndarray:
        """Which cells hold charge given the stored codeword bits.

        True cells are charged when storing 1, anti cells when storing 0.
        Accepts ``(n,)`` or ``(batch, n)`` arrays.
        """
        bits = np.asarray(stored_bits, dtype=np.uint8)
        if bits.shape[-1] != self.n:
            raise ValueError(f"stored bits length {bits.shape[-1]} != n={self.n}")
        return np.where(self._mask.astype(bool), bits, 1 - bits).astype(np.uint8)

    def is_charged(self, position: int, stored_bit: int) -> bool:
        """Charge state of a single cell."""
        if self._mask[position]:
            return bool(stored_bit)
        return not stored_bit


def all_true_cells(n: int) -> CellOrientation:
    """The paper's default: every cell is a true cell."""
    return CellOrientation(np.ones(n, dtype=np.uint8))


def alternating_cells(n: int) -> CellOrientation:
    """Alternating true/anti cells (a common real-DRAM layout)."""
    return CellOrientation((np.arange(n) % 2 == 0).astype(np.uint8))


def random_cells(n: int, rng: np.random.Generator) -> CellOrientation:
    """Uniform random orientation, for property tests."""
    return CellOrientation(rng.integers(0, 2, size=n, dtype=np.uint8))
