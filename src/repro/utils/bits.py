"""Bit-vector helpers shared by the ECC and memory substrates.

Bit vectors are represented as one-dimensional ``numpy`` arrays of dtype
``uint8`` containing only 0/1 values.  Index 0 is the least-significant bit
when converting to and from Python integers, which matches the column
indexing convention used by :mod:`repro.ecc`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "popcount",
    "positions_to_mask",
    "pack_positions",
    "invert_bits",
    "as_bit_array",
]


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Convert a non-negative integer to a little-endian bit array.

    >>> int_to_bits(0b1011, 4).tolist()
    [1, 1, 0, 1]
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Convert a little-endian bit array to a Python integer.

    >>> bits_to_int(np.array([1, 1, 0, 1], dtype=np.uint8))
    11
    """
    result = 0
    for index, bit in enumerate(np.asarray(bits, dtype=np.uint8)):
        if bit:
            result |= 1 << index
    return result


def popcount(bits: np.ndarray) -> int:
    """Number of set bits in a bit array."""
    return int(np.count_nonzero(np.asarray(bits)))


def positions_to_mask(positions: Iterable[int], width: int) -> np.ndarray:
    """Build a bit array of ``width`` with ones at the given positions.

    >>> positions_to_mask([0, 3], 5).tolist()
    [1, 0, 0, 1, 0]
    """
    mask = np.zeros(width, dtype=np.uint8)
    for position in positions:
        if not 0 <= position < width:
            raise IndexError(f"position {position} out of range [0, {width})")
        mask[position] = 1
    return mask


def pack_positions(bits: np.ndarray) -> tuple[int, ...]:
    """Return the sorted positions of set bits as a tuple.

    >>> pack_positions(np.array([1, 0, 0, 1, 0], dtype=np.uint8))
    (0, 3)
    """
    return tuple(int(i) for i in np.flatnonzero(np.asarray(bits)))


def invert_bits(bits: np.ndarray) -> np.ndarray:
    """Return the bitwise complement of a 0/1 array."""
    arr = np.asarray(bits, dtype=np.uint8)
    return (1 - arr).astype(np.uint8)


def as_bit_array(values: Iterable[int] | np.ndarray) -> np.ndarray:
    """Coerce an iterable of 0/1 values into a validated uint8 bit array."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    arr = arr.astype(np.uint8)
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bit arrays may contain only 0 and 1")
    return arr
