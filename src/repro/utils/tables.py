"""Plain-text rendering of experiment results.

The paper's artifact renders matplotlib figures; offline we render the same
data as aligned text tables and series so the benchmark harness can print
the rows each exhibit reports.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or 0 < abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))).rstrip(),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def format_series(
    title: str,
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object] | None = None,
    x_label: str = "x",
) -> str:
    """Render named series (e.g. coverage-vs-round curves) as a text table."""
    names = list(series)
    if not names:
        return f"{title}\n(empty)"
    length = len(series[names[0]])
    for name in names:
        if len(series[name]) != length:
            raise ValueError(f"series {name!r} has mismatched length")
    xs: Sequence[object] = x_values if x_values is not None else list(range(length))
    if len(xs) != length:
        raise ValueError("x_values length does not match series length")
    headers = [x_label] + names
    rows = [[xs[i]] + [series[name][i] for name in names] for i in range(length)]
    return f"{title}\n" + format_table(headers, rows)
