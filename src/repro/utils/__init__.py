"""Shared utilities: bit manipulation, RNG plumbing, statistics, tables."""

from repro.utils.bits import (
    bits_to_int,
    int_to_bits,
    invert_bits,
    pack_positions,
    popcount,
    positions_to_mask,
)
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.stats import (
    Histogram,
    SummaryStats,
    empirical_cdf,
    percentile,
    summarize,
)
from repro.utils.tables import format_series, format_table

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "invert_bits",
    "pack_positions",
    "popcount",
    "positions_to_mask",
    "derive_rng",
    "derive_seed",
    "Histogram",
    "SummaryStats",
    "empirical_cdf",
    "percentile",
    "summarize",
    "format_series",
    "format_table",
]
