"""Small statistics helpers used by the analysis and experiment layers."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["percentile", "empirical_cdf", "Histogram", "SummaryStats", "summarize"]


def percentile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``values``.

    Uses the "lower" interpolation so that reported percentiles are always
    values that actually occurred, matching how the paper reports
    99th-percentile profiling rounds.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    return float(np.percentile(arr, q, method="lower"))


def empirical_cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """Return the empirical CDF of ``values`` as sorted (value, F) pairs."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return []
    n = arr.size
    return [(float(v), float(i + 1) / n) for i, v in enumerate(arr)]


@dataclass(frozen=True)
class Histogram:
    """A fixed-bin histogram over non-negative integer observations.

    Used for exhibits such as Fig 9a (histogram of the maximum number of
    simultaneous post-correction errors).
    """

    counts: tuple[int, ...]

    @classmethod
    def from_values(cls, values: Iterable[int], num_bins: int) -> "Histogram":
        counts = [0] * num_bins
        for value in values:
            if value < 0:
                raise ValueError("histogram values must be non-negative")
            bin_index = min(int(value), num_bins - 1)
            counts[bin_index] += 1
        return cls(counts=tuple(counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    def normalized(self) -> tuple[float, ...]:
        """Counts as fractions of the total (all zeros if empty)."""
        total = self.total
        if total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / total for c in self.counts)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    minimum: float
    median: float
    maximum: float
    p99: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` over a non-empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
        p99=percentile(arr, 99),
    )
