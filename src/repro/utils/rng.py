"""Deterministic RNG derivation.

All randomness in the library flows through ``numpy.random.Generator``
instances derived from a single experiment seed plus a sequence of string,
integer, or float keys.  Derivation is stable across processes and Python
versions (it uses SHA-256, not ``hash()``), so every experiment is exactly
reproducible from its seed — including work farmed out to parallel worker
processes, which re-derive identical streams from the same key paths.

Keys are hashed with a type tag (``i:``/``f:``/``s:``) so that, e.g.,
``derive_seed(1, 3)`` and ``derive_seed(1, "3")`` are distinct streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng"]

_MASK_64 = (1 << 64) - 1


def derive_seed(seed: int, *keys: int | float | str) -> int:
    """Derive a 64-bit child seed from a parent seed and a key path.

    Each key is hashed together with a type tag, so an integer key and the
    string spelling the same digits derive *different* seeds — key paths
    mixing counters and labels cannot collide across types.

    >>> derive_seed(1, "fig6", 3) == derive_seed(1, "fig6", 3)
    True
    >>> derive_seed(1, "fig6", 3) != derive_seed(1, "fig6", 4)
    True
    >>> derive_seed(1, 3) != derive_seed(1, "3")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode())
    for key in keys:
        if isinstance(key, str):
            hasher.update(b"/s:")
            hasher.update(key.encode())
        elif isinstance(key, (bool, np.bool_)):
            raise TypeError("seed keys must be int, float, or str, got bool")
        elif isinstance(key, (int, np.integer)):
            hasher.update(b"/i:")
            hasher.update(str(int(key)).encode())
        elif isinstance(key, (float, np.floating)):
            hasher.update(b"/f:")
            hasher.update(repr(float(key)).encode())
        else:
            raise TypeError(
                f"seed keys must be int, float, or str, got {type(key).__name__}"
            )
    return int.from_bytes(hasher.digest()[:8], "little") & _MASK_64


def derive_rng(seed: int, *keys: int | float | str) -> np.random.Generator:
    """Build a ``numpy.random.Generator`` for the given seed and key path."""
    return np.random.default_rng(derive_seed(seed, *keys))
