"""Deterministic RNG derivation.

All randomness in the library flows through ``numpy.random.Generator``
instances derived from a single experiment seed plus a sequence of string or
integer keys.  Derivation is stable across processes and Python versions
(it uses SHA-256, not ``hash()``), so every experiment is exactly
reproducible from its seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng"]

_MASK_64 = (1 << 64) - 1


def derive_seed(seed: int, *keys: int | str) -> int:
    """Derive a 64-bit child seed from a parent seed and a key path.

    >>> derive_seed(1, "fig6", 3) == derive_seed(1, "fig6", 3)
    True
    >>> derive_seed(1, "fig6", 3) != derive_seed(1, "fig6", 4)
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode())
    for key in keys:
        hasher.update(b"/")
        hasher.update(str(key).encode())
    return int.from_bytes(hasher.digest()[:8], "little") & _MASK_64


def derive_rng(seed: int, *keys: int | str) -> np.random.Generator:
    """Build a ``numpy.random.Generator`` for the given seed and key path."""
    return np.random.default_rng(derive_seed(seed, *keys))
