"""Streaming maintenance toolbox for JSONL shard stores: ``repro store``.

Long campaigns leave JSONL stores behind — sweep-cell stores from
``run_sweep(..., resume=PATH)`` and case-study stores from
``fig10.run(..., resume=PATH)`` — and paper-scale ones grow large:
superseded records accumulate when a cell is recomputed (duplicate keys
are resolved last-wins on load), kills leave torn tail lines, and
multi-machine campaigns produce one store per server.  This module is
the operator's toolbox for those files, exposed as
``python -m repro store PATH {summary,compact,merge}``:

* ``summary`` — one streaming pass: record counts, distinct keys,
  superseded duplicates, torn tail, config, total cell seconds — plus
  the campaign's *grid coverage*: the header config determines the full
  grid (sweep stores: error counts × probabilities × profilers;
  case-study stores: probabilities × codes × strata), so the summary
  reports cells done / cells total, an ETA extrapolated from the
  recorded per-cell seconds (single-worker compute; divide by the fleet
  size for wall-clock), the derived grid dimensions (so two stores that
  should merge but don't are diagnosed at a glance), and the quarantine
  ledger: ``quarantine`` markers not yet resolved by a completed record
  are listed as awaiting a re-run, while markers a later completed
  record *did* resolve (the backend's end-of-map auto-retry pass, or a
  targeted re-run) are reported as healed — never double-counted
  against grid coverage.  Never
  materializes a :class:`~repro.experiments.runner.SweepResult`, so it
  is safe on stores far larger than memory.
* ``compact`` — rewrite the store keeping only the *winning* record per
  key (the last append, exactly what loading would keep) and dropping
  any torn tail.  Atomic (write-then-rename) and idempotent: compacting
  a compacted store is a byte-identical no-op.
* ``merge`` — fold several stores from the same campaign config into
  one canonical file, last-input-wins across duplicate keys, mirroring
  the paper artifact's "aggregate the raw output files afterwards"
  (§A.7) without loading any of them whole.

Every operation streams records line by line through
:meth:`~repro.experiments.store.JsonlStore.iter_records`: peak memory
holds one record plus the per-key line index, never a full sweep.
Loading semantics are shared with the stores themselves — what
``compact`` keeps is exactly what ``ShardStore.load`` /
``Fig10Store.load`` would return.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.monitor import estimate_eta, format_eta, format_grid, grid_shape
from repro.experiments.store import (
    FORMAT_FIG10,
    FORMAT_FLEET,
    FORMAT_V1,
    FORMAT_V2,
    JsonlStore,
)

__all__ = [
    "StoreSummary",
    "summarize",
    "render_summary",
    "compact",
    "merge",
    "build_store_parser",
    "store_main",
]

#: Record key kinds understood by the toolbox.
_STORE_FORMATS = (FORMAT_V2, FORMAT_FIG10, FORMAT_FLEET)


def _record_key(path: Path, number: int, record: dict) -> tuple:
    """Identity of a record for last-wins dedup (headers collapse to one)."""
    kind = record.get("kind")
    if kind == "header":
        return ("header",)
    if kind == "cell":
        return (
            "cell",
            int(record["error_count"]),
            float(record["probability"]),
            str(record["profiler"]),
        )
    if kind == "fig10":
        return (
            "fig10",
            float(record["probability"]),
            int(record["code_index"]),
            int(record["count"]),
        )
    if kind == "fleet":
        return (
            "fleet",
            int(record["start"]),
            int(record["stop"]),
            int(record["slice_index"]),
            int(record["num_slices"]),
        )
    if kind == "quarantine":
        # The marker carries exactly the key fields of the record it
        # stands in for; prefixing the resolved key keeps it distinct
        # from (and mappable onto) the completed record's key.
        if "error_count" in record:
            return (
                "quarantine",
                "cell",
                int(record["error_count"]),
                float(record["probability"]),
                str(record["profiler"]),
            )
        if "start" in record:
            return (
                "quarantine",
                "fleet",
                int(record["start"]),
                int(record["stop"]),
                int(record["slice_index"]),
                int(record["num_slices"]),
            )
        return (
            "quarantine",
            "fig10",
            float(record["probability"]),
            int(record["code_index"]),
            int(record["count"]),
        )
    if record.get("format") in (FORMAT_V1, FORMAT_V2) and "cells" in record:
        raise ValueError(
            f"{path} is a sweep_to_json document, not a JSONL shard store; "
            "load it with sweep_from_json instead"
        )
    raise ValueError(f"{path}: unknown shard record on line {number + 1}")


def _check_header(path: Path, record: dict) -> tuple[str, dict | None]:
    """Validate a header record; return ``(format, config dict or None)``."""
    store_format = record.get("format")
    if store_format not in _STORE_FORMATS:
        raise ValueError(
            f"{path}: unknown store format {store_format!r} "
            f"(expected one of {', '.join(_STORE_FORMATS)})"
        )
    return store_format, record.get("config")


@dataclass
class StoreSummary:
    """One streaming pass over a store, without loading full results."""

    path: str
    size_bytes: int
    format: str | None
    config: dict | None
    records: int
    #: Distinct keys per record kind (``cell`` / ``fig10``).
    distinct: dict = field(default_factory=dict)
    #: Records superseded by a later append of the same key.
    superseded: int = 0
    #: Sum of per-cell wall-clock seconds recorded by the engine.
    total_seconds: float = 0.0
    #: Monte-Carlo words across intact cell records (sweep stores).
    words: int = 0
    torn_tail: bool = False
    #: Grid dimensions derived from the header config (human rendition),
    #: e.g. ``"4 error counts × 4 probabilities × 5 profilers = 80 cells"``.
    grid: str | None = None
    #: Full grid size derived from the header config.
    cells_total: int | None = None
    #: Remaining single-worker compute seconds, extrapolated from the
    #: recorded per-cell seconds (``None`` when there is no rate yet).
    eta_seconds: float | None = None
    #: Shard keys quarantined by a ``--continue-past-quarantine`` run
    #: and not yet resolved by a completed record of the same key.
    quarantined: list = field(default_factory=list)
    #: Shard keys whose quarantine marker *was* resolved by a later
    #: completed record (the end-of-map auto-retry pass, or a targeted
    #: re-run): reported as healed, never counted against coverage.
    healed: list = field(default_factory=list)
    #: Completed *work units* when records and units differ — fleet
    #: stores count a chip done only once every slice of its shard
    #: group is present (``None`` elsewhere: records are the units).
    units_done: int | None = None

    @property
    def cells_done(self) -> int:
        """Distinct completed work units, regardless of record kind."""
        if self.units_done is not None:
            return self.units_done
        return sum(self.distinct.get(kind, 0) for kind in ("cell", "fig10", "fleet"))


def summarize(path: str | os.PathLike) -> StoreSummary:
    """Stream one pass over ``path`` and tally its records.

    Raises ``FileNotFoundError`` for a missing file and ``ValueError``
    for mid-file corruption or a non-store JSON file, mirroring what a
    resume against the same path would do.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no shard store at {path}")
    summary = StoreSummary(
        path=str(path),
        size_bytes=path.stat().st_size,
        format=None,
        config=None,
        records=0,
    )
    # Winning (last-appended) seconds/words per key, exactly what
    # loading would count; one streaming pass, O(distinct keys) memory.
    winning: dict[tuple, tuple[float, int]] = {}
    markers: set[tuple] = set()
    for number, record in JsonlStore(path).iter_records(include_torn=True):
        if record is None:
            summary.torn_tail = True
            continue
        key = _record_key(path, number, record)
        summary.records += 1
        if key == ("header",):
            summary.format, summary.config = _check_header(path, record)
            continue
        if key[0] == "quarantine":
            if key in markers:
                summary.superseded += 1
            markers.add(key)
            continue
        if key in winning:
            summary.superseded += 1
        winning[key] = (
            float(record.get("seconds", 0.0)),
            len(record.get("words", ())),
        )
    for key, (seconds, words) in winning.items():
        summary.distinct[key[0]] = summary.distinct.get(key[0], 0) + 1
        summary.total_seconds += seconds
        summary.words += words
    # A quarantine marker is live only until a completed record of the
    # same key lands (the auto-retry pass or a targeted re-run resolved
    # it); resolved markers are reported as healed, not quarantined —
    # and never double-counted against grid coverage (the completed
    # record already counts the cell done exactly once).
    summary.quarantined = sorted(key[2:] for key in markers if key[1:] not in winning)
    summary.healed = sorted(key[2:] for key in markers if key[1:] in winning)
    if any(key[0] == "fleet" for key in winning):
        # A fleet record is a shard, not a chip: a range shard completes
        # its whole chip span, but a heavy chip is done only when every
        # slice of its (start, stop, num_slices) group has landed.
        groups: dict[tuple, set] = {}
        for key in winning:
            if key[0] == "fleet":
                groups.setdefault((key[1], key[2], key[4]), set()).add(key[3])
        summary.units_done = sum(
            stop - start
            for (start, stop, num_slices), slices in groups.items()
            if len(slices) == num_slices
        )
    shape = grid_shape(summary.config)
    if shape is not None:
        dims, summary.cells_total = shape
        summary.grid = format_grid(dims, summary.cells_total)
        summary.eta_seconds = estimate_eta(
            summary.cells_done, summary.cells_total, summary.total_seconds
        )
    return summary


def render_summary(summary: StoreSummary) -> str:
    """Operator-facing text rendition of a :class:`StoreSummary`."""
    lines = [f"store    {summary.path} ({summary.size_bytes} bytes)"]
    lines.append(f"format   {summary.format or '(no header)'}")
    if summary.config:
        knobs = ", ".join(f"{k}={v}" for k, v in sorted(summary.config.items()))
        lines.append(f"config   {knobs}")
    else:
        lines.append("config   (none recorded)")
    labels = {"cell": "sweep cells", "fig10": "fig10 shards", "fleet": "fleet shards"}
    for kind in ("cell", "fig10", "fleet"):
        if kind in summary.distinct:
            lines.append(f"records  {summary.distinct[kind]} {labels[kind]}")
    if not summary.distinct:
        lines.append("records  0 (header only)")
    if summary.grid:
        lines.append(f"grid     {summary.grid}")
    if summary.cells_total:
        done = summary.cells_done
        share = 100.0 * done / summary.cells_total
        progress = f"progress {done}/{summary.cells_total} cells done ({share:.1f}%)"
        if done < summary.cells_total and summary.eta_seconds is not None:
            progress += (
                f" · eta ~{format_eta(summary.eta_seconds)} of single-worker "
                "compute (divide by your worker count)"
            )
        lines.append(progress)
    if summary.quarantined:
        keys = ", ".join(str(tuple(key)) for key in summary.quarantined)
        lines.append(
            f"quarantine {len(summary.quarantined)} shard(s) awaiting a targeted "
            f"re-run (rerun the same command with this --resume path): {keys}"
        )
    if summary.healed:
        keys = ", ".join(str(tuple(key)) for key in summary.healed)
        lines.append(
            f"healed   {len(summary.healed)} shard(s) resolved since being "
            f"quarantined (auto-retry or targeted re-run; compact retires "
            f"the markers): {keys}"
        )
    if summary.superseded:
        lines.append(f"stale    {summary.superseded} superseded record(s) — run compact")
    if summary.words:
        lines.append(f"words    {summary.words} Monte-Carlo words")
    if summary.total_seconds:
        lines.append(f"cpu      {summary.total_seconds:.2f} cell-seconds recorded")
    if summary.torn_tail:
        lines.append("tail     torn final line (interrupted append; compact trims it)")
    return "\n".join(lines)


@dataclass
class CompactStats:
    """What :func:`compact` kept and dropped."""

    path: str
    output: str
    kept: int
    superseded: int
    torn_tail: bool


def compact(path: str | os.PathLike, output: str | os.PathLike | None = None) -> CompactStats:
    """Rewrite ``path`` keeping one winning record per key.

    Pass 1 streams the store to find each key's last occurrence (the
    record loading would keep); pass 2 streams again, writing winners in
    their original order to a temporary file that is fsynced and
    atomically renamed over the destination.  Torn tail lines never
    reach the output.  Compacting twice is byte-identical (idempotent):
    records are re-emitted as canonical ``json.dumps`` lines.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no shard store at {path}")
    destination = Path(output) if output is not None else path
    winners: dict[tuple, int] = {}
    dropped = 0
    torn = False
    for number, record in JsonlStore(path).iter_records(include_torn=True):
        if record is None:
            torn = True
            continue
        key = _record_key(path, number, record)
        if key == ("header",):
            _check_header(path, record)
            # The header is identity, not data: keep the first.
            if key in winners:
                dropped += 1
                continue
            winners[key] = number
            continue
        if key in winners:
            dropped += 1
        winners[key] = number
    # A quarantine marker whose shard later completed is resolved —
    # the targeted re-run happened — so compaction retires it; markers
    # still awaiting their re-run survive the rewrite.
    for key in [k for k in winners if k[0] == "quarantine" and k[1:] in winners]:
        del winners[key]
        dropped += 1
    temporary = destination.with_name(destination.name + ".compact-tmp")
    kept = 0
    with open(temporary, "w", encoding="utf-8") as handle:
        for number, record in JsonlStore(path).iter_records():
            key = _record_key(path, number, record)
            if winners.get(key) != number:
                continue
            handle.write(json.dumps(record) + "\n")
            kept += 1
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, destination)
    return CompactStats(
        path=str(path),
        output=str(destination),
        kept=kept,
        superseded=dropped,
        torn_tail=torn,
    )


@dataclass
class MergeStats:
    """What :func:`merge` combined."""

    inputs: list[str]
    output: str
    kept: int
    superseded: int
    torn_tails: int


def merge(
    paths: list[str | os.PathLike], output: str | os.PathLike
) -> MergeStats:
    """Fold several stores of one campaign into a canonical ``output``.

    Inputs must share a format and (when recorded) an identical config —
    stores from different experiments refuse to mix, exactly as a
    ``--resume`` against the wrong store would.  Records dedupe
    last-input-wins (within an input, last line wins), matching the
    in-file semantics, and the output is written atomically, so
    ``output`` may safely be one of the inputs.
    """
    paths = [Path(p) for p in paths]
    if len(paths) < 2:
        raise ValueError("merge needs at least two stores")
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no shard store at {path}")
    output = Path(output)
    merged_format: str | None = None
    merged_config: dict | None = None
    winners: dict[tuple, tuple[int, int]] = {}
    dropped = 0
    torn_tails = 0
    for file_index, path in enumerate(paths):
        for number, record in JsonlStore(path).iter_records(include_torn=True):
            if record is None:
                torn_tails += 1
                continue
            key = _record_key(path, number, record)
            if key == ("header",):
                store_format, config = _check_header(path, record)
                if merged_format is not None and store_format != merged_format:
                    raise ValueError(
                        f"cannot merge {path} ({store_format}) into a "
                        f"{merged_format} store"
                    )
                merged_format = store_format
                if config is not None:
                    if merged_config is not None and merged_config != config:
                        raise ValueError(
                            f"{path} was written by a different config than "
                            "earlier inputs; refusing to mix campaigns"
                        )
                    merged_config = config
                continue
            if key in winners:
                dropped += 1
            winners[key] = (file_index, number)
    if merged_format is None:
        raise ValueError("none of the inputs carries a store header")
    # Same marker semantics as compact: a quarantine marker resolved by
    # a completed record in *any* input (the targeted-re-run-on-another-
    # machine workflow) does not survive the merge.
    for key in [k for k in winners if k[0] == "quarantine" and k[1:] in winners]:
        del winners[key]
        dropped += 1
    temporary = output.with_name(output.name + ".merge-tmp")
    kept = 0
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"format": merged_format, "kind": "header", "config": merged_config}
            )
            + "\n"
        )
        for file_index, path in enumerate(paths):
            for number, record in JsonlStore(path).iter_records():
                key = _record_key(path, number, record)
                if key == ("header",):
                    continue
                if winners.get(key) != (file_index, number):
                    continue
                handle.write(json.dumps(record) + "\n")
                kept += 1
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, output)
    return MergeStats(
        inputs=[str(p) for p in paths],
        output=str(output),
        kept=kept,
        superseded=dropped,
        torn_tails=torn_tails,
    )


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Summarize, compact, or merge JSONL shard stores "
        "written by --resume, streaming record by record (safe on stores "
        "larger than memory).",
    )
    parser.add_argument("path", help="shard store JSONL file")
    parser.add_argument(
        "action",
        choices=["summary", "compact", "merge"],
        help="summary: streaming report; compact: drop superseded records "
        "and torn tails in place (or into --output); merge: fold PATH and "
        "every MORE store into --output",
    )
    parser.add_argument(
        "more",
        nargs="*",
        metavar="MORE",
        help="additional stores to merge (merge only)",
    )
    parser.add_argument(
        "--output",
        "-o",
        metavar="PATH",
        default=None,
        help="destination file (required for merge; compact defaults to "
        "rewriting in place)",
    )
    return parser


def store_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro store ...``."""
    args = build_store_parser().parse_args(argv)
    try:
        if args.action == "summary":
            if args.more:
                raise ValueError("summary takes exactly one store")
            print(render_summary(summarize(args.path)))
        elif args.action == "compact":
            if args.more:
                raise ValueError("compact takes exactly one store")
            stats = compact(args.path, output=args.output)
            trimmed = ", torn tail trimmed" if stats.torn_tail else ""
            print(
                f"compacted {stats.path} -> {stats.output}: kept {stats.kept} "
                f"record(s), dropped {stats.superseded} superseded{trimmed}"
            )
        else:  # merge
            if not args.more:
                raise ValueError("merge needs at least two stores: PATH MORE...")
            if args.output is None:
                raise ValueError("merge requires --output PATH")
            stats = merge([args.path, *args.more], args.output)
            print(
                f"merged {len(stats.inputs)} store(s) -> {stats.output}: kept "
                f"{stats.kept} record(s), dropped {stats.superseded} superseded "
                f"({stats.torn_tails} torn tail(s) trimmed)"
            )
    except (ValueError, OSError) as error:
        print(f"repro store: {error}", file=sys.stderr)
        return 1
    return 0
