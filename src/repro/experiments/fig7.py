"""Fig 7: bootstrapping — rounds until the first direct error is identified.

For every simulated ECC word, the round at which the profiler first
identifies any direct-risk bit; words that never do are censored at the
simulated round count, matching the paper's conservative plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import percent, profiler_order
from repro.experiments.runner import SweepResult
from repro.utils.tables import format_table

__all__ = ["Fig7Result", "from_sweep", "render"]

FIG7_PROFILERS = ("Naive", "BEEP", "HARP-U")


@dataclass(frozen=True)
class Fig7Result:
    """First-direct-identification round samples per sweep cell."""

    error_counts: tuple[int, ...]
    probabilities: tuple[float, ...]
    profilers: tuple[str, ...]
    num_rounds: int
    rounds: dict[tuple[int, float, str], tuple[int, ...]]

    def median(self, error_count: int, probability: float, profiler: str) -> float:
        return float(np.median(self.rounds[(error_count, probability, profiler)]))

    def censored_fraction(self, error_count: int, probability: float, profiler: str) -> float:
        """Fraction of words that never identified a direct error."""
        samples = self.rounds[(error_count, probability, profiler)]
        return sum(1 for value in samples if value >= self.num_rounds) / len(samples)


def from_sweep(sweep: SweepResult, profilers: tuple[str, ...] = FIG7_PROFILERS) -> Fig7Result:
    """Extract the bootstrapping distribution from a sweep."""
    config = sweep.config
    selected = tuple(name for name in profilers if name in config.profilers)
    rounds: dict[tuple[int, float, str], tuple[int, ...]] = {}
    for error_count in config.error_counts:
        for probability in config.probabilities:
            for name in selected:
                cell = sweep.cell(error_count, probability, name)
                rounds[(error_count, probability, name)] = tuple(
                    word.first_direct_round for word in cell.words
                )
    return Fig7Result(
        error_counts=tuple(config.error_counts),
        probabilities=tuple(config.probabilities),
        profilers=selected,
        num_rounds=config.num_rounds,
        rounds=rounds,
    )


def render(result: Fig7Result) -> str:
    """Text rendition: median / p90 / censored fraction per cell."""
    headers = ["profiler", "pre-corr errors", "per-bit P", "median round", "p90", "never found"]
    rows = []
    for name in profiler_order(result.profilers):
        for error_count in result.error_counts:
            for probability in result.probabilities:
                samples = result.rounds[(error_count, probability, name)]
                rows.append(
                    [
                        name,
                        error_count,
                        percent(probability),
                        float(np.median(samples)),
                        float(np.percentile(samples, 90)),
                        f"{result.censored_fraction(error_count, probability, name):.0%}",
                    ]
                )
    return "Fig 7: rounds spent bootstrapping (first direct-error identification)\n" + format_table(
        headers, rows
    )
