"""Experiment harness: one module per paper exhibit plus shared plumbing."""

from repro.experiments import (
    ext_code_length,
    ext_dec,
    ext_heterogeneous,
    ext_interleaving,
    ext_patterns,
    ext_rank,
    ext_scrubbing,
    fig2,
    fig4,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    headline,
    table2,
)
from repro.experiments.config import BENCH, FULL, UNIT, CaseStudyConfig, SweepConfig, scaled
from repro.experiments.runner import SweepResult, WordMetrics, run_sweep
from repro.experiments.store import merge_sweeps, sweep_from_json, sweep_to_json

__all__ = [
    "ext_code_length",
    "ext_dec",
    "ext_heterogeneous",
    "ext_interleaving",
    "ext_patterns",
    "ext_rank",
    "ext_scrubbing",
    "fig2",
    "table2",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "headline",
    "SweepConfig",
    "CaseStudyConfig",
    "UNIT",
    "BENCH",
    "FULL",
    "scaled",
    "run_sweep",
    "SweepResult",
    "WordMetrics",
    "merge_sweeps",
    "sweep_to_json",
    "sweep_from_json",
]
