"""Extension: observed escape rates per rank layout (paper §6.3).

Where :mod:`repro.experiments.ext_interleaving` computes the *worst-case*
capability each layout needs, this experiment measures what actually
happens: a two-chip rank operates under each layout with a SEC secondary
ECC, and the escape rate (reads with uncorrectable errors) is counted.
Expected: aligned and split layouts are escape-free after HARP's active
phase; the interleaved layout escapes whenever both chips miscorrect into
the same secondary word simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.atrisk import compute_ground_truth
from repro.controller.layout import aligned_layout, interleaved_layout, split_layout
from repro.controller.rank import MemoryRank, RankController
from repro.controller.secondary_ecc import SecondaryEcc
from repro.ecc.hamming import random_sec_code
from repro.memory.chip import OnDieEccChip
from repro.memory.error_model import sample_word_profile
from repro.repair.profile_store import ErrorProfile
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

__all__ = ["RankEscapeResult", "run", "render"]


@dataclass(frozen=True)
class RankEscapeResult:
    """Escape statistics per (layout, secondary capability)."""

    num_rows: int
    reads_per_row: int
    probability: float
    #: (layout label, capability) -> (escaped secondary words, reads,
    #: reactively identified bits)
    rows: dict[tuple[str, int], tuple[int, int, int]]


def _build_rank(k: int, num_rows: int, at_risk: int, probability: float, seed: int):
    rng = derive_rng(seed, "ext-rank")
    code = random_sec_code(k, rng)
    chips = []
    stores = []
    for chip_index in range(2):
        chip = OnDieEccChip(code, num_words=num_rows, rng=derive_rng(seed, "chip", chip_index))
        store = ErrorProfile()
        for row in range(num_rows):
            profile = sample_word_profile(code, at_risk, probability, rng)
            chip.set_error_profile(row, profile)
            truth = compute_ground_truth(code, profile)
            # HARP active phase complete for every word.
            store.mark_many(row, truth.direct_at_risk)
        chips.append(chip)
        stores.append(store)
    return code, MemoryRank(chips), stores


def run(
    k: int = 64,
    num_rows: int = 8,
    at_risk: int = 4,
    probability: float = 0.75,
    reads_per_row: int = 50,
    seed: int = 2021,
) -> RankEscapeResult:
    """Operate a two-chip rank under each layout and count escapes."""
    results: dict[tuple[str, int], tuple[int, int, int]] = {}
    layout_builders = {
        "aligned": lambda code: aligned_layout(2, code.k),
        "split x2": lambda code: split_layout(2, code.k, 2),
        "interleaved x2": lambda code: interleaved_layout(2, code.k, 2),
    }
    for label, builder in layout_builders.items():
        for capability in (1, 2):
            # Fresh rank per run so reactive identification cannot leak
            # between configurations.
            code, rank, stores = _build_rank(k, num_rows, at_risk, probability, seed)
            controller = RankController(
                rank,
                builder(code),
                SecondaryEcc(capability),
                profiles=[ErrorProfile.from_json(s.to_json()) for s in stores],
            )
            report = controller.operate(reads_per_row=reads_per_row)
            results[(label, capability)] = (
                report.escaped_secondary_words,
                report.reads,
                report.identified_bits,
            )
    return RankEscapeResult(
        num_rows=num_rows,
        reads_per_row=reads_per_row,
        probability=probability,
        rows=results,
    )


def render(result: RankEscapeResult) -> str:
    headers = [
        "layout",
        "secondary capability",
        "escaped secondary words",
        "reads",
        "reactively identified bits",
    ]
    body = [
        [label, capability, escaped, reads, identified]
        for (label, capability), (escaped, reads, identified) in sorted(result.rows.items())
    ]
    return (
        f"Rank-layout escapes (2 chips, p={result.probability:.0%}, "
        f"HARP active phase done)\n" + format_table(headers, body)
    )
