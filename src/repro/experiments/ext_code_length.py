"""Extension: ECC word length (paper §7.1.2).

The paper presents all data for (71, 64) codes and notes "we verified that
our observations hold for longer (136, 128) codes."  This extension
reruns the direct-coverage comparison at both geometries and reports the
per-geometry final coverage and HARP's rounds-to-full-coverage, verifying
the observation transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.config import SweepConfig
from repro.experiments.fig6 import coverage_curve
from repro.experiments.runner import run_sweep
from repro.utils.tables import format_table

__all__ = ["CodeLengthResult", "run", "render", "PAPER_GEOMETRIES"]

#: (label, dataword length): the two on-die ECC geometries the paper cites.
PAPER_GEOMETRIES = (("(71,64)", 64), ("(136,128)", 128))


@dataclass(frozen=True)
class CodeLengthResult:
    """Coverage statistics per code geometry."""

    num_rounds: int
    #: (geometry label, profiler) -> (final coverage, rounds to full or None)
    rows: dict[tuple[str, str], tuple[float, int | None]]


def run(
    base_config: SweepConfig | None = None,
    geometries: tuple[tuple[str, int], ...] = PAPER_GEOMETRIES,
    jobs: int | None = None,
    backend=None,
) -> CodeLengthResult:
    """Run the direct-coverage cell at each geometry.

    ``jobs`` and ``backend`` are forwarded to
    :func:`~repro.experiments.runner.run_sweep` (execution backend per
    sweep; results are bit-identical for every choice).
    """
    config = base_config or SweepConfig(
        num_codes=3,
        words_per_code=6,
        num_rounds=64,
        error_counts=(4,),
        probabilities=(0.5,),
        profilers=("Naive", "BEEP", "HARP-U"),
    )
    rows: dict[tuple[str, str], tuple[float, int | None]] = {}
    for label, k in geometries:
        sweep = run_sweep(replace(config, k=k), jobs=jobs, backend=backend)
        for profiler in config.profilers:
            curve = coverage_curve(
                sweep, config.error_counts[0], config.probabilities[0], profiler
            )
            full_round = next(
                (index + 1 for index, value in enumerate(curve) if value >= 1.0), None
            )
            rows[(label, profiler)] = (curve[-1], full_round)
    return CodeLengthResult(num_rounds=config.num_rounds, rows=rows)


def render(result: CodeLengthResult) -> str:
    headers = ["geometry", "profiler", "final direct coverage", "rounds to full"]
    body = []
    for (label, profiler), (coverage, full_round) in sorted(result.rows.items()):
        body.append(
            [
                label,
                profiler,
                f"{coverage:.3f}",
                f">{result.num_rounds}" if full_round is None else full_round,
            ]
        )
    return (
        "Code-length extension: observations transfer from (71,64) to (136,128)\n"
        + format_table(headers, body)
    )
