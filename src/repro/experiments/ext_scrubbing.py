"""Extension: reactive-profiling identification latency under scrubbing.

Quantifies §2.3.2/§2.4: after HARP's active phase, how many scrub passes
does the secondary ECC need to identify the remaining indirect-risk bits?
An indirect error surfaces only when its triggering pre-correction
combination occurs, so latency grows sharply as the per-bit probability
drops — the reason low-probability errors are "left to reactive profiling"
rather than hunted actively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.atrisk import compute_ground_truth
from repro.controller.scrubber import Scrubber
from repro.ecc.hamming import random_sec_code
from repro.memory.chip import OnDieEccChip
from repro.memory.error_model import sample_word_profile
from repro.repair.profile_store import ErrorProfile
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

__all__ = ["ScrubLatencyResult", "run", "render"]


@dataclass(frozen=True)
class ScrubLatencyResult:
    """Identification latency statistics per per-bit probability."""

    num_words: int
    at_risk_per_word: int
    max_passes: int
    #: probability -> (identified fraction, median latency in passes among
    #: identified bits, escaped reads)
    rows: dict[float, tuple[float, float, int]]


def run(
    probabilities: tuple[float, ...] = (0.75, 0.5, 0.25, 0.1),
    num_words: int = 12,
    at_risk_per_word: int = 4,
    max_passes: int = 128,
    seed: int = 2021,
) -> ScrubLatencyResult:
    """Scrub a HARP-profiled chip at several per-bit probabilities."""
    rows: dict[float, tuple[float, float, int]] = {}
    for probability in probabilities:
        rng = derive_rng(seed, "ext-scrub", probability)
        code = random_sec_code(64, rng)
        chip = OnDieEccChip(code, num_words=num_words, rng=rng)
        store = ErrorProfile()
        indirect_total = 0
        for word_index in range(num_words):
            profile = sample_word_profile(code, at_risk_per_word, probability, rng)
            chip.set_error_profile(word_index, profile)
            truth = compute_ground_truth(code, profile)
            # HARP active phase complete: direct-risk bits repaired.
            store.mark_many(word_index, truth.direct_at_risk)
            indirect_total += len(truth.indirect_at_risk - truth.direct_at_risk)
        report = Scrubber(chip, profile=store).run(num_passes=max_passes)
        latencies = sorted(report.identification_pass.values())
        identified_fraction = (
            report.identified_bits / indirect_total if indirect_total else 1.0
        )
        median_latency = float(latencies[len(latencies) // 2]) if latencies else float("nan")
        rows[probability] = (identified_fraction, median_latency, report.escaped_reads)
    return ScrubLatencyResult(
        num_words=num_words,
        at_risk_per_word=at_risk_per_word,
        max_passes=max_passes,
        rows=rows,
    )


def render(result: ScrubLatencyResult) -> str:
    headers = [
        "per-bit P",
        f"indirect bits identified (of ground truth, {result.max_passes} passes)",
        "median latency (passes)",
        "escaped reads",
    ]
    body = []
    for probability, (fraction, latency, escaped) in sorted(result.rows.items(), reverse=True):
        body.append(
            [
                f"{probability:.0%}",
                f"{fraction:.2f}",
                "n/a" if np.isnan(latency) else latency,
                escaped,
            ]
        )
    return (
        f"Scrubbing-latency extension: {result.num_words} words x "
        f"{result.at_risk_per_word} at-risk bits, HARP active phase done\n"
        + format_table(headers, body)
    )
