"""The paper's headline numbers, derived from the sweep and case study.

1. Active-phase speedup (abstract, §7.3.2): at a per-bit probability of
   50%, HARP bounds the required secondary capability to 1 in
   20.6% / 36.4% / 52.9% / 62.1% of the rounds the best baseline needs for
   2 / 3 / 4 / 5 pre-correction errors.
2. Case-study speedup (§7.4): at a per-bit probability of 75%, Naive needs
   3.7x the rounds HARP needs to reach a zero post-secondary BER.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig9 import rounds_to_capability
from repro.experiments.fig10 import Fig10Result
from repro.experiments.runner import SweepResult
from repro.utils.tables import format_table

__all__ = ["ActiveSpeedup", "CaseStudySpeedup", "active_speedups", "case_study_speedups", "render"]

PAPER_ACTIVE_FRACTIONS = {2: 0.206, 3: 0.364, 4: 0.529, 5: 0.621}
PAPER_CASE_STUDY_FACTOR = 3.7


@dataclass(frozen=True)
class ActiveSpeedup:
    """HARP's rounds-to-capability-1 as a fraction of the best baseline's."""

    error_count: int
    harp_rounds: int | None
    baseline_rounds: int | None
    baseline_name: str

    @property
    def fraction(self) -> float | None:
        """HARP rounds / baseline rounds; lower is better (paper: 0.21-0.62)."""
        if self.harp_rounds is None or self.baseline_rounds is None:
            return None
        return self.harp_rounds / self.baseline_rounds


@dataclass(frozen=True)
class CaseStudySpeedup:
    """Naive's rounds-to-zero-BER as a multiple of HARP's."""

    probability: float
    harp_rounds: int | None
    naive_rounds: int | None

    @property
    def factor(self) -> float | None:
        """Naive rounds / HARP rounds; paper reports 3.7x at p=0.75."""
        if self.harp_rounds is None or self.naive_rounds is None:
            return None
        return self.naive_rounds / self.harp_rounds


def active_speedups(
    sweep: SweepResult,
    probability: float = 0.5,
    harp: str = "HARP-U",
    baselines: tuple[str, ...] = ("Naive", "BEEP"),
) -> list[ActiveSpeedup]:
    """Compute the abstract's 2/3/4/5-error speedup row from a sweep."""
    results = []
    config = sweep.config
    available = [name for name in baselines if name in config.profilers]
    for error_count in config.error_counts:
        harp_rounds = rounds_to_capability(sweep, error_count, probability, harp, bound=1)
        best_name = ""
        best_rounds: int | None = None
        for name in available:
            rounds = rounds_to_capability(sweep, error_count, probability, name, bound=1)
            if rounds is not None and (best_rounds is None or rounds < best_rounds):
                best_rounds, best_name = rounds, name
        results.append(
            ActiveSpeedup(
                error_count=error_count,
                harp_rounds=harp_rounds,
                baseline_rounds=best_rounds,
                baseline_name=best_name or "(none reached bound)",
            )
        )
    return results


def case_study_speedups(result: Fig10Result, harp: str = "HARP-U") -> list[CaseStudySpeedup]:
    """Compute the §7.4 Naive-vs-HARP factor for every probability."""
    speedups = []
    for probability in result.config.probabilities:
        speedups.append(
            CaseStudySpeedup(
                probability=probability,
                harp_rounds=result.rounds_to_zero.get((probability, harp)),
                naive_rounds=result.rounds_to_zero.get((probability, "Naive")),
            )
        )
    return speedups


def render(
    active: list[ActiveSpeedup] | None = None,
    case_study: list[CaseStudySpeedup] | None = None,
) -> str:
    """Text rendition of the headline comparison against the paper."""
    sections = []
    if active is not None:
        headers = ["pre-corr errors", "HARP rounds", "baseline", "baseline rounds", "fraction", "paper"]
        rows = []
        for speedup in active:
            rows.append(
                [
                    speedup.error_count,
                    "n/a" if speedup.harp_rounds is None else speedup.harp_rounds,
                    speedup.baseline_name,
                    "n/a" if speedup.baseline_rounds is None else speedup.baseline_rounds,
                    "n/a" if speedup.fraction is None else f"{speedup.fraction:.1%}",
                    f"{PAPER_ACTIVE_FRACTIONS.get(speedup.error_count, float('nan')):.1%}",
                ]
            )
        sections.append("Headline: HARP rounds to capability<=1 vs best baseline (p=50%)\n" + format_table(headers, rows))
    if case_study is not None:
        headers = ["per-bit P", "HARP rounds", "Naive rounds", "factor", "paper @75%"]
        rows = []
        for speedup in case_study:
            rows.append(
                [
                    f"{speedup.probability:.0%}",
                    "n/a" if speedup.harp_rounds is None else speedup.harp_rounds,
                    "n/a" if speedup.naive_rounds is None else speedup.naive_rounds,
                    "n/a" if speedup.factor is None else f"{speedup.factor:.1f}x",
                    f"{PAPER_CASE_STUDY_FACTOR}x",
                ]
            )
        sections.append("Headline: rounds to zero post-secondary BER\n" + format_table(headers, rows))
    return "\n\n".join(sections)
