"""Ablation: data-pattern choice (paper §7.1.2 / §7.2.1).

The paper evaluates three data patterns — random (with per-round
inversion), charged (0xFF), and checkered (0xAA) — and reports that the
random pattern "performs on par or better than the static charged and
checkered patterns that do not explore different pre-correction error
combinations", and that "Naive also fails to achieve full coverage when
using static data patterns".

This ablation reruns the direct-coverage experiment per pattern.  The
mechanism being probed: a static pattern charges the same subset of
at-risk cells every round, so (especially at high per-bit probability)
the same pre-correction error pattern repeats and post-correction-observing
profilers stop learning; HARP is pattern-insensitive for any schedule that
eventually charges every data bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.config import SweepConfig
from repro.experiments.fig6 import coverage_curve
from repro.experiments.runner import run_sweep
from repro.utils.tables import format_table

__all__ = ["PatternAblationResult", "run", "render", "ABLATION_PATTERNS"]

ABLATION_PATTERNS = ("random", "charged", "checkered")


@dataclass(frozen=True)
class PatternAblationResult:
    """Final direct coverage per (pattern, profiler, error count, probability)."""

    config: SweepConfig
    patterns: tuple[str, ...]
    #: (pattern, profiler, error_count, probability) -> final direct coverage
    final_coverage: dict[tuple[str, str, int, float], float]


def run(
    base_config: SweepConfig | None = None,
    patterns: tuple[str, ...] = ABLATION_PATTERNS,
    jobs: int | None = None,
    backend=None,
) -> PatternAblationResult:
    """Run the direct-coverage sweep once per data pattern.

    ``jobs`` and ``backend`` are forwarded to
    :func:`~repro.experiments.runner.run_sweep` (execution backend per
    sweep; results are bit-identical for every choice).
    """
    config = base_config or SweepConfig(
        num_codes=3,
        words_per_code=6,
        num_rounds=64,
        error_counts=(3, 5),
        probabilities=(0.5, 1.0),
        profilers=("Naive", "HARP-U"),
    )
    final: dict[tuple[str, str, int, float], float] = {}
    for pattern in patterns:
        sweep = run_sweep(replace(config, pattern=pattern), jobs=jobs, backend=backend)
        for error_count in config.error_counts:
            for probability in config.probabilities:
                for profiler in config.profilers:
                    curve = coverage_curve(sweep, error_count, probability, profiler)
                    final[(pattern, profiler, error_count, probability)] = curve[-1]
    return PatternAblationResult(config=config, patterns=patterns, final_coverage=final)


def render(result: PatternAblationResult) -> str:
    """Text table: final direct coverage by pattern."""
    config = result.config
    headers = ["profiler", "n", "P"] + [f"{p} pattern" for p in result.patterns]
    rows = []
    for profiler in config.profilers:
        for error_count in config.error_counts:
            for probability in config.probabilities:
                rows.append(
                    [profiler, error_count, f"{probability:.0%}"]
                    + [
                        f"{result.final_coverage[(pattern, profiler, error_count, probability)]:.3f}"
                        for pattern in result.patterns
                    ]
                )
    return (
        f"Pattern ablation: final direct coverage after {config.num_rounds} rounds\n"
        + format_table(headers, rows)
    )
