"""Fig 2: expected wasted storage vs. RBER at several repair granularities.

Closed-form (no Monte-Carlo): DESIGN.md maps this exhibit to
:mod:`repro.repair.wasted_storage`.  The paper's headline observation — a
1024-bit repair granularity wastes over 99% of capacity at RBER 6.8e-3
while bit-granularity repair wastes none — falls directly out of the curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.repair.wasted_storage import PAPER_GRANULARITIES, wasted_ratio_curve
from repro.utils.tables import format_series

__all__ = ["Fig2Result", "run", "render"]


@dataclass(frozen=True)
class Fig2Result:
    """Wasted-storage curves keyed by repair granularity."""

    rbers: tuple[float, ...]
    series: dict[int, tuple[float, ...]]

    def peak_waste(self, granularity: int) -> tuple[float, float]:
        """(rber, ratio) at the maximum of a granularity's curve."""
        curve = self.series[granularity]
        index = int(np.argmax(curve))
        return self.rbers[index], curve[index]


def run(
    granularities: tuple[int, ...] = PAPER_GRANULARITIES,
    rber_min: float = 1e-7,
    rber_max: float = 0.5,
    num_points: int = 57,
) -> Fig2Result:
    """Sweep RBER logarithmically and evaluate each granularity's curve."""
    rbers = np.logspace(np.log10(rber_min), np.log10(rber_max), num_points)
    series = {
        granularity: tuple(wasted_ratio_curve(rbers, granularity))
        for granularity in granularities
    }
    return Fig2Result(rbers=tuple(float(r) for r in rbers), series=series)


def render(result: Fig2Result, max_rows: int = 12) -> str:
    """Text rendition of the Fig 2 curves (subsampled rows)."""
    stride = max(1, len(result.rbers) // max_rows)
    indices = list(range(0, len(result.rbers), stride))
    series = {
        f"g={granularity}": [result.series[granularity][i] for i in indices]
        for granularity in sorted(result.series, reverse=True)
    }
    return format_series(
        "Fig 2: expected wasted storage ratio vs RBER",
        series,
        x_values=[f"{result.rbers[i]:.1e}" for i in indices],
        x_label="RBER",
    )
