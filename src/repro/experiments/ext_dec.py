"""Extension: double-error-correcting on-die ECC (paper footnote 9, §6.3.2).

The paper's analysis generalizes to stronger on-die codes: an
N-error-correcting code can inject up to N indirect errors concurrently,
so the reactive-profiling secondary ECC needs capability >= N.  This
extension runs the HARP pipeline with a DEC BCH on-die code and measures

* the worst-case concurrent indirect-error count after full direct
  coverage (expected: exactly bounded by 2), and
* the escape rate of SEC vs. DEC secondary ECC during reactive profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.atrisk import compute_ground_truth, max_simultaneous_post_errors
from repro.ecc.bch import bch_dec_code
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import sample_word_profile
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

__all__ = ["DecExtensionResult", "run", "render"]


@dataclass(frozen=True)
class DecExtensionResult:
    """Worst-case indirect bounds and secondary-ECC adequacy per code."""

    num_words: int
    at_risk_per_word: int
    #: code label -> (on-die capability, worst concurrent indirect errors,
    #: words where SEC secondary suffices, words where DEC suffices)
    rows: dict[str, tuple[int, int, int, int]]


def run(
    num_words: int = 30,
    at_risk_per_word: int = 5,
    dec_k: int = 16,
    seed: int = 2021,
) -> DecExtensionResult:
    """Measure the indirect-error bound for SEC and DEC on-die codes."""
    rng = derive_rng(seed, "ext-dec")
    codes = {
        "SEC Hamming (71,64)": random_sec_code(64, rng),
        f"DEC BCH k={dec_k}": bch_dec_code(dec_k),
    }
    rows: dict[str, tuple[int, int, int, int]] = {}
    for label, code in codes.items():
        worst_overall = 0
        sec_ok = 0
        dec_ok = 0
        for _ in range(num_words):
            profile = sample_word_profile(code, at_risk_per_word, 0.5, rng)
            truth = compute_ground_truth(code, profile)
            missed = truth.post_correction_at_risk - truth.direct_at_risk
            worst = max_simultaneous_post_errors(truth, missed)
            worst_overall = max(worst_overall, worst)
            if worst <= 1:
                sec_ok += 1
            if worst <= 2:
                dec_ok += 1
        rows[label] = (code.t, worst_overall, sec_ok, dec_ok)
    return DecExtensionResult(
        num_words=num_words, at_risk_per_word=at_risk_per_word, rows=rows
    )


def render(result: DecExtensionResult) -> str:
    headers = [
        "on-die ECC",
        "capability N",
        "worst concurrent indirect",
        f"SEC secondary ok (/{result.num_words})",
        f"DEC secondary ok (/{result.num_words})",
    ]
    body = [
        [label, capability, worst, sec_ok, dec_ok]
        for label, (capability, worst, sec_ok, dec_ok) in result.rows.items()
    ]
    return (
        "DEC extension: indirect-error bound equals on-die capability "
        f"({result.at_risk_per_word} at-risk bits/word)\n" + format_table(headers, body)
    )
