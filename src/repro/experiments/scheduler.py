"""Campaign job scheduler: the state machine behind ``repro serve``.

The service layer (:mod:`repro.experiments.service`) is deliberately
thin — HTTP in, JSON out — and everything stateful lives here: job
specs are validated against the library configs, accepted jobs run
through the ordinary drivers (:func:`~repro.experiments.runner.run_sweep`,
:func:`~repro.experiments.fig10.run`, :func:`~repro.experiments.fleet.run`)
over one shared :class:`~repro.experiments.backends.WorkServer` fleet,
and every job's lifecycle survives a daemon crash.

Job state machine
=================

::

    queued ──────────► running ──────────► done
       │                  │  └───────────► failed
       └──► cancelled ◄───┘  (cancel)

* ``queued`` — accepted, persisted, waiting for a concurrency slot.
* ``running`` — a driver thread is consuming the shared fleet through
  its own :class:`~repro.experiments.backends.SharedFleetBackend`
  facade; chunks interleave round-robin with every other running job.
* ``done`` / ``failed`` — terminal; the result (or the failure reason)
  is persisted next to the job record.
* ``cancelled`` — terminal; a queued job cancels instantly, a running
  job aborts its in-flight map (:class:`~repro.experiments.backends.MapCancelled`)
  and keeps whatever cells its resume store already holds.

Durability and healing
======================

Every job owns three files under ``STATE_DIR/jobs/``:

* ``ID.json`` — the job record (spec, state, timestamps), rewritten
  atomically on every transition;
* ``ID.store.jsonl`` — the job's own resume store
  (:class:`~repro.experiments.store.ShardStore` /
  :class:`~repro.experiments.store.Fig10Store` /
  :class:`~repro.experiments.store.FleetStore`), streamed while the job
  runs;
* ``ID.result.json`` — the result payload, written once on completion.

On daemon start :meth:`JobScheduler.recover` re-reads the directory:
terminal jobs come back queryable, and ``queued``/``running`` records —
what a SIGKILL leaves behind — are re-enqueued.  A re-enqueued
``running`` job is marked **healed**: when it runs again, its resume
store skips every cell that was durable before the crash, so the
completed result is bit-identical to an uninterrupted run and its
record says the daemon died mid-flight.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.experiments import fig10, fig6, fig7, fig8, fig9, fleet
from repro.experiments.backends import (
    MapCancelled,
    SharedFleetBackend,
    WorkServer,
)
from repro.experiments.config import CaseStudyConfig, FleetConfig, SweepConfig
from repro.experiments.monitor import (
    estimate_eta,
    format_grid,
    grid_shape,
)
from repro.experiments.runner import run_sweep
from repro.experiments.store import sweep_to_json

__all__ = [
    "JOB_STATES",
    "JobSpecError",
    "Job",
    "JobScheduler",
    "parse_job_spec",
    "job_config",
]

#: Every state a job record may carry, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Job kinds and the scale-preset family each validates against.  The
#: presets are the CLI's own (``repro fig6 --scale`` etc.), so a spec
#: ``{"kind": "sweep", "scale": "unit"}`` means exactly what the
#: equivalent command line means — the root of the service's
#: bit-identity guarantee.
_KIND_SCALES: dict[str, dict] = {}

#: Sweep-backed exhibit renderers a sweep job may request.
_SWEEP_EXHIBITS = {"fig6": fig6, "fig7": fig7, "fig8": fig8, "fig9": fig9}


def _kind_scales() -> dict[str, dict]:
    # Imported lazily: cli imports the experiment modules eagerly, and
    # importing it at module scope would cycle (cli -> service -> here).
    if not _KIND_SCALES:
        from repro.cli import CASE_SCALES, FLEET_SCALES, SCALES

        _KIND_SCALES.update(
            {"sweep": SCALES, "fig10": CASE_SCALES, "fleet": FLEET_SCALES}
        )
    return _KIND_SCALES


class JobSpecError(ValueError):
    """A submitted job spec failed validation (HTTP 400, with reason)."""


def parse_job_spec(spec) -> dict:
    """Validate and normalize a submitted job spec.

    A spec is a JSON object::

        {"kind": "sweep" | "fig10" | "fleet",
         "scale": "unit" | "bench" | "full" | "paper",   # default unit
         "config": {...field overrides...},              # optional
         "exhibit": "fig6" | "fig7" | "fig8" | "fig9"}   # sweep only

    ``config`` overrides individual fields of the scale preset's
    :class:`~repro.experiments.config.SweepConfig` /
    :class:`~repro.experiments.config.CaseStudyConfig` /
    :class:`~repro.experiments.config.FleetConfig`; unknown fields and
    invalid values are rejected with the dataclass's own message.
    Raises :class:`JobSpecError` on any problem — the service maps it
    to a 400 with the reason, never a traceback.
    """
    if not isinstance(spec, dict):
        raise JobSpecError(f"job spec must be a JSON object, got {type(spec).__name__}")
    unknown = set(spec) - {"kind", "scale", "config", "exhibit"}
    if unknown:
        raise JobSpecError(f"unknown job spec field(s): {sorted(unknown)}")
    kind = spec.get("kind")
    if kind not in _kind_scales():
        raise JobSpecError(
            f"kind must be one of {sorted(_kind_scales())}, got {kind!r}"
        )
    scale = spec.get("scale", "unit")
    if scale not in _kind_scales()[kind]:
        raise JobSpecError(
            f"scale must be one of {sorted(_kind_scales()[kind])}, got {scale!r}"
        )
    overrides = spec.get("config", {})
    if not isinstance(overrides, dict):
        raise JobSpecError("config must be a JSON object of field overrides")
    exhibit = spec.get("exhibit")
    if exhibit is not None:
        if kind != "sweep":
            raise JobSpecError(f"exhibit only applies to sweep jobs, not {kind!r}")
        if exhibit not in _SWEEP_EXHIBITS:
            raise JobSpecError(
                f"exhibit must be one of {sorted(_SWEEP_EXHIBITS)}, got {exhibit!r}"
            )
    normalized = {"kind": kind, "scale": scale, "config": dict(overrides)}
    if exhibit is not None:
        normalized["exhibit"] = exhibit
    job_config(normalized)  # constructs the dataclass: full validation
    return normalized


def job_config(spec: dict):
    """Materialize a normalized spec's config dataclass (or raise)."""
    preset = _kind_scales()[spec["kind"]][spec.get("scale", "unit")]
    overrides = {
        # JSON has no tuples; the frozen configs use them for every
        # sequence field, so lists arrive converted.
        key: tuple(value) if isinstance(value, list) else value
        for key, value in spec.get("config", {}).items()
    }
    try:
        return replace(preset, **overrides)
    except TypeError as error:
        known = sorted(f.name for f in fields(preset))
        raise JobSpecError(
            f"bad config override for a {spec['kind']} job: {error} "
            f"(known fields: {', '.join(known)})"
        ) from None
    except ValueError as error:
        raise JobSpecError(f"invalid {spec['kind']} config: {error}") from None


@dataclass
class Job:
    """One campaign job: durable record plus runtime attachments."""

    id: str
    spec: dict
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    #: True when this job was re-enqueued by crash recovery: it was
    #: ``running`` when the previous daemon died, and completed by
    #: re-attaching its resume store.
    healed: bool = False
    error: str | None = None
    #: Runtime-only: the job's facade over the shared fleet.
    backend: SharedFleetBackend | None = None
    #: Runtime-only: cancel was requested while the job ran.
    cancel_requested: bool = False
    #: Runtime-only: monotonic clock at the running transition (ETA).
    started_monotonic: float | None = None

    def record(self) -> dict:
        """The durable, JSON-safe job record (no runtime attachments)."""
        return {
            "id": self.id,
            "spec": self.spec,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "healed": self.healed,
            "error": self.error,
        }

    def describe(self) -> dict:
        """The live API view: the record plus coverage/ETA while running."""
        view = self.record()
        view["kind"] = self.spec.get("kind")
        shape = grid_shape(job_config(self.spec))
        if shape is not None:
            view["grid"] = format_grid(*shape)
        backend = self.backend
        if backend is not None and self.state == "running":
            done, total = backend.shards_done, backend.shards_total
            view["coverage"] = {"done": done, "total": total, "unit": "shards"}
            if self.started_monotonic is not None:
                elapsed = time.monotonic() - self.started_monotonic
                view["eta_seconds"] = estimate_eta(done, total, elapsed)
        return view


class JobScheduler:
    """Run submitted jobs over one shared fleet, a few at a time.

    ``max_concurrent`` bounds how many driver threads consume the fleet
    at once — admission control, not parallelism control: the fleet's
    workers are shared either way, and the
    :class:`~repro.experiments.backends.WorkServer` rotation keeps the
    admitted jobs advancing evenly.
    """

    def __init__(
        self,
        server: WorkServer,
        state_dir: str | os.PathLike,
        max_concurrent: int = 4,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.server = server
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.max_concurrent = max_concurrent
        self._jobs: dict[str, Job] = {}
        self._queue: list[str] = []
        self._running = 0
        self._lock = threading.Condition()
        self._closed = threading.Event()
        self._dispatcher: threading.Thread | None = None

    # -- persistence ----------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _store_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.store.jsonl"

    def _result_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.result.json"

    def _persist(self, job: Job) -> None:
        """Atomically rewrite the job record (rename, never truncate)."""
        path = self._record_path(job.id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(job.record(), indent=2) + "\n")
        os.replace(tmp, path)

    # -- lifecycle ------------------------------------------------------

    def recover(self) -> list[Job]:
        """Re-read the state directory; re-enqueue interrupted jobs.

        Returns the jobs that were healed (were ``running`` when the
        previous daemon died) so the caller can log them.
        """
        healed: list[Job] = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            if path.name.endswith(".result.json") or path.name.endswith(".json.tmp"):
                continue
            try:
                record = json.loads(path.read_text())
                job = Job(
                    id=record["id"],
                    spec=record["spec"],
                    state=record.get("state", "queued"),
                    created=record.get("created", 0.0),
                    started=record.get("started"),
                    finished=record.get("finished"),
                    healed=bool(record.get("healed")),
                    error=record.get("error"),
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue  # a torn record is not worth refusing to start over
            with self._lock:
                self._jobs[job.id] = job
                if job.state in ("queued", "running"):
                    if job.state == "running":
                        # The daemon died mid-job: its resume store holds
                        # every cell that completed before the kill.
                        job.healed = True
                        job.started = None
                        healed.append(job)
                    job.state = "queued"
                    self._persist(job)
                    self._queue.append(job.id)
                    self._lock.notify_all()
        return healed

    def start(self) -> "JobScheduler":
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-scheduler", daemon=True
        )
        self._dispatcher.start()
        return self

    def close(self) -> None:
        """Stop admitting jobs.  Running drivers are abandoned to the
        process teardown — by design: their resume stores make a daemon
        restart heal them, which is cheaper and better tested than a
        graceful in-process drain."""
        self._closed.set()
        with self._lock:
            self._lock.notify_all()
        if self._dispatcher is not None and self._dispatcher.ident is not None:
            self._dispatcher.join(timeout=5)

    # -- API surface ----------------------------------------------------

    def submit(self, spec) -> Job:
        """Validate a spec, persist the job, and enqueue it."""
        normalized = parse_job_spec(spec)
        with self._lock:
            while True:
                job_id = f"job-{secrets.token_hex(4)}"
                if job_id not in self._jobs:
                    break
            job = Job(id=job_id, spec=normalized)
            self._jobs[job_id] = job
            self._persist(job)
            self._queue.append(job_id)
            self._lock.notify_all()
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created)

    def counts(self) -> dict[str, int]:
        """Jobs per state, for the fleet status snapshot."""
        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def result(self, job_id: str) -> dict | None:
        path = self._result_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job; returns the job, or ``None`` when unknown.

        A queued job transitions immediately; a running job gets its
        fleet map aborted and transitions when the driver thread
        unwinds.  Terminal jobs are left untouched (the caller turns
        that into a 409).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "queued":
                self._queue.remove(job_id)
                job.state = "cancelled"
                job.finished = time.time()
                self._persist(job)
                self._lock.notify_all()
            elif job.state == "running":
                job.cancel_requested = True
                if job.backend is not None:
                    job.backend.cancel()
            return job

    # -- execution ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._closed.is_set():
            with self._lock:
                while not self._closed.is_set() and (
                    not self._queue or self._running >= self.max_concurrent
                ):
                    self._lock.wait(0.2)
                if self._closed.is_set():
                    return
                job = self._jobs[self._queue.pop(0)]
                job.state = "running"
                job.started = time.time()
                job.started_monotonic = time.monotonic()
                job.backend = SharedFleetBackend(self.server)
                if job.cancel_requested:
                    job.backend.cancel()
                self._running += 1
                self._persist(job)
            threading.Thread(
                target=self._run_job,
                args=(job,),
                name=f"repro-{job.id}",
                daemon=True,
            ).start()

    def _run_job(self, job: Job) -> None:
        try:
            payload = self._execute(job)
        except MapCancelled:
            self._finish(job, "cancelled")
        except Exception as error:  # noqa: BLE001 - the job IS the boundary
            if job.cancel_requested:
                # The cancel surfaced as a driver error (e.g. the map
                # died before MapCancelled propagated); the operator
                # asked for cancelled, not failed.
                self._finish(job, "cancelled")
            else:
                self._finish(job, "failed", error=f"{type(error).__name__}: {error}")
        else:
            path = self._result_path(job.id)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload, indent=2) + "\n")
            os.replace(tmp, path)
            self._finish(job, "done")

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        with self._lock:
            job.state = state
            job.error = error
            job.finished = time.time()
            job.backend = None
            self._running -= 1
            self._persist(job)
            self._lock.notify_all()

    def _execute(self, job: Job) -> dict:
        """Run one job through its ordinary driver; return the payload.

        The driver streams to the job's own resume store, so this is
        exactly the CLI path with ``--resume`` — including after crash
        recovery, where the store's surviving cells are skipped and the
        merged result is bit-identical to an uninterrupted run.
        """
        spec = job.spec
        config = job_config(spec)
        store_path = str(self._store_path(job.id))
        payload: dict = {
            "job": job.id,
            "kind": spec["kind"],
            "spec": spec,
            "healed": job.healed,
        }
        if spec["kind"] == "sweep":
            sweep = run_sweep(config, backend=job.backend, resume=store_path)
            exhibit = spec.get("exhibit")
            if exhibit is not None:
                module = _SWEEP_EXHIBITS[exhibit]
                payload["exhibit"] = exhibit
                payload["rendition"] = module.render(module.from_sweep(sweep))
            payload["sweep"] = json.loads(sweep_to_json(sweep))
        elif spec["kind"] == "fig10":
            result = fig10.run(config, backend=job.backend, resume=store_path)
            payload["rendition"] = fig10.render(result)
        else:
            result = fleet.run(config, backend=job.backend, resume=store_path)
            payload["rendition"] = fleet.render(result)
        return payload
