"""Table 2: at-risk bit amplification under on-die ECC.

Closed-form rows (``2^n - 1`` patterns, ``2^n - n - 1`` uncorrectable,
worst case ``2^n - 1`` post-correction at-risk bits) plus an empirical
check: for concrete random codes, the measured post-correction at-risk
count never exceeds the worst case and reaches it when every uncorrectable
pattern miscorrects uniquely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.combinatorics import AmplificationRow, amplification_row, empirical_amplification
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import sample_word_profile
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

__all__ = ["Table2Result", "run", "render"]

PAPER_COUNTS = (1, 2, 3, 4, 8)


@dataclass(frozen=True)
class Table2Result:
    """Closed-form rows and measured amplification statistics."""

    rows: tuple[AmplificationRow, ...]
    #: per error count: (mean, max) measured post-correction at-risk bits
    #: across sampled words (data-bit at-risk positions only, the paper's
    #: worst-case illustration).
    empirical: dict[int, tuple[float, int]]


def run(
    counts: tuple[int, ...] = PAPER_COUNTS,
    k: int = 64,
    num_words: int = 40,
    seed: int = 2021,
) -> Table2Result:
    """Compute the closed-form table and its Monte-Carlo validation."""
    rows = tuple(amplification_row(count) for count in counts)
    empirical: dict[int, tuple[float, int]] = {}
    rng = derive_rng(seed, "table2")
    for count in counts:
        measured = []
        for index in range(num_words):
            code = random_sec_code(k, rng)
            profile = sample_word_profile(code, count, probability=0.5, rng=rng)
            measured.append(empirical_amplification(code, profile.positions))
        empirical[count] = (float(np.mean(measured)), int(np.max(measured)))
    return Table2Result(rows=rows, empirical=empirical)


def render(result: Table2Result) -> str:
    """Text rendition of Table 2 with the empirical columns appended."""
    headers = [
        "pre-correction at-risk n",
        "error patterns 2^n-1",
        "uncorrectable 2^n-n-1",
        "worst-case post-risk 2^n-1",
        "measured mean",
        "measured max",
    ]
    body = []
    for row in result.rows:
        mean, largest = result.empirical[row.pre_correction_at_risk]
        body.append(
            [
                row.pre_correction_at_risk,
                row.unique_error_patterns,
                row.uncorrectable_error_patterns,
                row.worst_case_post_correction_at_risk,
                mean,
                largest,
            ]
        )
    return "Table 2: at-risk bit amplification\n" + format_table(headers, body)
