"""Fig 8: bits at risk of indirect errors missed per ECC word vs. rounds.

The per-word count of ground-truth indirect-risk bits not yet identified —
exactly the population the reactive phase must still catch.  HARP-U
identifies (almost) none of them; HARP-A's precomputation removes the ones
caused by data-bit combinations immediately after active profiling;
HARP-A+BEEP additionally provokes the parity-bit-caused ones; Naive and
BEEP erode the count slowly by exploring uncorrectable patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import log_round_ticks, percent, profiler_order
from repro.experiments.runner import SweepResult
from repro.utils.tables import format_series

__all__ = ["Fig8Result", "from_sweep", "render"]

FIG8_PROFILERS = ("Naive", "BEEP", "HARP-U", "HARP-A", "HARP-A+BEEP")


@dataclass(frozen=True)
class Fig8Result:
    """Mean missed-indirect-bit trajectories per sweep cell."""

    error_counts: tuple[int, ...]
    probabilities: tuple[float, ...]
    profilers: tuple[str, ...]
    num_rounds: int
    curves: dict[tuple[int, float, str], tuple[float, ...]]

    def final_missed(self, error_count: int, probability: float, profiler: str) -> float:
        return self.curves[(error_count, probability, profiler)][-1]


def from_sweep(sweep: SweepResult, profilers: tuple[str, ...] = FIG8_PROFILERS) -> Fig8Result:
    """Reduce a sweep to the Fig 8 mean-missed curves."""
    config = sweep.config
    selected = tuple(name for name in profilers if name in config.profilers)
    curves: dict[tuple[int, float, str], tuple[float, ...]] = {}
    for error_count in config.error_counts:
        for probability in config.probabilities:
            for name in selected:
                cell = sweep.cell(error_count, probability, name)
                num_rounds = len(cell.words[0].indirect_missed)
                curve = [
                    sum(word.indirect_missed[r] for word in cell.words) / len(cell.words)
                    for r in range(num_rounds)
                ]
                curves[(error_count, probability, name)] = tuple(curve)
    return Fig8Result(
        error_counts=tuple(config.error_counts),
        probabilities=tuple(config.probabilities),
        profilers=selected,
        num_rounds=config.num_rounds,
        curves=curves,
    )


def render(result: Fig8Result) -> str:
    """Text rendition: one panel per error count at each probability."""
    ticks = log_round_ticks(result.num_rounds)
    panels = []
    for error_count in result.error_counts:
        for probability in result.probabilities:
            series = {
                name: [result.curves[(error_count, probability, name)][tick - 1] for tick in ticks]
                for name in profiler_order(result.profilers)
            }
            title = (
                f"Fig 8 panel: {error_count} pre-correction errors, "
                f"per-bit P={percent(probability)} — missed indirect bits per word"
            )
            panels.append(format_series(title, series, x_values=ticks, x_label="round"))
    return "\n\n".join(panels)
