"""Campaign control plane: live status snapshots, grid coverage, and ETA.

A paper-scale campaign runs for hours across machines (PR 3/4 made it
distributed and resumable); this module makes it *observable*.  It is
deliberately read-only with respect to results — nothing here touches
the result path, so every piece stays bit-identical whether or not a
campaign is being watched.

Three instruments, one per operational question:

* "Is the fleet alive?" — :class:`StatusServer` serves the live
  snapshot a :class:`~repro.experiments.backends.SocketBackend`
  assembles when constructed with ``status_port=`` (CLI
  ``--status-port``); :func:`read_status` / ``python -m repro status
  HOST:PORT`` fetch and :func:`render_status` renders it.
* "How far along is the grid?" — :class:`ProgressReporter` prints
  periodic stderr progress/ETA lines from inside
  :func:`~repro.experiments.runner.run_sweep` and
  :func:`~repro.experiments.fig10.run` (CLI ``--progress``), and
  :func:`grid_shape` / :func:`estimate_eta` are the same coverage math
  the ``repro store PATH summary`` toolbox uses on a store at rest.
* "What did the campaign skip?" — :func:`quarantine_report` renders
  the shard keys a ``--continue-past-quarantine`` run set aside, with
  the targeted re-run recipe.

Status wire format (``repro-status-v2``)
========================================

The status port speaks line-delimited JSON, not the pickle protocol of
the work port: one connection, one snapshot line, close.  Any client
works (``python -m repro status``, ``curl``, ``nc``).  The snapshot is
a single JSON object:

.. code-block:: json

    {"format": "repro-status-v2",
     "elapsed": 12.3,
     "wire": "v1",
     "fleet": {"size": 2, "joined_total": 3, "left_total": 1, "expected": 2},
     "workers": [{"pid": 4242, "heartbeat_age": 0.4, "chunk": 7},
                 {"pid": 4243, "heartbeat_age": 1.2, "chunk": null}],
     "chunks": {"total": 9, "done": 5, "pending": 2, "deferred": 0,
                "in_flight": 2},
     "retries": 1,
     "quarantined": [3],
     "healed": 0,
     "history": [{"t": 2.0, "done": 1}, {"t": 7.1, "done": 5}]}

Field semantics:

========================  ==============================================
field                     meaning
========================  ==============================================
``elapsed``               seconds since the map started serving
``wire``                  frame codec on the work port (``v1``/``pickle``)
``fleet.size``            workers connected *right now*
``fleet.joined_total``    workers that ever joined (deaths included) —
                          elastic fleets grow this past ``size``
``fleet.left_total``      workers that drained out cleanly (``leave``
                          goodbye: ``--max-chunks``, SIGTERM) — churn,
                          not deaths
``fleet.expected``        the ``--workers-expected`` start barrier
``workers[].pid``         worker's reported process id
``workers[].heartbeat_age`` seconds since the worker's last frame
``workers[].chunk``       chunk index in flight, ``null`` when idle
``chunks.total``          chunks in this map (grows when the auto-retry
                          pass splits a poison chunk into singles)
``chunks.done``           chunks completed (quarantined ones included)
``chunks.pending``        queue depth: chunks waiting for a worker
``chunks.deferred``       single-shard retry chunks parked for the
                          end-of-map auto-retry pass
``chunks.in_flight``      chunks currently executing somewhere
``retries``               requeues charged against retry budgets so far
``quarantined``           chunk indices set aside past their budget
``healed``                shards recovered by the auto-retry pass
``campaign``              optional driver-supplied workload fields
                          (e.g. the fleet runner's ``workload`` /
                          ``chips`` / ``shards`` / ``cell_slices``)
``history``               ring buffer of ``{"t", "done"}`` throughput
                          samples (``t`` seconds since serving started,
                          ``done`` chunks completed by then) — at most
                          one sample per second, oldest evicted past
                          :data:`HISTORY_SAMPLES`; lets clients compute
                          *trends*, not just the instantaneous state
                          (new in ``repro-status-v2``)
``maps``                  ``{"active", "opened"}`` concurrent-map
                          counters from multi-campaign servers (new in
                          ``repro-status-v2``; absent from single-map
                          backends)
========================  ==============================================

Fields added by later protocol revisions are additive: clients must
tolerate their absence (``repro status`` renders pre-elastic snapshots
without churn/healed lines rather than failing).  ``repro-status-v1``
is the same schema without ``history``/``maps``; :func:`read_status`
still accepts it so one operator CLI can watch old and new servers.

See ``docs/operations.md`` for the monitoring runbook.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from collections import deque
from collections.abc import Mapping
from typing import Callable, Iterable, Sequence

__all__ = [
    "STATUS_FORMAT",
    "STATUS_FORMAT_V1",
    "STATUS_FORMATS",
    "HISTORY_SAMPLES",
    "ThroughputHistory",
    "StatusServer",
    "read_status",
    "render_status",
    "build_status_parser",
    "status_main",
    "ProgressReporter",
    "progress_reporter",
    "quarantined_keys",
    "grid_shape",
    "format_grid",
    "estimate_eta",
    "format_eta",
    "quarantine_report",
]

#: Format tag of the one-line JSON status snapshot.
STATUS_FORMAT = "repro-status-v2"

#: The pre-history schema; still accepted by :func:`read_status` so the
#: operator CLI keeps working against servers from before the bump.
STATUS_FORMAT_V1 = "repro-status-v1"

#: Every snapshot format this client renders.
STATUS_FORMATS = (STATUS_FORMAT_V1, STATUS_FORMAT)

#: Ring-buffer depth of the throughput history (one sample per second
#: at most, so this is roughly the last minute of the campaign).
HISTORY_SAMPLES = 60


class ThroughputHistory:
    """Ring buffer of ``(t, done)`` throughput samples for status v2.

    Snapshot producers (:class:`~repro.experiments.backends.SocketBackend`,
    the service's shared :class:`~repro.experiments.backends.WorkServer`)
    call :meth:`record` on every chunk completion; the buffer keeps at
    most one sample per ``min_interval`` seconds (coalescing bursts into
    the newest sample) and evicts past ``maxlen``, so a week-long
    campaign costs the same memory as a minute-long one.  :meth:`sample`
    returns the JSON-safe list the ``history`` snapshot field carries.

    Thread safety is the caller's: producers already hold their own
    condition lock around completion bookkeeping and snapshot assembly.
    """

    def __init__(self, maxlen: int = HISTORY_SAMPLES, min_interval: float = 1.0) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be >= 1")
        self._samples: deque[tuple[float, int]] = deque(maxlen=maxlen)
        self._min_interval = max(0.0, float(min_interval))

    def record(self, elapsed: float, done: int) -> None:
        """Record ``done`` chunks completed ``elapsed`` seconds in."""
        elapsed = float(elapsed)
        done = int(done)
        if self._samples and elapsed - self._samples[-1][0] < self._min_interval:
            # Burst within the sampling interval: fold into the newest
            # sample so the buffer spans wall-clock, not completions.
            self._samples[-1] = (self._samples[-1][0], done)
            return
        self._samples.append((elapsed, done))

    def sample(self) -> list[dict]:
        """JSON-safe rendition for the snapshot's ``history`` field."""
        return [{"t": round(t, 3), "done": done} for t, done in self._samples]

    def __len__(self) -> int:
        return len(self._samples)


# ----------------------------------------------------------------------
# Grid coverage and ETA math (shared by --progress and `store summary`)
# ----------------------------------------------------------------------


def grid_shape(config) -> tuple[list[tuple[str, int]], int] | None:
    """Dimensions and total cell count of a campaign config's grid.

    Accepts either a config object (:class:`~repro.experiments.config.SweepConfig`
    / :class:`~repro.experiments.config.CaseStudyConfig`) or the plain
    dict a store header records, so the same logic serves live drivers
    and stores at rest.  Returns ``([(label, count), ...], total)`` —
    sweep grids are error counts x probabilities x profilers, case-study
    grids are probabilities x codes x at-risk strata — or ``None`` for
    an unrecognized config shape.
    """
    if config is None:
        return None
    if isinstance(config, Mapping):
        get = config.get
    else:
        def get(key, default=None):
            return getattr(config, key, default)

    if get("error_counts") is not None:
        dims = [
            ("error counts", len(get("error_counts"))),
            ("probabilities", len(get("probabilities") or ())),
            ("profilers", len(get("profilers") or ())),
        ]
    elif get("max_at_risk") is not None:
        dims = [
            ("probabilities", len(get("probabilities") or ())),
            ("codes", int(get("num_codes") or 0)),
            ("strata", max(0, int(get("max_at_risk")) - 1)),
        ]
    elif get("num_chips") is not None:
        # Fleet campaigns: the grid is the population itself — shard
        # records subdivide it (ranges, cell slices), but coverage is
        # counted in whole chips.
        dims = [("chips", int(get("num_chips")))]
    else:
        return None
    total = 1
    for _, count in dims:
        total *= count
    return dims, total


def format_grid(dims: Sequence[tuple[str, int]], total: int) -> str:
    """Human rendition of :func:`grid_shape`'s dimensions.

    ``"4 error counts × 4 probabilities × 5 profilers = 80 cells"`` —
    two stores whose grids disagree are diagnosed from this line alone.
    """
    product = " × ".join(f"{count} {label}" for label, count in dims)
    return f"{product} = {total} cells"


def estimate_eta(done: int, total: int, seconds: float) -> float | None:
    """Remaining seconds, extrapolated from ``seconds`` spent on ``done``.

    The rate is whatever ``seconds`` measures: feed it recorded per-cell
    compute seconds (as ``store summary`` does) and the estimate is
    *single-worker compute* remaining — divide by the fleet size for
    wall-clock; feed it wall-clock elapsed (as :class:`ProgressReporter`
    does) and the estimate is wall-clock directly, fleet included.
    Returns ``0.0`` when the grid is complete and ``None`` when there is
    no rate to extrapolate from (nothing done, or no seconds recorded).
    """
    if total <= done:
        return 0.0
    if done <= 0 or seconds <= 0:
        return None
    return (total - done) * (seconds / done)


def format_eta(seconds: float | None) -> str:
    """Coarse human rendition of an ETA (``"unknown"`` for ``None``)."""
    if seconds is None:
        return "unknown"
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, rest = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Periodic stderr progress/ETA lines for a running campaign grid.

    The drivers (:func:`~repro.experiments.runner.run_sweep`,
    :func:`~repro.experiments.fig10.run`) call :meth:`start` with the
    resumed-cell head start and :meth:`completed` per finished cell; the
    reporter prints at most one line per ``interval`` seconds (plus the
    first and last).  The ETA extrapolates this run's *wall-clock*
    completion rate, so a parallel fleet's speedup is priced in — while
    recorded cell-seconds (also shown) stay comparable with what
    ``repro store PATH summary`` reports for the store at rest.

    Lines go to ``stream`` (default: ``sys.stderr``, resolved at write
    time) so stdout stays exactly the exhibit rendition.
    """

    def __init__(
        self,
        total: int,
        unit: str = "cells",
        interval: float = 10.0,
        stream=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total < 0:
            raise ValueError("total must be >= 0")
        self.total = int(total)
        self.unit = unit
        self.interval = max(0.0, float(interval))
        self._stream = stream
        self._clock = clock
        self.done = 0
        self.cell_seconds = 0.0
        self._fresh = 0  # completed this run (excludes resumed head start)
        self._started = clock()
        self._last_report: float | None = None

    def start(self, done: int = 0, cell_seconds: float = 0.0) -> "ProgressReporter":
        """Record the resumed head start and print the opening line."""
        self.done = int(done)
        self.cell_seconds = float(cell_seconds)
        self._started = self._clock()
        self._report()
        return self

    def completed(self, seconds: float | None = None) -> None:
        """Count one finished cell (``seconds`` = its recorded compute)."""
        self.done += 1
        self._fresh += 1
        if seconds:
            self.cell_seconds += float(seconds)
        now = self._clock()
        if (
            self.done >= self.total
            or self._last_report is None
            or now - self._last_report >= self.interval
        ):
            self._report()

    def finish(self, quarantined: int = 0) -> None:
        """Print the closing line when :meth:`completed` could not.

        A fully-computed grid already reported its last cell, so this is
        a no-op there — but a continue-past-quarantine run never reaches
        ``done == total``, and without a closing line an operator
        tailing stderr sees the log stop at a stale interval-gated
        count.  ``quarantined`` annotates how many shards were set
        aside.
        """
        if self.done >= self.total and not quarantined:
            return
        suffix = f" · {quarantined} shard(s) quarantined" if quarantined else ""
        self._report(suffix=suffix)

    def eta_seconds(self) -> float | None:
        """Wall-clock ETA from this run's completion rate (fleet-aware)."""
        if self.total <= self.done:
            return 0.0
        if self._fresh <= 0:
            return None
        return estimate_eta(self._fresh, self._fresh + (self.total - self.done),
                            self._clock() - self._started)

    def _report(self, suffix: str = "") -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        share = (100.0 * self.done / self.total) if self.total else 100.0
        line = f"progress {self.done}/{self.total} {self.unit} ({share:.1f}%)"
        if self.cell_seconds:
            line += f" · {self.cell_seconds:.1f} cell-seconds recorded"
        if self.done < self.total and not suffix:
            eta = self.eta_seconds()
            if eta is not None:
                line += f" · eta ~{format_eta(eta)}"
        print(line + suffix, file=stream, flush=True)
        self._last_report = self._clock()


def progress_reporter(
    progress: bool | float, total: int, unit: str
) -> ProgressReporter | None:
    """Resolve a driver's ``progress`` option into a reporter.

    The one construction shared by :func:`~repro.experiments.runner.run_sweep`
    and :func:`~repro.experiments.fig10.run`: ``False``/``None`` mean
    off, ``True`` means the default cadence, and a number is the
    cadence in seconds — where ``0.0`` is a zero-second cadence (report
    every cell), not "off".
    """
    if progress is False or progress is None:
        return None
    interval = 10.0 if progress is True else float(progress)
    return ProgressReporter(total, unit=unit, interval=interval)


def quarantined_keys(executor, shards: Sequence, key_of: Callable, store=None) -> tuple:
    """Map a backend's quarantined shard indices back to shard keys.

    ``executor.quarantined_shards`` indexes into the ``shards`` sequence
    the map was given; ``key_of`` extracts a shard's store key.  When a
    ``store`` is supplied, each key is durably recorded as a quarantine
    marker too — the drivers' one-call quarantine epilogue.
    """
    keys = tuple(
        key_of(shards[index])
        for index in getattr(executor, "quarantined_shards", ())
    )
    if store is not None:
        for key in keys:
            store.append_quarantine(key)
    return keys


def quarantine_report(keys: Iterable, unit: str = "shard") -> str:
    """Operator-facing rendition of quarantined shard keys.

    Printed by the CLI after a ``--continue-past-quarantine`` run and
    mirrored by ``repro store PATH summary``; the keys name exactly the
    cells a targeted re-run (same command, same ``--resume`` path) will
    recompute.
    """
    keys = list(keys)
    lines = [
        f"QUARANTINED {len(keys)} {unit}(s) — the rest of the grid completed; "
        "cells streamed to a --resume store stay durable:"
    ]
    for key in keys:
        lines.append(f"  {tuple(key)}")
    lines.append(
        "Re-run the same command with the same --resume PATH to retry just "
        "these (runbook: docs/operations.md)."
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Status protocol: one line-delimited JSON snapshot per connection
# ----------------------------------------------------------------------


class StatusServer:
    """Serve one JSON status line per TCP connection (curl/nc friendly).

    ``snapshot`` is called per connection and must return a JSON-safe
    dict (the :data:`STATUS_FORMAT` schema in the module docstring);
    :class:`~repro.experiments.backends.SocketBackend` passes a closure
    that assembles the snapshot under its own lock.  The server accepts
    on a daemon thread, binds eagerly in ``__init__`` (so a taken port
    fails fast, before any campaign work starts), and resolves port
    ``0`` to an ephemeral port exposed as :attr:`address`.
    """

    def __init__(self, bind: tuple[str, int], snapshot: Callable[[], dict]) -> None:
        host, port = bind
        self._snapshot = snapshot
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen()
        except OSError:
            self._listener.close()
            raise
        #: Resolved ``(host, port)`` of the live status listener.
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._done = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="repro-status", daemon=True
        )

    def start(self) -> "StatusServer":
        self._thread.start()
        return self

    def _serve(self) -> None:
        self._listener.settimeout(0.1)
        while not self._done.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with conn:
                try:
                    # Slow-consumer shedding: a stalled client (full
                    # receive buffer, half-open connection) must not
                    # wedge the status thread — drop it and serve the
                    # next poll instead.
                    conn.settimeout(5.0)
                    payload = json.dumps(self._snapshot())
                    conn.sendall(payload.encode("utf-8") + b"\n")
                except OSError:
                    pass  # client went away or stalled; next poll will work

    def close(self) -> None:
        self._done.set()
        self._listener.close()
        if self._thread.ident is not None:
            self._thread.join(timeout=5)


def read_status(address: str | tuple[str, int], timeout: float = 5.0) -> dict:
    """Fetch one status snapshot from a ``--status-port`` server.

    ``address`` is ``HOST:PORT`` (or a ``(host, port)`` tuple).  Raises
    ``OSError`` when nothing listens there and ``ValueError`` when the
    peer speaks something other than :data:`STATUS_FORMAT` — pointing
    this at the *work* port is the classic mistake, and must not hang.
    """
    if isinstance(address, str):
        from repro.experiments.backends import parse_address

        host, port = parse_address(address)
    else:
        host, port = address
    chunks: list[bytes] = []
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        while True:
            try:
                data = sock.recv(1 << 16)
            except socket.timeout:
                break
            if not data:
                break
            chunks.append(data)
            if data.endswith(b"\n"):
                break
    raw = b"".join(chunks).strip()
    if not raw:
        raise ValueError(
            f"no status line from {host}:{port} (is that really a --status-port, "
            "not the work port?)"
        )
    try:
        snapshot = json.loads(raw.decode("utf-8", errors="replace"))
    except json.JSONDecodeError:
        raise ValueError(
            f"{host}:{port} did not answer with a JSON status line (is that "
            "really a --status-port, not the work port?)"
        ) from None
    if not isinstance(snapshot, dict) or snapshot.get("format") not in STATUS_FORMATS:
        raise ValueError(
            f"{host}:{port} answered with an unknown status format "
            f"{snapshot.get('format') if isinstance(snapshot, dict) else snapshot!r} "
            f"(expected one of {', '.join(STATUS_FORMATS)})"
        )
    return snapshot


def render_status(snapshot: dict) -> str:
    """Operator-facing text rendition of a status snapshot."""
    lines = [
        f"status   {snapshot.get('format', '?')} · "
        f"{float(snapshot.get('elapsed', 0.0)):.1f}s elapsed"
    ]
    if snapshot.get("wire"):
        lines[0] += f" · wire {snapshot['wire']}"
    campaign = snapshot.get("campaign") or {}
    if campaign:
        # Driver-supplied workload fields (e.g. the fleet runner's chip
        # and cell-slice counts); render whatever the driver reported.
        detail = " · ".join(f"{key} {value}" for key, value in campaign.items())
        lines.append(f"campaign {detail}")
    fleet = snapshot.get("fleet", {})
    expected = fleet.get("expected") or 0
    barrier = f", {expected} expected" if expected else ""
    churn = ""
    if fleet.get("left_total"):
        churn = f", {fleet['left_total']} drained out"
    lines.append(
        f"fleet    {fleet.get('size', 0)} worker(s) connected "
        f"({fleet.get('joined_total', 0)} joined in total{churn}{barrier})"
    )
    for worker in snapshot.get("workers", []):
        chunk = worker.get("chunk")
        doing = f"chunk {chunk} in flight" if chunk is not None else "idle"
        lines.append(
            f"worker   pid {worker.get('pid', '?')} · {doing} · "
            f"last frame {float(worker.get('heartbeat_age', 0.0)):.1f}s ago"
        )
    chunks = snapshot.get("chunks", {})
    chunk_line = (
        f"chunks   {chunks.get('done', 0)}/{chunks.get('total', 0)} done · "
        f"{chunks.get('pending', 0)} queued · {chunks.get('in_flight', 0)} in flight"
    )
    if chunks.get("deferred"):
        chunk_line += f" · {chunks['deferred']} deferred for auto-retry"
    lines.append(chunk_line)
    maps = snapshot.get("maps") or {}
    if maps.get("opened"):
        lines.append(
            f"maps     {maps.get('active', 0)} campaign(s) active · "
            f"{maps['opened']} opened since start"
        )
    history = snapshot.get("history") or []
    if len(history) >= 2:
        # Trend over the ring buffer's window: how fast is the fleet
        # actually moving *lately*, as opposed to the lifetime average
        # the chunks line implies.
        span = float(history[-1].get("t", 0.0)) - float(history[0].get("t", 0.0))
        delta = int(history[-1].get("done", 0)) - int(history[0].get("done", 0))
        trend = f"history  +{delta} chunk(s) in the last {format_eta(span)}"
        if span > 0:
            trend += f" (~{60.0 * delta / span:.1f}/min)"
        lines.append(trend + f" · {len(history)} sample(s)")
    if snapshot.get("healed"):
        lines.append(
            f"healed   {snapshot['healed']} shard(s) recovered by the "
            "end-of-map auto-retry pass"
        )
    if snapshot.get("retries"):
        lines.append(f"retries  {snapshot['retries']} chunk requeue(s) so far")
    quarantined = snapshot.get("quarantined") or []
    if quarantined:
        listed = ", ".join(str(index) for index in quarantined)
        lines.append(
            f"quarantine chunk(s) {listed} set aside past their retry budget "
            "(--continue-past-quarantine)"
        )
    return "\n".join(lines)


def build_status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro status",
        description="Read one live status snapshot from a campaign server "
        "started with --status-port, and render it for operators.",
    )
    parser.add_argument("address", help="HOST:PORT of the server's --status-port")
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="connection/read timeout (default: 5)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON snapshot instead of the rendered view "
        "(for scripts and dashboards)",
    )
    return parser


def status_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro status HOST:PORT``."""
    args = build_status_parser().parse_args(argv)
    try:
        snapshot = read_status(args.address, timeout=args.timeout)
    except (OSError, ValueError) as error:
        print(f"repro status: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot))
    else:
        print(render_status(snapshot))
    return 0
