"""Serialization and streaming persistence of campaign results.

The paper's artifact parallelizes Monte-Carlo jobs across machines and
aggregates raw output files afterwards (§A.7).  This module provides the
equivalent for the Python reproduction, in two layers:

* **Documents** — :class:`SweepResult` objects round-trip through JSON
  (``repro-sweep-v2``: cells, per-cell timings, *and* the sweep config,
  so a shard file is self-describing; ``v1`` files without a config
  still load), and results from independently-run shards merge into one
  result via :func:`merge_sweeps`.
* **Streams** — the :class:`JsonlStore` family appends each completed
  work unit to a JSONL file the moment it finishes, so a killed
  campaign loses nothing.  :class:`ShardStore` holds sweep cells
  (``run_sweep(..., resume=PATH)``), and :class:`Fig10Store` holds the
  case study's per-(probability, code, stratum) shard results
  (``fig10.run(..., resume=PATH)``); both skip already-persisted keys
  on restart, so an interrupted run resumes bit-identically.
  Downstream consumers can read the records line by line without
  loading a full result — that is what the ``python -m repro store``
  toolbox (:mod:`repro.experiments.storetools`) does to summarize,
  compact, and merge stores.  (The drivers still assemble the complete
  in-memory result they return — the store bounds *loss*, not driver
  memory.)  A record is one line; a crash mid-append leaves at most one
  damaged final line, which loading tolerates and appending repairs or
  trims.

On-disk record kinds (one JSON object per line):

==========  =======================================================
kind        contents
==========  =======================================================
header      file format tag + the config that produced the records
cell        one completed sweep cell (``ShardStore``)
fig10       one completed case-study shard (``Fig10Store``)
fleet       one completed fleet shard — a chip range or a heavy
            chip's cell slice (``FleetStore``)
quarantine  key of a shard a ``--continue-past-quarantine`` run set
            aside (all stores); loading ignores it, so a rerun
            recomputes exactly those shards, and ``store summary``
            reports the ones not yet resolved by a completed record
==========  =======================================================

Record field reference (beyond ``kind``):

* ``header`` — ``{"format": "repro-sweep-v2" | "repro-fig10-v1",
  "config": {...} | null}``; the config dict round-trips the frozen
  :class:`~repro.experiments.config.SweepConfig` /
  :class:`~repro.experiments.config.CaseStudyConfig` field for field.
* ``cell`` — the cell key (``error_count`` int, ``probability`` float,
  ``profiler`` str), ``words`` (list of per-word metric dicts, one per
  Monte-Carlo word), and optional ``seconds`` (the cell's recorded
  compute wall-clock, used for the summary's ETA).
* ``fig10`` — the shard key (``probability`` float, ``code_index``
  int, ``count`` int = at-risk stratum), the per-profiler ``before`` /
  ``after`` / ``to_zero`` trajectory dicts, and optional ``seconds``.
* ``fleet`` — the shard key (``start`` / ``stop`` chip range plus
  ``slice_index`` / ``num_slices`` for sub-cell slices), the per-chip
  ``chips`` payload (word coordinates, at-risk positions, identified
  positions), and optional ``seconds``.
* ``quarantine`` — exactly the key fields of the ``cell`` / ``fig10`` /
  ``fleet`` record it stands in for, nothing else.

Duplicate keys always resolve **last-wins** on load; the
``python -m repro store`` toolbox compacts superseded records away and
prunes quarantine markers that a later completed record resolved.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.experiments.config import CaseStudyConfig, FleetConfig, SweepConfig
from repro.experiments.runner import SweepCell, SweepResult, WordMetrics

__all__ = [
    "sweep_to_json",
    "sweep_from_json",
    "merge_sweeps",
    "config_to_dict",
    "config_from_dict",
    "case_config_to_dict",
    "case_config_from_dict",
    "fleet_config_to_dict",
    "fleet_config_from_dict",
    "JsonlStore",
    "ShardStore",
    "Fig10Store",
    "FleetStore",
]

#: Current on-disk format tag (header of both documents and JSONL stores).
FORMAT_V2 = "repro-sweep-v2"
#: PR 1 format: cells and timings only, no config.
FORMAT_V1 = "repro-sweep-v1"
#: Fig 10 case-study store format tag.
FORMAT_FIG10 = "repro-fig10-v1"
#: Fleet field-simulation store format tag.
FORMAT_FLEET = "repro-fleet-v1"


def _metrics_to_dict(metrics: WordMetrics) -> dict:
    return {
        "direct_total": metrics.direct_total,
        "direct_identified": list(metrics.direct_identified),
        "indirect_total": metrics.indirect_total,
        "indirect_missed": list(metrics.indirect_missed),
        "post_total": metrics.post_total,
        "post_identified": list(metrics.post_identified),
        "capability": list(metrics.capability),
        "first_direct_round": metrics.first_direct_round,
    }


def _metrics_from_dict(payload: dict) -> WordMetrics:
    return WordMetrics(
        direct_total=int(payload["direct_total"]),
        direct_identified=tuple(payload["direct_identified"]),
        indirect_total=int(payload["indirect_total"]),
        indirect_missed=tuple(payload["indirect_missed"]),
        post_total=int(payload["post_total"]),
        post_identified=tuple(payload["post_identified"]),
        capability=tuple(payload["capability"]),
        first_direct_round=int(payload["first_direct_round"]),
    )


def config_to_dict(config) -> dict | None:
    """JSON-safe dict of a :class:`SweepConfig` (``None`` if not one).

    Sweeps may run with any hashable config-like object; only the
    library's own frozen dataclass is given a guaranteed round-trip.
    """
    if not isinstance(config, SweepConfig):
        return None
    payload = asdict(config)
    for key, value in payload.items():
        if isinstance(value, tuple):
            payload[key] = list(value)
    return payload


def config_from_dict(payload: dict | None) -> SweepConfig | None:
    """Inverse of :func:`config_to_dict` (``None`` passes through)."""
    if payload is None:
        return None
    kwargs = dict(payload)
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(value)
    return SweepConfig(**kwargs)


def case_config_to_dict(config) -> dict | None:
    """JSON-safe dict of a :class:`CaseStudyConfig` (``None`` if not one).

    The case-study twin of :func:`config_to_dict`: only the library's
    own frozen dataclass gets a guaranteed round-trip.
    """
    if not isinstance(config, CaseStudyConfig):
        return None
    payload = asdict(config)
    for key, value in payload.items():
        if isinstance(value, tuple):
            payload[key] = list(value)
    return payload


def case_config_from_dict(payload: dict | None) -> CaseStudyConfig | None:
    """Inverse of :func:`case_config_to_dict` (``None`` passes through)."""
    if payload is None:
        return None
    kwargs = dict(payload)
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(value)
    return CaseStudyConfig(**kwargs)


def fleet_config_to_dict(config) -> dict | None:
    """JSON-safe dict of a :class:`FleetConfig` (``None`` if not one).

    The fleet twin of :func:`config_to_dict`: only the library's own
    frozen dataclass gets a guaranteed round-trip.
    """
    if not isinstance(config, FleetConfig):
        return None
    payload = asdict(config)
    for key, value in payload.items():
        if isinstance(value, tuple):
            payload[key] = list(value)
    return payload


def fleet_config_from_dict(payload: dict | None) -> FleetConfig | None:
    """Inverse of :func:`fleet_config_to_dict` (``None`` passes through)."""
    if payload is None:
        return None
    kwargs = dict(payload)
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(value)
    return FleetConfig(**kwargs)


def _cell_to_dict(cell: SweepCell, seconds: float | None = None) -> dict:
    entry = {
        "error_count": cell.error_count,
        "probability": cell.probability,
        "profiler": cell.profiler,
        "words": [_metrics_to_dict(m) for m in cell.words],
    }
    if seconds is not None:
        entry["seconds"] = seconds
    return entry


def _cell_from_dict(entry: dict) -> tuple[tuple[int, float, str], SweepCell, float | None]:
    key = (int(entry["error_count"]), float(entry["probability"]), str(entry["profiler"]))
    cell = SweepCell(
        error_count=key[0],
        probability=key[1],
        profiler=key[2],
        words=[_metrics_from_dict(m) for m in entry["words"]],
    )
    seconds = float(entry["seconds"]) if "seconds" in entry else None
    return key, cell, seconds


def sweep_to_json(sweep: SweepResult) -> str:
    """Serialize a sweep — cells, per-cell timings, and config — to JSON.

    Emits the self-describing ``repro-sweep-v2`` document: when the
    sweep's config is the library's :class:`SweepConfig` it rides along
    and :func:`sweep_from_json` restores it, fixing the v1 wart where a
    shard file forgot what experiment produced it.  A cell's wall-clock
    seconds ride along as its ``seconds`` field when the engine recorded
    them, so aggregated shard files keep the cost accounting the
    streaming/distributed backends need.
    """
    cells = []
    for key, cell in sorted(sweep.cells.items()):
        cells.append(_cell_to_dict(cell, sweep.timings.get(key)))
    return json.dumps(
        {"format": FORMAT_V2, "config": config_to_dict(sweep.config), "cells": cells}
    )


def sweep_from_json(document: str) -> SweepResult:
    """Inverse of :func:`sweep_to_json`.

    Accepts both ``repro-sweep-v2`` (config round-trips) and the legacy
    ``repro-sweep-v1`` (config is ``None``) documents.
    """
    payload = json.loads(document)
    version = payload.get("format")
    if version not in (FORMAT_V1, FORMAT_V2):
        raise ValueError("not a repro sweep document")
    config = config_from_dict(payload.get("config")) if version == FORMAT_V2 else None
    cells: dict[tuple[int, float, str], SweepCell] = {}
    timings: dict[tuple[int, float, str], float] = {}
    for entry in payload["cells"]:
        key, cell, seconds = _cell_from_dict(entry)
        cells[key] = cell
        if seconds is not None:
            timings[key] = seconds
    return SweepResult(config=config, cells=cells, timings=timings)


def merge_sweeps(shards: Iterable[SweepResult]) -> SweepResult:
    """Merge independently-run shards into one result.

    Cells present in several shards concatenate their word lists (the
    paper's "aggregate the raw data, regardless of how the ECC codes are
    partitioned") and *sum* their timings — the merged cell's cost is the
    total CPU spent on it across shards.  The merged result keeps the
    first shard's config, falling back to the first non-``None`` config
    so a resumed store (config on disk) merged with a fresh run keeps a
    usable config either way.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("need at least one shard")
    merged: dict[tuple[int, float, str], SweepCell] = {}
    timings: dict[tuple[int, float, str], float] = {}
    for shard in shards:
        for key, cell in shard.cells.items():
            if key in merged:
                existing = merged[key]
                _check_compatible(existing, cell)
                merged[key] = SweepCell(
                    error_count=cell.error_count,
                    probability=cell.probability,
                    profiler=cell.profiler,
                    words=existing.words + cell.words,
                )
            else:
                merged[key] = SweepCell(
                    error_count=cell.error_count,
                    probability=cell.probability,
                    profiler=cell.profiler,
                    words=list(cell.words),
                )
        for key, seconds in shard.timings.items():
            timings[key] = timings.get(key, 0.0) + seconds
    config = shards[0].config
    if config is None:
        config = next((s.config for s in shards if s.config is not None), None)
    return SweepResult(config=config, cells=merged, timings=timings)


def _check_compatible(a: SweepCell, b: SweepCell) -> None:
    if a.words and b.words:
        if len(a.words[0].capability) != len(b.words[0].capability):
            raise ValueError(
                "cannot merge shards with different round counts "
                f"({len(a.words[0].capability)} vs {len(b.words[0].capability)})"
            )


class JsonlStore:
    """Append-only, torn-tail-tolerant JSONL record file (base machinery).

    One JSON object per line; appends flush and fsync per record, so
    after a crash the file holds every fully-reported record plus at
    most one truncated tail line, which reading skips and appending
    repairs or trims.  Subclasses define what the records *mean* —
    :class:`ShardStore` for sweep cells, :class:`Fig10Store` for
    case-study shards — by setting :attr:`format` and implementing
    :meth:`_header_record` / ``load``.  The
    :mod:`~repro.experiments.storetools` toolbox operates on the raw
    records of either kind.
    """

    #: Format tag written into (and required of) the header record;
    #: set by subclasses.
    format: str

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None

    # -- reading --------------------------------------------------------

    def exists(self) -> bool:
        return self.path.exists()

    def iter_records(self, include_torn: bool = False) -> Iterator[tuple[int, dict | None]]:
        """Stream ``(line_number, record)`` pairs without loading the file.

        A torn write only ever affects the last line (appends are
        sequential), so a JSON error on the final line is silently
        dropped — an interrupted append, recomputed on resume — while
        an error anywhere earlier means real corruption and raises.
        With ``include_torn``, the torn final line is yielded as
        ``(line_number, None)`` instead of dropped, so a streaming
        consumer (the ``repro store`` toolbox) can report it from the
        same single pass.
        """
        if not self.path.exists():
            return
        held: tuple[int, str] | None = None
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, raw in enumerate(handle):
                if not raw.strip():
                    continue
                if held is not None:
                    yield held[0], self._parse_line(*held)
                held = (number, raw)
            if held is not None:
                try:
                    record = json.loads(held[1])
                except json.JSONDecodeError:
                    if include_torn:
                        yield held[0], None
                    return  # torn tail from an interrupted append
                yield held[0], record

    def _parse_line(self, number: int, raw: str) -> dict:
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            raise ValueError(
                f"{self.path}: corrupt shard record on line {number + 1}"
            ) from None

    # -- writing --------------------------------------------------------

    def _header_record(self, config) -> dict:
        """Header written on a fresh file (subclasses serialize config)."""
        raise NotImplementedError

    def open(self, config=None) -> "JsonlStore":
        """Open for appending, writing the header record on a new file.

        An existing file first has any torn tail line removed (records
        are written newline-terminated in one call, so an interrupted
        append is exactly a final line with no ``\\n``); appending after
        the fragment without trimming would otherwise fuse the next
        record onto it and corrupt both.
        """
        if self._handle is not None:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self._trim_torn_tail()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write_record(self._header_record(config))
        return self

    def _trim_torn_tail(self) -> None:
        """Truncate an interrupted final append.

        Mirrors exactly what :meth:`load` keeps, so nothing ever gets
        appended *after* a record that loading would skip, and nothing
        loading would *keep* is dropped: a final line missing its
        newline is repaired in place when it still parses (the tear hit
        only the terminator — ``load`` counts that record, so the disk
        must too) and truncated otherwise; a newline-terminated final
        line that does not parse (a crash between flush and fsync can
        persist the trailing page, newline included, while losing an
        earlier one) is truncated as well.
        """
        with open(self.path, "rb+") as handle:
            size = handle.seek(0, os.SEEK_END)
            if not size:
                return
            # A tear only ever affects the tail, so inspect a window off
            # the end instead of reading a paper-scale store whole; the
            # window grows until it spans the last few (possibly huge)
            # records or the file start.
            window = 1 << 16
            while True:
                start = max(0, size - window)
                handle.seek(start)
                data = handle.read(size - start)
                if start == 0 or data.count(b"\n") >= 3:
                    break
                window <<= 1
            if not data.endswith(b"\n"):
                tail_start = data.rfind(b"\n") + 1  # 0 on a header-only tear
                try:
                    json.loads(data[tail_start:])
                except json.JSONDecodeError:
                    data = data[:tail_start]
                    handle.truncate(start + tail_start)
                else:
                    handle.seek(0, os.SEEK_END)
                    handle.write(b"\n")
                    data += b"\n"
            if not data:
                return
            last_start = data.rfind(b"\n", 0, len(data) - 1) + 1
            if last_start == 0 and start > 0:
                return  # one intact giant record fills the window: valid
            try:
                json.loads(data[last_start:])
            except json.JSONDecodeError:
                handle.truncate(start + last_start)

    def _write_record(self, record: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlStore":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardStore(JsonlStore):
    """Append-only JSONL stream of completed sweep cells.

    Layout: the first line is a ``repro-sweep-v2`` header record
    carrying the sweep config; every following line is one completed
    cell.  Appends flush and fsync per record, so after a crash the file
    holds every fully-reported cell plus at most one truncated tail
    line, which :meth:`load` skips (and a resume simply recomputes).

    The store is the disk half of ``run_sweep(..., resume=PATH)``: the
    engine appends cells as backends complete them and, on restart,
    skips every shard whose key is already present.
    """

    format = FORMAT_V2

    def _header_record(self, config) -> dict:
        return {"format": self.format, "kind": "header", "config": config_to_dict(config)}

    def load(self) -> SweepResult:
        """Read every intact record; tolerate a truncated final line."""
        config = None
        cells: dict[tuple[int, float, str], SweepCell] = {}
        timings: dict[tuple[int, float, str], float] = {}
        for number, record in self.iter_records():
            if record.get("format") in (FORMAT_V1, FORMAT_V2) and "cells" in record:
                # A whole sweep_to_json document, not a store: resuming
                # onto it would ignore its cells and append records that
                # corrupt it — refuse loudly instead.
                raise ValueError(
                    f"{self.path} is a sweep_to_json document, not a JSONL "
                    "shard store; load it with sweep_from_json (and give "
                    "--resume its own path)"
                )
            if record.get("kind") == "header":
                if record.get("format") == FORMAT_FIG10:
                    raise ValueError(
                        f"{self.path} is a Fig 10 case-study store, not a "
                        "sweep shard store; load it with Fig10Store (and "
                        "give each exhibit its own --resume path)"
                    )
                if record.get("format") == FORMAT_FLEET:
                    raise ValueError(
                        f"{self.path} is a fleet store, not a sweep shard "
                        "store; load it with FleetStore (and give each "
                        "exhibit its own --resume path)"
                    )
                if record.get("format") == FORMAT_V2:
                    config = config_from_dict(record.get("config"))
            elif record.get("kind") == "cell":
                key, cell, seconds = _cell_from_dict(record)
                cells[key] = cell  # duplicate keys: last append wins
                if seconds is not None:
                    timings[key] = seconds
            elif record.get("kind") == "quarantine":
                # A continue-past-quarantine run set this cell aside; it
                # was never computed, so a resume must recompute it —
                # which ignoring the marker achieves.  `store summary`
                # is what reports unresolved markers to operators.
                continue
            else:
                raise ValueError(f"{self.path}: unknown shard record on line {number + 1}")
        return SweepResult(config=config, cells=cells, timings=timings)

    def keys(self) -> set[tuple[int, float, str]]:
        """Keys of every intact persisted cell."""
        return set(self.load().cells)

    def append(self, cell: SweepCell, seconds: float | None = None) -> None:
        """Durably append one completed cell (opens the store if needed)."""
        if self._handle is None:
            self.open()
        record = _cell_to_dict(cell, seconds)
        record["kind"] = "cell"
        self._write_record(record)

    def append_quarantine(self, key: tuple[int, float, str]) -> None:
        """Durably record that a run set this cell's shard aside.

        The marker never shadows data: :meth:`load` ignores it (so a
        resume recomputes the cell) and the toolbox prunes it once a
        completed ``cell`` record with the same key lands.
        """
        if self._handle is None:
            self.open()
        error_count, probability, profiler = key
        self._write_record(
            {
                "kind": "quarantine",
                "error_count": int(error_count),
                "probability": float(probability),
                "profiler": str(profiler),
            }
        )


#: Key of one case-study shard: (probability, code_index, at-risk count).
Fig10Key = tuple[float, int, int]

#: One persisted case-study shard result, exactly as
#: :func:`repro.experiments.fig10.run_case_shard` returns it:
#: ``(before, after, to_zero)`` keyed by profiler name.
Fig10ShardResult = tuple[dict, dict, dict]


class Fig10Store(JsonlStore):
    """Append-only JSONL stream of completed Fig 10 case-study shards.

    The case-study twin of :class:`ShardStore`: the first line is a
    ``repro-fig10-v1`` header carrying the
    :class:`~repro.experiments.config.CaseStudyConfig`, and every
    following line is one completed :class:`~repro.experiments.fig10.Fig10Shard`
    result — the per-profiler BER trajectories of one (probability,
    code, at-risk stratum) cell, self-describing via the shard's
    coordinates.  ``fig10.run(..., resume=PATH)`` streams each shard
    here as backends deliver it and skips persisted keys on restart, so
    a killed ``--scale paper`` case study resumes bit-identically
    (floats survive JSON exactly: Python serializes them via repr,
    which round-trips).
    """

    format = FORMAT_FIG10

    def _header_record(self, config) -> dict:
        return {
            "format": self.format,
            "kind": "header",
            "config": case_config_to_dict(config),
        }

    def load(self) -> tuple[CaseStudyConfig | None, dict[Fig10Key, Fig10ShardResult]]:
        """Read ``(config, {shard key: shard result})``; tolerate a torn tail."""
        config = None
        shards: dict[Fig10Key, Fig10ShardResult] = {}
        for number, record in self.iter_records():
            if record.get("kind") == "header":
                if record.get("format") != self.format:
                    raise ValueError(
                        f"{self.path} is not a Fig 10 case-study store "
                        f"(header format {record.get('format')!r}); give each "
                        "exhibit its own --resume path"
                    )
                config = case_config_from_dict(record.get("config"))
            elif record.get("kind") == "fig10":
                key = (
                    float(record["probability"]),
                    int(record["code_index"]),
                    int(record["count"]),
                )
                # Duplicate keys: last append wins, same as ShardStore.
                shards[key] = (record["before"], record["after"], record["to_zero"])
            elif record.get("kind") == "quarantine":
                continue  # set-aside marker; the shard recomputes on resume
            else:
                raise ValueError(f"{self.path}: unknown shard record on line {number + 1}")
        return config, shards

    def append(
        self, key: Fig10Key, result: Fig10ShardResult, seconds: float | None = None
    ) -> None:
        """Durably append one completed shard (opens the store if needed).

        ``seconds`` (the shard's recorded compute wall-clock) rides
        along for the summary's coverage/ETA math; :meth:`load` ignores
        it, so stores with and without timings resume identically.
        """
        if self._handle is None:
            self.open()
        probability, code_index, count = key
        before, after, to_zero = result
        record = {
            "kind": "fig10",
            "probability": probability,
            "code_index": code_index,
            "count": count,
            "before": before,
            "after": after,
            "to_zero": to_zero,
        }
        if seconds is not None:
            record["seconds"] = seconds
        self._write_record(record)

    def append_quarantine(self, key: Fig10Key) -> None:
        """Durably record that a run set this case-study shard aside."""
        if self._handle is None:
            self.open()
        probability, code_index, count = key
        self._write_record(
            {
                "kind": "quarantine",
                "probability": float(probability),
                "code_index": int(code_index),
                "count": int(count),
            }
        )


#: Key of one fleet shard: (start chip, stop chip, slice index, slices).
FleetKey = tuple[int, int, int, int]


class FleetStore(JsonlStore):
    """Append-only JSONL stream of completed fleet shards.

    The fleet twin of :class:`Fig10Store`: the first line is a
    ``repro-fleet-v1`` header carrying the
    :class:`~repro.experiments.config.FleetConfig`, and every following
    line is one completed :class:`~repro.experiments.fleet.FleetShard`
    payload — the per-word identified sets of a chip range or of one
    heavy chip's cell slice, self-describing via the shard's ``(start,
    stop, slice_index, num_slices)`` coordinates.  ``fleet.run(...,
    resume=PATH)`` streams each shard here as backends deliver it and
    skips persisted keys on restart; slice payloads merge associatively
    regardless of arrival order, so a killed campaign resumes
    bit-identically.
    """

    format = FORMAT_FLEET

    def _header_record(self, config) -> dict:
        return {
            "format": self.format,
            "kind": "header",
            "config": fleet_config_to_dict(config),
        }

    def load(self) -> tuple[FleetConfig | None, dict[FleetKey, dict]]:
        """Read ``(config, {shard key: payload})``; tolerate a torn tail."""
        config = None
        shards: dict[FleetKey, dict] = {}
        for number, record in self.iter_records():
            if record.get("kind") == "header":
                if record.get("format") != self.format:
                    raise ValueError(
                        f"{self.path} is not a fleet store (header format "
                        f"{record.get('format')!r}); give each exhibit its "
                        "own --resume path"
                    )
                config = fleet_config_from_dict(record.get("config"))
            elif record.get("kind") == "fleet":
                key = (
                    int(record["start"]),
                    int(record["stop"]),
                    int(record["slice_index"]),
                    int(record["num_slices"]),
                )
                # Duplicate keys: last append wins, same as ShardStore.
                shards[key] = {"chips": record["chips"]}
            elif record.get("kind") == "quarantine":
                continue  # set-aside marker; the shard recomputes on resume
            else:
                raise ValueError(f"{self.path}: unknown shard record on line {number + 1}")
        return config, shards

    def append(self, key: FleetKey, payload: dict, seconds: float | None = None) -> None:
        """Durably append one completed fleet shard (opens if needed)."""
        if self._handle is None:
            self.open()
        start, stop, slice_index, num_slices = key
        record = {
            "kind": "fleet",
            "start": int(start),
            "stop": int(stop),
            "slice_index": int(slice_index),
            "num_slices": int(num_slices),
            "chips": payload["chips"],
        }
        if seconds is not None:
            record["seconds"] = seconds
        self._write_record(record)

    def append_quarantine(self, key: FleetKey) -> None:
        """Durably record that a run set this fleet shard aside."""
        if self._handle is None:
            self.open()
        start, stop, slice_index, num_slices = key
        self._write_record(
            {
                "kind": "quarantine",
                "start": int(start),
                "stop": int(stop),
                "slice_index": int(slice_index),
                "num_slices": int(num_slices),
            }
        )
