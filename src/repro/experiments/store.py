"""Serialization of sweep results (artifact-workflow support).

The paper's artifact parallelizes Monte-Carlo jobs across machines and
aggregates raw output files afterwards (§A.7).  This module provides the
equivalent for the Python reproduction: :class:`SweepResult` objects
round-trip through JSON, and results from independently-run shards (e.g.
different seeds or disjoint cells) merge into one result for the
reduction layer.
"""

from __future__ import annotations

import json

from repro.experiments.runner import SweepCell, SweepResult, WordMetrics

__all__ = ["sweep_to_json", "sweep_from_json", "merge_sweeps"]


def _metrics_to_dict(metrics: WordMetrics) -> dict:
    return {
        "direct_total": metrics.direct_total,
        "direct_identified": list(metrics.direct_identified),
        "indirect_total": metrics.indirect_total,
        "indirect_missed": list(metrics.indirect_missed),
        "post_total": metrics.post_total,
        "post_identified": list(metrics.post_identified),
        "capability": list(metrics.capability),
        "first_direct_round": metrics.first_direct_round,
    }


def _metrics_from_dict(payload: dict) -> WordMetrics:
    return WordMetrics(
        direct_total=int(payload["direct_total"]),
        direct_identified=tuple(payload["direct_identified"]),
        indirect_total=int(payload["indirect_total"]),
        indirect_missed=tuple(payload["indirect_missed"]),
        post_total=int(payload["post_total"]),
        post_identified=tuple(payload["post_identified"]),
        capability=tuple(payload["capability"]),
        first_direct_round=int(payload["first_direct_round"]),
    )


def sweep_to_json(sweep: SweepResult) -> str:
    """Serialize a sweep's cells and per-cell timings (not its config) to JSON.

    A cell's wall-clock seconds ride along as its ``seconds`` field when
    the engine recorded them, so aggregated shard files keep the cost
    accounting the streaming/distributed backends need.
    """
    cells = []
    for (error_count, probability, profiler), cell in sorted(sweep.cells.items()):
        entry = {
            "error_count": error_count,
            "probability": probability,
            "profiler": profiler,
            "words": [_metrics_to_dict(m) for m in cell.words],
        }
        seconds = sweep.timings.get((error_count, probability, profiler))
        if seconds is not None:
            entry["seconds"] = seconds
        cells.append(entry)
    return json.dumps({"format": "repro-sweep-v1", "cells": cells})


def sweep_from_json(document: str) -> SweepResult:
    """Inverse of :func:`sweep_to_json` (config is not recoverable)."""
    payload = json.loads(document)
    if payload.get("format") != "repro-sweep-v1":
        raise ValueError("not a repro sweep document")
    cells: dict[tuple[int, float, str], SweepCell] = {}
    timings: dict[tuple[int, float, str], float] = {}
    for entry in payload["cells"]:
        key = (int(entry["error_count"]), float(entry["probability"]), str(entry["profiler"]))
        cells[key] = SweepCell(
            error_count=key[0],
            probability=key[1],
            profiler=key[2],
            words=[_metrics_from_dict(m) for m in entry["words"]],
        )
        if "seconds" in entry:
            timings[key] = float(entry["seconds"])
    return SweepResult(config=None, cells=cells, timings=timings)


def merge_sweeps(shards: list[SweepResult]) -> SweepResult:
    """Merge independently-run shards into one result.

    Cells present in several shards concatenate their word lists (the
    paper's "aggregate the raw data, regardless of how the ECC codes are
    partitioned") and *sum* their timings — the merged cell's cost is the
    total CPU spent on it across shards.  The merged result keeps the
    first shard's config.
    """
    if not shards:
        raise ValueError("need at least one shard")
    merged: dict[tuple[int, float, str], SweepCell] = {}
    timings: dict[tuple[int, float, str], float] = {}
    for shard in shards:
        for key, cell in shard.cells.items():
            if key in merged:
                existing = merged[key]
                _check_compatible(existing, cell)
                merged[key] = SweepCell(
                    error_count=cell.error_count,
                    probability=cell.probability,
                    profiler=cell.profiler,
                    words=existing.words + cell.words,
                )
            else:
                merged[key] = SweepCell(
                    error_count=cell.error_count,
                    probability=cell.probability,
                    profiler=cell.profiler,
                    words=list(cell.words),
                )
        for key, seconds in shard.timings.items():
            timings[key] = timings.get(key, 0.0) + seconds
    return SweepResult(config=shards[0].config, cells=merged, timings=timings)


def _check_compatible(a: SweepCell, b: SweepCell) -> None:
    if a.words and b.words:
        if len(a.words[0].capability) != len(b.words[0].capability):
            raise ValueError(
                "cannot merge shards with different round counts "
                f"({len(a.words[0].capability)} vs {len(b.words[0].capability)})"
            )
